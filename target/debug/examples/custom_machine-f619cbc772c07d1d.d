/root/repo/target/debug/examples/custom_machine-f619cbc772c07d1d.d: crates/mtperf/../../examples/custom_machine.rs

/root/repo/target/debug/examples/custom_machine-f619cbc772c07d1d: crates/mtperf/../../examples/custom_machine.rs

crates/mtperf/../../examples/custom_machine.rs:
