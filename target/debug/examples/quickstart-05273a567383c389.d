/root/repo/target/debug/examples/quickstart-05273a567383c389.d: crates/mtperf/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-05273a567383c389: crates/mtperf/../../examples/quickstart.rs

crates/mtperf/../../examples/quickstart.rs:
