/root/repo/target/debug/examples/spec_analysis-2e71ca293d00b98b.d: crates/mtperf/../../examples/spec_analysis.rs

/root/repo/target/debug/examples/spec_analysis-2e71ca293d00b98b: crates/mtperf/../../examples/spec_analysis.rs

crates/mtperf/../../examples/spec_analysis.rs:
