/root/repo/target/debug/examples/rule_report-4dad23e0ae166a03.d: crates/mtperf/../../examples/rule_report.rs

/root/repo/target/debug/examples/rule_report-4dad23e0ae166a03: crates/mtperf/../../examples/rule_report.rs

crates/mtperf/../../examples/rule_report.rs:
