/root/repo/target/debug/examples/tuning_advisor-63c57de8a04e63c9.d: crates/mtperf/../../examples/tuning_advisor.rs

/root/repo/target/debug/examples/tuning_advisor-63c57de8a04e63c9: crates/mtperf/../../examples/tuning_advisor.rs

crates/mtperf/../../examples/tuning_advisor.rs:
