/root/repo/target/debug/examples/phase_detection-057e9f0d18914bb7.d: crates/mtperf/../../examples/phase_detection.rs

/root/repo/target/debug/examples/phase_detection-057e9f0d18914bb7: crates/mtperf/../../examples/phase_detection.rs

crates/mtperf/../../examples/phase_detection.rs:
