/root/repo/target/debug/deps/pipeline-e39876c8230b8e68.d: crates/mtperf/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-e39876c8230b8e68: crates/mtperf/../../tests/pipeline.rs

crates/mtperf/../../tests/pipeline.rs:
