/root/repo/target/debug/deps/mtperf_baselines-8329b5eb4486d893.d: crates/baselines/src/lib.rs crates/baselines/src/cart.rs crates/baselines/src/ensemble.rs crates/baselines/src/knn.rs crates/baselines/src/linreg.rs crates/baselines/src/mlp.rs crates/baselines/src/scale.rs crates/baselines/src/suite.rs crates/baselines/src/svr.rs

/root/repo/target/debug/deps/libmtperf_baselines-8329b5eb4486d893.rlib: crates/baselines/src/lib.rs crates/baselines/src/cart.rs crates/baselines/src/ensemble.rs crates/baselines/src/knn.rs crates/baselines/src/linreg.rs crates/baselines/src/mlp.rs crates/baselines/src/scale.rs crates/baselines/src/suite.rs crates/baselines/src/svr.rs

/root/repo/target/debug/deps/libmtperf_baselines-8329b5eb4486d893.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cart.rs crates/baselines/src/ensemble.rs crates/baselines/src/knn.rs crates/baselines/src/linreg.rs crates/baselines/src/mlp.rs crates/baselines/src/scale.rs crates/baselines/src/suite.rs crates/baselines/src/svr.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cart.rs:
crates/baselines/src/ensemble.rs:
crates/baselines/src/knn.rs:
crates/baselines/src/linreg.rs:
crates/baselines/src/mlp.rs:
crates/baselines/src/scale.rs:
crates/baselines/src/suite.rs:
crates/baselines/src/svr.rs:
