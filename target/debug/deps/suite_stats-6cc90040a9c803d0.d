/root/repo/target/debug/deps/suite_stats-6cc90040a9c803d0.d: crates/sim/tests/suite_stats.rs

/root/repo/target/debug/deps/suite_stats-6cc90040a9c803d0: crates/sim/tests/suite_stats.rs

crates/sim/tests/suite_stats.rs:
