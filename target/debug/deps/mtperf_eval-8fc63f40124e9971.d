/root/repo/target/debug/deps/mtperf_eval-8fc63f40124e9971.d: crates/eval/src/lib.rs crates/eval/src/breakdown.rs crates/eval/src/curve.rs crates/eval/src/cv.rs crates/eval/src/metrics.rs crates/eval/src/repeat.rs crates/eval/src/report.rs crates/eval/src/significance.rs

/root/repo/target/debug/deps/mtperf_eval-8fc63f40124e9971: crates/eval/src/lib.rs crates/eval/src/breakdown.rs crates/eval/src/curve.rs crates/eval/src/cv.rs crates/eval/src/metrics.rs crates/eval/src/repeat.rs crates/eval/src/report.rs crates/eval/src/significance.rs

crates/eval/src/lib.rs:
crates/eval/src/breakdown.rs:
crates/eval/src/curve.rs:
crates/eval/src/cv.rs:
crates/eval/src/metrics.rs:
crates/eval/src/repeat.rs:
crates/eval/src/report.rs:
crates/eval/src/significance.rs:
