/root/repo/target/debug/deps/serde_json-994df22e8e1fd29d.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/read.rs vendor/serde_json/src/write.rs

/root/repo/target/debug/deps/libserde_json-994df22e8e1fd29d.rlib: vendor/serde_json/src/lib.rs vendor/serde_json/src/read.rs vendor/serde_json/src/write.rs

/root/repo/target/debug/deps/libserde_json-994df22e8e1fd29d.rmeta: vendor/serde_json/src/lib.rs vendor/serde_json/src/read.rs vendor/serde_json/src/write.rs

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/read.rs:
vendor/serde_json/src/write.rs:
