/root/repo/target/debug/deps/mtperf_linalg-d78b885e4e6032dd.d: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/matrix.rs crates/linalg/src/parallel.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/libmtperf_linalg-d78b885e4e6032dd.rlib: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/matrix.rs crates/linalg/src/parallel.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/libmtperf_linalg-d78b885e4e6032dd.rmeta: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/matrix.rs crates/linalg/src/parallel.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/error.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/parallel.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/stats.rs:
