/root/repo/target/debug/deps/serde_derive-e0ecb86de0ef6fee.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-e0ecb86de0ef6fee.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
