/root/repo/target/debug/deps/prop_counters-a069dfc912aca85d.d: crates/counters/tests/prop_counters.rs

/root/repo/target/debug/deps/prop_counters-a069dfc912aca85d: crates/counters/tests/prop_counters.rs

crates/counters/tests/prop_counters.rs:
