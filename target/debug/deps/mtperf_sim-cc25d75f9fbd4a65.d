/root/repo/target/debug/deps/mtperf_sim-cc25d75f9fbd4a65.d: crates/sim/src/lib.rs crates/sim/src/branch.rs crates/sim/src/btb.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/cycle.rs crates/sim/src/instr.rs crates/sim/src/loadblock.rs crates/sim/src/memory.rs crates/sim/src/sim.rs crates/sim/src/tlb.rs crates/sim/src/workload/mod.rs crates/sim/src/workload/gen.rs crates/sim/src/workload/profiles.rs crates/sim/src/workload/spec.rs

/root/repo/target/debug/deps/libmtperf_sim-cc25d75f9fbd4a65.rlib: crates/sim/src/lib.rs crates/sim/src/branch.rs crates/sim/src/btb.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/cycle.rs crates/sim/src/instr.rs crates/sim/src/loadblock.rs crates/sim/src/memory.rs crates/sim/src/sim.rs crates/sim/src/tlb.rs crates/sim/src/workload/mod.rs crates/sim/src/workload/gen.rs crates/sim/src/workload/profiles.rs crates/sim/src/workload/spec.rs

/root/repo/target/debug/deps/libmtperf_sim-cc25d75f9fbd4a65.rmeta: crates/sim/src/lib.rs crates/sim/src/branch.rs crates/sim/src/btb.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/cycle.rs crates/sim/src/instr.rs crates/sim/src/loadblock.rs crates/sim/src/memory.rs crates/sim/src/sim.rs crates/sim/src/tlb.rs crates/sim/src/workload/mod.rs crates/sim/src/workload/gen.rs crates/sim/src/workload/profiles.rs crates/sim/src/workload/spec.rs

crates/sim/src/lib.rs:
crates/sim/src/branch.rs:
crates/sim/src/btb.rs:
crates/sim/src/cache.rs:
crates/sim/src/config.rs:
crates/sim/src/cycle.rs:
crates/sim/src/instr.rs:
crates/sim/src/loadblock.rs:
crates/sim/src/memory.rs:
crates/sim/src/sim.rs:
crates/sim/src/tlb.rs:
crates/sim/src/workload/mod.rs:
crates/sim/src/workload/gen.rs:
crates/sim/src/workload/profiles.rs:
crates/sim/src/workload/spec.rs:
