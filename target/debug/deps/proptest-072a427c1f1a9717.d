/root/repo/target/debug/deps/proptest-072a427c1f1a9717.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-072a427c1f1a9717: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/test_runner.rs:
