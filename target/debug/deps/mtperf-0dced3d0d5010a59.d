/root/repo/target/debug/deps/mtperf-0dced3d0d5010a59.d: crates/mtperf/src/bin/mtperf.rs

/root/repo/target/debug/deps/mtperf-0dced3d0d5010a59: crates/mtperf/src/bin/mtperf.rs

crates/mtperf/src/bin/mtperf.rs:
