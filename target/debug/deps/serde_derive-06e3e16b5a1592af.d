/root/repo/target/debug/deps/serde_derive-06e3e16b5a1592af.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-06e3e16b5a1592af: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
