/root/repo/target/debug/deps/serde_json-d111cc61d7ebd134.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/read.rs vendor/serde_json/src/write.rs

/root/repo/target/debug/deps/serde_json-d111cc61d7ebd134: vendor/serde_json/src/lib.rs vendor/serde_json/src/read.rs vendor/serde_json/src/write.rs

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/read.rs:
vendor/serde_json/src/write.rs:
