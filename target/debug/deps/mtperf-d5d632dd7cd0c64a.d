/root/repo/target/debug/deps/mtperf-d5d632dd7cd0c64a.d: crates/mtperf/src/lib.rs crates/mtperf/src/cli.rs

/root/repo/target/debug/deps/libmtperf-d5d632dd7cd0c64a.rlib: crates/mtperf/src/lib.rs crates/mtperf/src/cli.rs

/root/repo/target/debug/deps/libmtperf-d5d632dd7cd0c64a.rmeta: crates/mtperf/src/lib.rs crates/mtperf/src/cli.rs

crates/mtperf/src/lib.rs:
crates/mtperf/src/cli.rs:
