/root/repo/target/debug/deps/rand-713ff5d999ec5f13.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/distributions.rs vendor/rand/src/uniform.rs

/root/repo/target/debug/deps/rand-713ff5d999ec5f13: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/distributions.rs vendor/rand/src/uniform.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/uniform.rs:
