/root/repo/target/debug/deps/proptest-ec0c8e8eee4595e2.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-ec0c8e8eee4595e2.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-ec0c8e8eee4595e2.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/test_runner.rs:
