/root/repo/target/debug/deps/criterion-7a1c2d55b98e7df3.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-7a1c2d55b98e7df3.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-7a1c2d55b98e7df3.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
