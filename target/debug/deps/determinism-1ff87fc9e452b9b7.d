/root/repo/target/debug/deps/determinism-1ff87fc9e452b9b7.d: crates/eval/tests/determinism.rs

/root/repo/target/debug/deps/determinism-1ff87fc9e452b9b7: crates/eval/tests/determinism.rs

crates/eval/tests/determinism.rs:
