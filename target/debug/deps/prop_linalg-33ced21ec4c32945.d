/root/repo/target/debug/deps/prop_linalg-33ced21ec4c32945.d: crates/linalg/tests/prop_linalg.rs

/root/repo/target/debug/deps/prop_linalg-33ced21ec4c32945: crates/linalg/tests/prop_linalg.rs

crates/linalg/tests/prop_linalg.rs:
