/root/repo/target/debug/deps/mtperf_repro-85f18d6a23c34a21.d: crates/repro/src/main.rs

/root/repo/target/debug/deps/mtperf_repro-85f18d6a23c34a21: crates/repro/src/main.rs

crates/repro/src/main.rs:
