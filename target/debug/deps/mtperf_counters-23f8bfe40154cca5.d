/root/repo/target/debug/deps/mtperf_counters-23f8bfe40154cca5.d: crates/counters/src/lib.rs crates/counters/src/arff.rs crates/counters/src/bank.rs crates/counters/src/csv.rs crates/counters/src/events.rs crates/counters/src/sample.rs crates/counters/src/sampleset.rs

/root/repo/target/debug/deps/libmtperf_counters-23f8bfe40154cca5.rlib: crates/counters/src/lib.rs crates/counters/src/arff.rs crates/counters/src/bank.rs crates/counters/src/csv.rs crates/counters/src/events.rs crates/counters/src/sample.rs crates/counters/src/sampleset.rs

/root/repo/target/debug/deps/libmtperf_counters-23f8bfe40154cca5.rmeta: crates/counters/src/lib.rs crates/counters/src/arff.rs crates/counters/src/bank.rs crates/counters/src/csv.rs crates/counters/src/events.rs crates/counters/src/sample.rs crates/counters/src/sampleset.rs

crates/counters/src/lib.rs:
crates/counters/src/arff.rs:
crates/counters/src/bank.rs:
crates/counters/src/csv.rs:
crates/counters/src/events.rs:
crates/counters/src/sample.rs:
crates/counters/src/sampleset.rs:
