/root/repo/target/debug/deps/serde-91ecccb81104327e.d: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/value.rs

/root/repo/target/debug/deps/libserde-91ecccb81104327e.rlib: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/value.rs

/root/repo/target/debug/deps/libserde-91ecccb81104327e.rmeta: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/value.rs

vendor/serde/src/lib.rs:
vendor/serde/src/de.rs:
vendor/serde/src/value.rs:
