/root/repo/target/debug/deps/prop_mtree-0d72f038d603713a.d: crates/mtree/tests/prop_mtree.rs

/root/repo/target/debug/deps/prop_mtree-0d72f038d603713a: crates/mtree/tests/prop_mtree.rs

crates/mtree/tests/prop_mtree.rs:
