/root/repo/target/debug/deps/mtperf_bench-5c3502750ca91f00.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mtperf_bench-5c3502750ca91f00: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
