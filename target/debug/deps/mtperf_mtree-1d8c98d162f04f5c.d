/root/repo/target/debug/deps/mtperf_mtree-1d8c98d162f04f5c.d: crates/mtree/src/lib.rs crates/mtree/src/analysis.rs crates/mtree/src/build.rs crates/mtree/src/dataset.rs crates/mtree/src/error.rs crates/mtree/src/learner.rs crates/mtree/src/model.rs crates/mtree/src/node.rs crates/mtree/src/params.rs crates/mtree/src/persist.rs crates/mtree/src/phase.rs crates/mtree/src/render.rs crates/mtree/src/rules.rs crates/mtree/src/split.rs crates/mtree/src/tree.rs

/root/repo/target/debug/deps/mtperf_mtree-1d8c98d162f04f5c: crates/mtree/src/lib.rs crates/mtree/src/analysis.rs crates/mtree/src/build.rs crates/mtree/src/dataset.rs crates/mtree/src/error.rs crates/mtree/src/learner.rs crates/mtree/src/model.rs crates/mtree/src/node.rs crates/mtree/src/params.rs crates/mtree/src/persist.rs crates/mtree/src/phase.rs crates/mtree/src/render.rs crates/mtree/src/rules.rs crates/mtree/src/split.rs crates/mtree/src/tree.rs

crates/mtree/src/lib.rs:
crates/mtree/src/analysis.rs:
crates/mtree/src/build.rs:
crates/mtree/src/dataset.rs:
crates/mtree/src/error.rs:
crates/mtree/src/learner.rs:
crates/mtree/src/model.rs:
crates/mtree/src/node.rs:
crates/mtree/src/params.rs:
crates/mtree/src/persist.rs:
crates/mtree/src/phase.rs:
crates/mtree/src/render.rs:
crates/mtree/src/rules.rs:
crates/mtree/src/split.rs:
crates/mtree/src/tree.rs:
