/root/repo/target/debug/deps/mtperf_linalg-f2fdd94508527c30.d: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/matrix.rs crates/linalg/src/parallel.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/mtperf_linalg-f2fdd94508527c30: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/matrix.rs crates/linalg/src/parallel.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/error.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/parallel.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/stats.rs:
