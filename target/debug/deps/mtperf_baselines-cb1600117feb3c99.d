/root/repo/target/debug/deps/mtperf_baselines-cb1600117feb3c99.d: crates/baselines/src/lib.rs crates/baselines/src/cart.rs crates/baselines/src/ensemble.rs crates/baselines/src/knn.rs crates/baselines/src/linreg.rs crates/baselines/src/mlp.rs crates/baselines/src/scale.rs crates/baselines/src/suite.rs crates/baselines/src/svr.rs

/root/repo/target/debug/deps/mtperf_baselines-cb1600117feb3c99: crates/baselines/src/lib.rs crates/baselines/src/cart.rs crates/baselines/src/ensemble.rs crates/baselines/src/knn.rs crates/baselines/src/linreg.rs crates/baselines/src/mlp.rs crates/baselines/src/scale.rs crates/baselines/src/suite.rs crates/baselines/src/svr.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cart.rs:
crates/baselines/src/ensemble.rs:
crates/baselines/src/knn.rs:
crates/baselines/src/linreg.rs:
crates/baselines/src/mlp.rs:
crates/baselines/src/scale.rs:
crates/baselines/src/suite.rs:
crates/baselines/src/svr.rs:
