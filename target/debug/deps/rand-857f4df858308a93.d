/root/repo/target/debug/deps/rand-857f4df858308a93.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/distributions.rs vendor/rand/src/uniform.rs

/root/repo/target/debug/deps/librand-857f4df858308a93.rlib: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/distributions.rs vendor/rand/src/uniform.rs

/root/repo/target/debug/deps/librand-857f4df858308a93.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/distributions.rs vendor/rand/src/uniform.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/uniform.rs:
