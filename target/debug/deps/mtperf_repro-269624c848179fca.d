/root/repo/target/debug/deps/mtperf_repro-269624c848179fca.d: crates/repro/src/lib.rs crates/repro/src/context.rs crates/repro/src/experiments/mod.rs crates/repro/src/experiments/ablation.rs crates/repro/src/experiments/breakdown.rs crates/repro/src/experiments/comparison.rs crates/repro/src/experiments/curve.rs crates/repro/src/experiments/events.rs crates/repro/src/experiments/figure1.rs crates/repro/src/experiments/figure2.rs crates/repro/src/experiments/figure3.rs crates/repro/src/experiments/generalize.rs crates/repro/src/experiments/headline.rs crates/repro/src/experiments/interactions.rs crates/repro/src/experiments/lm_analysis.rs crates/repro/src/experiments/netburst.rs crates/repro/src/experiments/occupancy.rs crates/repro/src/experiments/split_impact.rs crates/repro/src/experiments/table1.rs crates/repro/src/experiments/whatif.rs

/root/repo/target/debug/deps/libmtperf_repro-269624c848179fca.rlib: crates/repro/src/lib.rs crates/repro/src/context.rs crates/repro/src/experiments/mod.rs crates/repro/src/experiments/ablation.rs crates/repro/src/experiments/breakdown.rs crates/repro/src/experiments/comparison.rs crates/repro/src/experiments/curve.rs crates/repro/src/experiments/events.rs crates/repro/src/experiments/figure1.rs crates/repro/src/experiments/figure2.rs crates/repro/src/experiments/figure3.rs crates/repro/src/experiments/generalize.rs crates/repro/src/experiments/headline.rs crates/repro/src/experiments/interactions.rs crates/repro/src/experiments/lm_analysis.rs crates/repro/src/experiments/netburst.rs crates/repro/src/experiments/occupancy.rs crates/repro/src/experiments/split_impact.rs crates/repro/src/experiments/table1.rs crates/repro/src/experiments/whatif.rs

/root/repo/target/debug/deps/libmtperf_repro-269624c848179fca.rmeta: crates/repro/src/lib.rs crates/repro/src/context.rs crates/repro/src/experiments/mod.rs crates/repro/src/experiments/ablation.rs crates/repro/src/experiments/breakdown.rs crates/repro/src/experiments/comparison.rs crates/repro/src/experiments/curve.rs crates/repro/src/experiments/events.rs crates/repro/src/experiments/figure1.rs crates/repro/src/experiments/figure2.rs crates/repro/src/experiments/figure3.rs crates/repro/src/experiments/generalize.rs crates/repro/src/experiments/headline.rs crates/repro/src/experiments/interactions.rs crates/repro/src/experiments/lm_analysis.rs crates/repro/src/experiments/netburst.rs crates/repro/src/experiments/occupancy.rs crates/repro/src/experiments/split_impact.rs crates/repro/src/experiments/table1.rs crates/repro/src/experiments/whatif.rs

crates/repro/src/lib.rs:
crates/repro/src/context.rs:
crates/repro/src/experiments/mod.rs:
crates/repro/src/experiments/ablation.rs:
crates/repro/src/experiments/breakdown.rs:
crates/repro/src/experiments/comparison.rs:
crates/repro/src/experiments/curve.rs:
crates/repro/src/experiments/events.rs:
crates/repro/src/experiments/figure1.rs:
crates/repro/src/experiments/figure2.rs:
crates/repro/src/experiments/figure3.rs:
crates/repro/src/experiments/generalize.rs:
crates/repro/src/experiments/headline.rs:
crates/repro/src/experiments/interactions.rs:
crates/repro/src/experiments/lm_analysis.rs:
crates/repro/src/experiments/netburst.rs:
crates/repro/src/experiments/occupancy.rs:
crates/repro/src/experiments/split_impact.rs:
crates/repro/src/experiments/table1.rs:
crates/repro/src/experiments/whatif.rs:
