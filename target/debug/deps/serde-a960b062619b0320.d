/root/repo/target/debug/deps/serde-a960b062619b0320.d: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/value.rs

/root/repo/target/debug/deps/serde-a960b062619b0320: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/value.rs

vendor/serde/src/lib.rs:
vendor/serde/src/de.rs:
vendor/serde/src/value.rs:
