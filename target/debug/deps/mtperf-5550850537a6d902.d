/root/repo/target/debug/deps/mtperf-5550850537a6d902.d: crates/mtperf/src/bin/mtperf.rs

/root/repo/target/debug/deps/mtperf-5550850537a6d902: crates/mtperf/src/bin/mtperf.rs

crates/mtperf/src/bin/mtperf.rs:
