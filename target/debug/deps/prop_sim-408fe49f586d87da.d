/root/repo/target/debug/deps/prop_sim-408fe49f586d87da.d: crates/sim/tests/prop_sim.rs

/root/repo/target/debug/deps/prop_sim-408fe49f586d87da: crates/sim/tests/prop_sim.rs

crates/sim/tests/prop_sim.rs:
