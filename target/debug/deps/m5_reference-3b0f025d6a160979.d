/root/repo/target/debug/deps/m5_reference-3b0f025d6a160979.d: crates/mtree/tests/m5_reference.rs

/root/repo/target/debug/deps/m5_reference-3b0f025d6a160979: crates/mtree/tests/m5_reference.rs

crates/mtree/tests/m5_reference.rs:
