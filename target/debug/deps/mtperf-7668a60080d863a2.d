/root/repo/target/debug/deps/mtperf-7668a60080d863a2.d: crates/mtperf/src/lib.rs crates/mtperf/src/cli.rs

/root/repo/target/debug/deps/mtperf-7668a60080d863a2: crates/mtperf/src/lib.rs crates/mtperf/src/cli.rs

crates/mtperf/src/lib.rs:
crates/mtperf/src/cli.rs:
