/root/repo/target/debug/deps/comparison-3a97d47a2b4875a5.d: crates/mtperf/../../tests/comparison.rs

/root/repo/target/debug/deps/comparison-3a97d47a2b4875a5: crates/mtperf/../../tests/comparison.rs

crates/mtperf/../../tests/comparison.rs:
