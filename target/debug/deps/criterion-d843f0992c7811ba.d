/root/repo/target/debug/deps/criterion-d843f0992c7811ba.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-d843f0992c7811ba: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
