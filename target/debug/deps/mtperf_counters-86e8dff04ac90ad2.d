/root/repo/target/debug/deps/mtperf_counters-86e8dff04ac90ad2.d: crates/counters/src/lib.rs crates/counters/src/arff.rs crates/counters/src/bank.rs crates/counters/src/csv.rs crates/counters/src/events.rs crates/counters/src/sample.rs crates/counters/src/sampleset.rs

/root/repo/target/debug/deps/mtperf_counters-86e8dff04ac90ad2: crates/counters/src/lib.rs crates/counters/src/arff.rs crates/counters/src/bank.rs crates/counters/src/csv.rs crates/counters/src/events.rs crates/counters/src/sample.rs crates/counters/src/sampleset.rs

crates/counters/src/lib.rs:
crates/counters/src/arff.rs:
crates/counters/src/bank.rs:
crates/counters/src/csv.rs:
crates/counters/src/events.rs:
crates/counters/src/sample.rs:
crates/counters/src/sampleset.rs:
