/root/repo/target/debug/deps/paper_shape-6208fcdc41aa3c78.d: crates/mtperf/../../tests/paper_shape.rs

/root/repo/target/debug/deps/paper_shape-6208fcdc41aa3c78: crates/mtperf/../../tests/paper_shape.rs

crates/mtperf/../../tests/paper_shape.rs:
