/root/repo/target/debug/deps/mtperf_bench-19cb6e130b89bed2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmtperf_bench-19cb6e130b89bed2.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmtperf_bench-19cb6e130b89bed2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
