/root/repo/target/debug/deps/mtperf_mtree-9d43386f1ee42162.d: crates/mtree/src/lib.rs crates/mtree/src/analysis.rs crates/mtree/src/build.rs crates/mtree/src/dataset.rs crates/mtree/src/error.rs crates/mtree/src/learner.rs crates/mtree/src/model.rs crates/mtree/src/node.rs crates/mtree/src/params.rs crates/mtree/src/persist.rs crates/mtree/src/phase.rs crates/mtree/src/render.rs crates/mtree/src/rules.rs crates/mtree/src/split.rs crates/mtree/src/tree.rs

/root/repo/target/debug/deps/libmtperf_mtree-9d43386f1ee42162.rlib: crates/mtree/src/lib.rs crates/mtree/src/analysis.rs crates/mtree/src/build.rs crates/mtree/src/dataset.rs crates/mtree/src/error.rs crates/mtree/src/learner.rs crates/mtree/src/model.rs crates/mtree/src/node.rs crates/mtree/src/params.rs crates/mtree/src/persist.rs crates/mtree/src/phase.rs crates/mtree/src/render.rs crates/mtree/src/rules.rs crates/mtree/src/split.rs crates/mtree/src/tree.rs

/root/repo/target/debug/deps/libmtperf_mtree-9d43386f1ee42162.rmeta: crates/mtree/src/lib.rs crates/mtree/src/analysis.rs crates/mtree/src/build.rs crates/mtree/src/dataset.rs crates/mtree/src/error.rs crates/mtree/src/learner.rs crates/mtree/src/model.rs crates/mtree/src/node.rs crates/mtree/src/params.rs crates/mtree/src/persist.rs crates/mtree/src/phase.rs crates/mtree/src/render.rs crates/mtree/src/rules.rs crates/mtree/src/split.rs crates/mtree/src/tree.rs

crates/mtree/src/lib.rs:
crates/mtree/src/analysis.rs:
crates/mtree/src/build.rs:
crates/mtree/src/dataset.rs:
crates/mtree/src/error.rs:
crates/mtree/src/learner.rs:
crates/mtree/src/model.rs:
crates/mtree/src/node.rs:
crates/mtree/src/params.rs:
crates/mtree/src/persist.rs:
crates/mtree/src/phase.rs:
crates/mtree/src/render.rs:
crates/mtree/src/rules.rs:
crates/mtree/src/split.rs:
crates/mtree/src/tree.rs:
