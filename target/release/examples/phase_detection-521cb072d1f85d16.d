/root/repo/target/release/examples/phase_detection-521cb072d1f85d16.d: crates/mtperf/../../examples/phase_detection.rs Cargo.toml

/root/repo/target/release/examples/libphase_detection-521cb072d1f85d16.rmeta: crates/mtperf/../../examples/phase_detection.rs Cargo.toml

crates/mtperf/../../examples/phase_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
