/root/repo/target/release/examples/custom_machine-8f26a4c478e0157e.d: crates/mtperf/../../examples/custom_machine.rs

/root/repo/target/release/examples/custom_machine-8f26a4c478e0157e: crates/mtperf/../../examples/custom_machine.rs

crates/mtperf/../../examples/custom_machine.rs:
