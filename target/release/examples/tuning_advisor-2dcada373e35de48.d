/root/repo/target/release/examples/tuning_advisor-2dcada373e35de48.d: crates/mtperf/../../examples/tuning_advisor.rs

/root/repo/target/release/examples/tuning_advisor-2dcada373e35de48: crates/mtperf/../../examples/tuning_advisor.rs

crates/mtperf/../../examples/tuning_advisor.rs:
