/root/repo/target/release/examples/spec_analysis-07f398d97fdd3c01.d: crates/mtperf/../../examples/spec_analysis.rs

/root/repo/target/release/examples/spec_analysis-07f398d97fdd3c01: crates/mtperf/../../examples/spec_analysis.rs

crates/mtperf/../../examples/spec_analysis.rs:
