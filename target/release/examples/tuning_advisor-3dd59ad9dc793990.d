/root/repo/target/release/examples/tuning_advisor-3dd59ad9dc793990.d: crates/mtperf/../../examples/tuning_advisor.rs Cargo.toml

/root/repo/target/release/examples/libtuning_advisor-3dd59ad9dc793990.rmeta: crates/mtperf/../../examples/tuning_advisor.rs Cargo.toml

crates/mtperf/../../examples/tuning_advisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
