/root/repo/target/release/examples/rule_report-11af6f7056abc6c5.d: crates/mtperf/../../examples/rule_report.rs

/root/repo/target/release/examples/rule_report-11af6f7056abc6c5: crates/mtperf/../../examples/rule_report.rs

crates/mtperf/../../examples/rule_report.rs:
