/root/repo/target/release/examples/quickstart-9e46cdd82495d87f.d: crates/mtperf/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-9e46cdd82495d87f: crates/mtperf/../../examples/quickstart.rs

crates/mtperf/../../examples/quickstart.rs:
