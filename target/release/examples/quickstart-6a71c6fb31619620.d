/root/repo/target/release/examples/quickstart-6a71c6fb31619620.d: crates/mtperf/../../examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-6a71c6fb31619620.rmeta: crates/mtperf/../../examples/quickstart.rs Cargo.toml

crates/mtperf/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
