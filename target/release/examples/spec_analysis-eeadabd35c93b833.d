/root/repo/target/release/examples/spec_analysis-eeadabd35c93b833.d: crates/mtperf/../../examples/spec_analysis.rs Cargo.toml

/root/repo/target/release/examples/libspec_analysis-eeadabd35c93b833.rmeta: crates/mtperf/../../examples/spec_analysis.rs Cargo.toml

crates/mtperf/../../examples/spec_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
