/root/repo/target/release/examples/custom_machine-c8fb341e13b8a939.d: crates/mtperf/../../examples/custom_machine.rs Cargo.toml

/root/repo/target/release/examples/libcustom_machine-c8fb341e13b8a939.rmeta: crates/mtperf/../../examples/custom_machine.rs Cargo.toml

crates/mtperf/../../examples/custom_machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
