/root/repo/target/release/examples/rule_report-746238e45ce71ba1.d: crates/mtperf/../../examples/rule_report.rs Cargo.toml

/root/repo/target/release/examples/librule_report-746238e45ce71ba1.rmeta: crates/mtperf/../../examples/rule_report.rs Cargo.toml

crates/mtperf/../../examples/rule_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
