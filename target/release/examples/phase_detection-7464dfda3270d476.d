/root/repo/target/release/examples/phase_detection-7464dfda3270d476.d: crates/mtperf/../../examples/phase_detection.rs

/root/repo/target/release/examples/phase_detection-7464dfda3270d476: crates/mtperf/../../examples/phase_detection.rs

crates/mtperf/../../examples/phase_detection.rs:
