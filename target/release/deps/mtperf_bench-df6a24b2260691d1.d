/root/repo/target/release/deps/mtperf_bench-df6a24b2260691d1.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmtperf_bench-df6a24b2260691d1.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmtperf_bench-df6a24b2260691d1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
