/root/repo/target/release/deps/suite_stats-9a377bfc97605197.d: crates/sim/tests/suite_stats.rs

/root/repo/target/release/deps/suite_stats-9a377bfc97605197: crates/sim/tests/suite_stats.rs

crates/sim/tests/suite_stats.rs:
