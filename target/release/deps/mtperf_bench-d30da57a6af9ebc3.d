/root/repo/target/release/deps/mtperf_bench-d30da57a6af9ebc3.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/mtperf_bench-d30da57a6af9ebc3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
