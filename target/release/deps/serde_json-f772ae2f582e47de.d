/root/repo/target/release/deps/serde_json-f772ae2f582e47de.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/read.rs vendor/serde_json/src/write.rs

/root/repo/target/release/deps/serde_json-f772ae2f582e47de: vendor/serde_json/src/lib.rs vendor/serde_json/src/read.rs vendor/serde_json/src/write.rs

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/read.rs:
vendor/serde_json/src/write.rs:
