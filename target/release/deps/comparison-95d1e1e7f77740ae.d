/root/repo/target/release/deps/comparison-95d1e1e7f77740ae.d: crates/mtperf/../../tests/comparison.rs

/root/repo/target/release/deps/comparison-95d1e1e7f77740ae: crates/mtperf/../../tests/comparison.rs

crates/mtperf/../../tests/comparison.rs:
