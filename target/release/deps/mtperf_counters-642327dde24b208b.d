/root/repo/target/release/deps/mtperf_counters-642327dde24b208b.d: crates/counters/src/lib.rs crates/counters/src/arff.rs crates/counters/src/bank.rs crates/counters/src/csv.rs crates/counters/src/events.rs crates/counters/src/sample.rs crates/counters/src/sampleset.rs Cargo.toml

/root/repo/target/release/deps/libmtperf_counters-642327dde24b208b.rmeta: crates/counters/src/lib.rs crates/counters/src/arff.rs crates/counters/src/bank.rs crates/counters/src/csv.rs crates/counters/src/events.rs crates/counters/src/sample.rs crates/counters/src/sampleset.rs Cargo.toml

crates/counters/src/lib.rs:
crates/counters/src/arff.rs:
crates/counters/src/bank.rs:
crates/counters/src/csv.rs:
crates/counters/src/events.rs:
crates/counters/src/sample.rs:
crates/counters/src/sampleset.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
