/root/repo/target/release/deps/rand-f1caaa9efd06843d.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/distributions.rs vendor/rand/src/uniform.rs

/root/repo/target/release/deps/rand-f1caaa9efd06843d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/distributions.rs vendor/rand/src/uniform.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/uniform.rs:
