/root/repo/target/release/deps/mtperf_counters-4a4878fa8dba650b.d: crates/counters/src/lib.rs crates/counters/src/arff.rs crates/counters/src/bank.rs crates/counters/src/csv.rs crates/counters/src/events.rs crates/counters/src/sample.rs crates/counters/src/sampleset.rs

/root/repo/target/release/deps/libmtperf_counters-4a4878fa8dba650b.rlib: crates/counters/src/lib.rs crates/counters/src/arff.rs crates/counters/src/bank.rs crates/counters/src/csv.rs crates/counters/src/events.rs crates/counters/src/sample.rs crates/counters/src/sampleset.rs

/root/repo/target/release/deps/libmtperf_counters-4a4878fa8dba650b.rmeta: crates/counters/src/lib.rs crates/counters/src/arff.rs crates/counters/src/bank.rs crates/counters/src/csv.rs crates/counters/src/events.rs crates/counters/src/sample.rs crates/counters/src/sampleset.rs

crates/counters/src/lib.rs:
crates/counters/src/arff.rs:
crates/counters/src/bank.rs:
crates/counters/src/csv.rs:
crates/counters/src/events.rs:
crates/counters/src/sample.rs:
crates/counters/src/sampleset.rs:
