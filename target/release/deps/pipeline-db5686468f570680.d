/root/repo/target/release/deps/pipeline-db5686468f570680.d: crates/bench/benches/pipeline.rs Cargo.toml

/root/repo/target/release/deps/libpipeline-db5686468f570680.rmeta: crates/bench/benches/pipeline.rs Cargo.toml

crates/bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
