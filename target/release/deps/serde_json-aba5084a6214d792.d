/root/repo/target/release/deps/serde_json-aba5084a6214d792.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/read.rs vendor/serde_json/src/write.rs Cargo.toml

/root/repo/target/release/deps/libserde_json-aba5084a6214d792.rmeta: vendor/serde_json/src/lib.rs vendor/serde_json/src/read.rs vendor/serde_json/src/write.rs Cargo.toml

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/read.rs:
vendor/serde_json/src/write.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
