/root/repo/target/release/deps/m5_reference-ed682300e2d99f02.d: crates/mtree/tests/m5_reference.rs

/root/repo/target/release/deps/m5_reference-ed682300e2d99f02: crates/mtree/tests/m5_reference.rs

crates/mtree/tests/m5_reference.rs:
