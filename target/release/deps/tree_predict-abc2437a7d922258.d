/root/repo/target/release/deps/tree_predict-abc2437a7d922258.d: crates/bench/benches/tree_predict.rs

/root/repo/target/release/deps/tree_predict-abc2437a7d922258: crates/bench/benches/tree_predict.rs

crates/bench/benches/tree_predict.rs:
