/root/repo/target/release/deps/mtperf_repro-ce929c2497f69f7b.d: crates/repro/src/main.rs

/root/repo/target/release/deps/mtperf_repro-ce929c2497f69f7b: crates/repro/src/main.rs

crates/repro/src/main.rs:
