/root/repo/target/release/deps/proptest-a34e8906beef3c7c.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/release/deps/libproptest-a34e8906beef3c7c.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
