/root/repo/target/release/deps/simulator-d82c374a1f5a30f5.d: crates/bench/benches/simulator.rs

/root/repo/target/release/deps/simulator-d82c374a1f5a30f5: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
