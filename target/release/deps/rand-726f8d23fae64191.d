/root/repo/target/release/deps/rand-726f8d23fae64191.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/distributions.rs vendor/rand/src/uniform.rs

/root/repo/target/release/deps/librand-726f8d23fae64191.rlib: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/distributions.rs vendor/rand/src/uniform.rs

/root/repo/target/release/deps/librand-726f8d23fae64191.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/distributions.rs vendor/rand/src/uniform.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/uniform.rs:
