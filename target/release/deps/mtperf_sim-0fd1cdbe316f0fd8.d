/root/repo/target/release/deps/mtperf_sim-0fd1cdbe316f0fd8.d: crates/sim/src/lib.rs crates/sim/src/branch.rs crates/sim/src/btb.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/cycle.rs crates/sim/src/instr.rs crates/sim/src/loadblock.rs crates/sim/src/memory.rs crates/sim/src/sim.rs crates/sim/src/tlb.rs crates/sim/src/workload/mod.rs crates/sim/src/workload/gen.rs crates/sim/src/workload/profiles.rs crates/sim/src/workload/spec.rs Cargo.toml

/root/repo/target/release/deps/libmtperf_sim-0fd1cdbe316f0fd8.rmeta: crates/sim/src/lib.rs crates/sim/src/branch.rs crates/sim/src/btb.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/cycle.rs crates/sim/src/instr.rs crates/sim/src/loadblock.rs crates/sim/src/memory.rs crates/sim/src/sim.rs crates/sim/src/tlb.rs crates/sim/src/workload/mod.rs crates/sim/src/workload/gen.rs crates/sim/src/workload/profiles.rs crates/sim/src/workload/spec.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/branch.rs:
crates/sim/src/btb.rs:
crates/sim/src/cache.rs:
crates/sim/src/config.rs:
crates/sim/src/cycle.rs:
crates/sim/src/instr.rs:
crates/sim/src/loadblock.rs:
crates/sim/src/memory.rs:
crates/sim/src/sim.rs:
crates/sim/src/tlb.rs:
crates/sim/src/workload/mod.rs:
crates/sim/src/workload/gen.rs:
crates/sim/src/workload/profiles.rs:
crates/sim/src/workload/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
