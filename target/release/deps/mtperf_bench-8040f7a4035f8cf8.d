/root/repo/target/release/deps/mtperf_bench-8040f7a4035f8cf8.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmtperf_bench-8040f7a4035f8cf8.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmtperf_bench-8040f7a4035f8cf8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
