/root/repo/target/release/deps/simulator-fb1cf4379d42094b.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/release/deps/libsimulator-fb1cf4379d42094b.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
