/root/repo/target/release/deps/criterion-8bc7bfb2a0627d42.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-8bc7bfb2a0627d42.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
