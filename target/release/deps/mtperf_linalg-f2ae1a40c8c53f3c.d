/root/repo/target/release/deps/mtperf_linalg-f2ae1a40c8c53f3c.d: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/matrix.rs crates/linalg/src/parallel.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs

/root/repo/target/release/deps/libmtperf_linalg-f2ae1a40c8c53f3c.rlib: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/matrix.rs crates/linalg/src/parallel.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs

/root/repo/target/release/deps/libmtperf_linalg-f2ae1a40c8c53f3c.rmeta: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/matrix.rs crates/linalg/src/parallel.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/error.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/parallel.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/stats.rs:
