/root/repo/target/release/deps/prop_linalg-ce8ad08f053be65c.d: crates/linalg/tests/prop_linalg.rs

/root/repo/target/release/deps/prop_linalg-ce8ad08f053be65c: crates/linalg/tests/prop_linalg.rs

crates/linalg/tests/prop_linalg.rs:
