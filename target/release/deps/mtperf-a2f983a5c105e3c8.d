/root/repo/target/release/deps/mtperf-a2f983a5c105e3c8.d: crates/mtperf/src/bin/mtperf.rs Cargo.toml

/root/repo/target/release/deps/libmtperf-a2f983a5c105e3c8.rmeta: crates/mtperf/src/bin/mtperf.rs Cargo.toml

crates/mtperf/src/bin/mtperf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
