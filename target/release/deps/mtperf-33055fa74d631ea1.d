/root/repo/target/release/deps/mtperf-33055fa74d631ea1.d: crates/mtperf/src/lib.rs crates/mtperf/src/cli.rs

/root/repo/target/release/deps/mtperf-33055fa74d631ea1: crates/mtperf/src/lib.rs crates/mtperf/src/cli.rs

crates/mtperf/src/lib.rs:
crates/mtperf/src/cli.rs:
