/root/repo/target/release/deps/suite_stats-e6d25fc457c46ef7.d: crates/sim/tests/suite_stats.rs Cargo.toml

/root/repo/target/release/deps/libsuite_stats-e6d25fc457c46ef7.rmeta: crates/sim/tests/suite_stats.rs Cargo.toml

crates/sim/tests/suite_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
