/root/repo/target/release/deps/mtperf-d31aa806dec6e4d9.d: crates/mtperf/src/lib.rs crates/mtperf/src/cli.rs Cargo.toml

/root/repo/target/release/deps/libmtperf-d31aa806dec6e4d9.rmeta: crates/mtperf/src/lib.rs crates/mtperf/src/cli.rs Cargo.toml

crates/mtperf/src/lib.rs:
crates/mtperf/src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
