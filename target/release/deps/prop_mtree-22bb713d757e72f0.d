/root/repo/target/release/deps/prop_mtree-22bb713d757e72f0.d: crates/mtree/tests/prop_mtree.rs

/root/repo/target/release/deps/prop_mtree-22bb713d757e72f0: crates/mtree/tests/prop_mtree.rs

crates/mtree/tests/prop_mtree.rs:
