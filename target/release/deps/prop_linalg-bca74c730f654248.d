/root/repo/target/release/deps/prop_linalg-bca74c730f654248.d: crates/linalg/tests/prop_linalg.rs Cargo.toml

/root/repo/target/release/deps/libprop_linalg-bca74c730f654248.rmeta: crates/linalg/tests/prop_linalg.rs Cargo.toml

crates/linalg/tests/prop_linalg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
