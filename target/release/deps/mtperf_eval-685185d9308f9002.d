/root/repo/target/release/deps/mtperf_eval-685185d9308f9002.d: crates/eval/src/lib.rs crates/eval/src/breakdown.rs crates/eval/src/curve.rs crates/eval/src/cv.rs crates/eval/src/metrics.rs crates/eval/src/repeat.rs crates/eval/src/report.rs crates/eval/src/significance.rs

/root/repo/target/release/deps/libmtperf_eval-685185d9308f9002.rlib: crates/eval/src/lib.rs crates/eval/src/breakdown.rs crates/eval/src/curve.rs crates/eval/src/cv.rs crates/eval/src/metrics.rs crates/eval/src/repeat.rs crates/eval/src/report.rs crates/eval/src/significance.rs

/root/repo/target/release/deps/libmtperf_eval-685185d9308f9002.rmeta: crates/eval/src/lib.rs crates/eval/src/breakdown.rs crates/eval/src/curve.rs crates/eval/src/cv.rs crates/eval/src/metrics.rs crates/eval/src/repeat.rs crates/eval/src/report.rs crates/eval/src/significance.rs

crates/eval/src/lib.rs:
crates/eval/src/breakdown.rs:
crates/eval/src/curve.rs:
crates/eval/src/cv.rs:
crates/eval/src/metrics.rs:
crates/eval/src/repeat.rs:
crates/eval/src/report.rs:
crates/eval/src/significance.rs:
