/root/repo/target/release/deps/serde-a3d4d209821f2d99.d: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/value.rs

/root/repo/target/release/deps/libserde-a3d4d209821f2d99.rlib: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/value.rs

/root/repo/target/release/deps/libserde-a3d4d209821f2d99.rmeta: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/value.rs

vendor/serde/src/lib.rs:
vendor/serde/src/de.rs:
vendor/serde/src/value.rs:
