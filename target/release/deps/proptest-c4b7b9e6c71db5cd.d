/root/repo/target/release/deps/proptest-c4b7b9e6c71db5cd.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/proptest-c4b7b9e6c71db5cd: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/test_runner.rs:
