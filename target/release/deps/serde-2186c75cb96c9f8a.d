/root/repo/target/release/deps/serde-2186c75cb96c9f8a.d: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/value.rs

/root/repo/target/release/deps/serde-2186c75cb96c9f8a: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/value.rs

vendor/serde/src/lib.rs:
vendor/serde/src/de.rs:
vendor/serde/src/value.rs:
