/root/repo/target/release/deps/mtperf_repro-a78c803794e4e703.d: crates/repro/src/lib.rs crates/repro/src/context.rs crates/repro/src/experiments/mod.rs crates/repro/src/experiments/ablation.rs crates/repro/src/experiments/breakdown.rs crates/repro/src/experiments/comparison.rs crates/repro/src/experiments/curve.rs crates/repro/src/experiments/events.rs crates/repro/src/experiments/figure1.rs crates/repro/src/experiments/figure2.rs crates/repro/src/experiments/figure3.rs crates/repro/src/experiments/generalize.rs crates/repro/src/experiments/headline.rs crates/repro/src/experiments/interactions.rs crates/repro/src/experiments/lm_analysis.rs crates/repro/src/experiments/netburst.rs crates/repro/src/experiments/occupancy.rs crates/repro/src/experiments/split_impact.rs crates/repro/src/experiments/table1.rs crates/repro/src/experiments/whatif.rs Cargo.toml

/root/repo/target/release/deps/libmtperf_repro-a78c803794e4e703.rmeta: crates/repro/src/lib.rs crates/repro/src/context.rs crates/repro/src/experiments/mod.rs crates/repro/src/experiments/ablation.rs crates/repro/src/experiments/breakdown.rs crates/repro/src/experiments/comparison.rs crates/repro/src/experiments/curve.rs crates/repro/src/experiments/events.rs crates/repro/src/experiments/figure1.rs crates/repro/src/experiments/figure2.rs crates/repro/src/experiments/figure3.rs crates/repro/src/experiments/generalize.rs crates/repro/src/experiments/headline.rs crates/repro/src/experiments/interactions.rs crates/repro/src/experiments/lm_analysis.rs crates/repro/src/experiments/netburst.rs crates/repro/src/experiments/occupancy.rs crates/repro/src/experiments/split_impact.rs crates/repro/src/experiments/table1.rs crates/repro/src/experiments/whatif.rs Cargo.toml

crates/repro/src/lib.rs:
crates/repro/src/context.rs:
crates/repro/src/experiments/mod.rs:
crates/repro/src/experiments/ablation.rs:
crates/repro/src/experiments/breakdown.rs:
crates/repro/src/experiments/comparison.rs:
crates/repro/src/experiments/curve.rs:
crates/repro/src/experiments/events.rs:
crates/repro/src/experiments/figure1.rs:
crates/repro/src/experiments/figure2.rs:
crates/repro/src/experiments/figure3.rs:
crates/repro/src/experiments/generalize.rs:
crates/repro/src/experiments/headline.rs:
crates/repro/src/experiments/interactions.rs:
crates/repro/src/experiments/lm_analysis.rs:
crates/repro/src/experiments/netburst.rs:
crates/repro/src/experiments/occupancy.rs:
crates/repro/src/experiments/split_impact.rs:
crates/repro/src/experiments/table1.rs:
crates/repro/src/experiments/whatif.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
