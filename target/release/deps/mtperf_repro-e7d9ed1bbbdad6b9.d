/root/repo/target/release/deps/mtperf_repro-e7d9ed1bbbdad6b9.d: crates/repro/src/main.rs Cargo.toml

/root/repo/target/release/deps/libmtperf_repro-e7d9ed1bbbdad6b9.rmeta: crates/repro/src/main.rs Cargo.toml

crates/repro/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
