/root/repo/target/release/deps/mtperf_linalg-a2327d20d4348a24.d: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/matrix.rs crates/linalg/src/parallel.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs

/root/repo/target/release/deps/mtperf_linalg-a2327d20d4348a24: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/matrix.rs crates/linalg/src/parallel.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/error.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/parallel.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/stats.rs:
