/root/repo/target/release/deps/mtperf_eval-df52ccfe4ddade27.d: crates/eval/src/lib.rs crates/eval/src/breakdown.rs crates/eval/src/curve.rs crates/eval/src/cv.rs crates/eval/src/metrics.rs crates/eval/src/repeat.rs crates/eval/src/report.rs crates/eval/src/significance.rs Cargo.toml

/root/repo/target/release/deps/libmtperf_eval-df52ccfe4ddade27.rmeta: crates/eval/src/lib.rs crates/eval/src/breakdown.rs crates/eval/src/curve.rs crates/eval/src/cv.rs crates/eval/src/metrics.rs crates/eval/src/repeat.rs crates/eval/src/report.rs crates/eval/src/significance.rs Cargo.toml

crates/eval/src/lib.rs:
crates/eval/src/breakdown.rs:
crates/eval/src/curve.rs:
crates/eval/src/cv.rs:
crates/eval/src/metrics.rs:
crates/eval/src/repeat.rs:
crates/eval/src/report.rs:
crates/eval/src/significance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
