/root/repo/target/release/deps/mtperf_baselines-c5fdf7354aad4c1f.d: crates/baselines/src/lib.rs crates/baselines/src/cart.rs crates/baselines/src/ensemble.rs crates/baselines/src/knn.rs crates/baselines/src/linreg.rs crates/baselines/src/mlp.rs crates/baselines/src/scale.rs crates/baselines/src/suite.rs crates/baselines/src/svr.rs

/root/repo/target/release/deps/libmtperf_baselines-c5fdf7354aad4c1f.rlib: crates/baselines/src/lib.rs crates/baselines/src/cart.rs crates/baselines/src/ensemble.rs crates/baselines/src/knn.rs crates/baselines/src/linreg.rs crates/baselines/src/mlp.rs crates/baselines/src/scale.rs crates/baselines/src/suite.rs crates/baselines/src/svr.rs

/root/repo/target/release/deps/libmtperf_baselines-c5fdf7354aad4c1f.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cart.rs crates/baselines/src/ensemble.rs crates/baselines/src/knn.rs crates/baselines/src/linreg.rs crates/baselines/src/mlp.rs crates/baselines/src/scale.rs crates/baselines/src/suite.rs crates/baselines/src/svr.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cart.rs:
crates/baselines/src/ensemble.rs:
crates/baselines/src/knn.rs:
crates/baselines/src/linreg.rs:
crates/baselines/src/mlp.rs:
crates/baselines/src/scale.rs:
crates/baselines/src/suite.rs:
crates/baselines/src/svr.rs:
