/root/repo/target/release/deps/serde_json-1bea46762ab2a3cd.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/read.rs vendor/serde_json/src/write.rs

/root/repo/target/release/deps/libserde_json-1bea46762ab2a3cd.rlib: vendor/serde_json/src/lib.rs vendor/serde_json/src/read.rs vendor/serde_json/src/write.rs

/root/repo/target/release/deps/libserde_json-1bea46762ab2a3cd.rmeta: vendor/serde_json/src/lib.rs vendor/serde_json/src/read.rs vendor/serde_json/src/write.rs

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/read.rs:
vendor/serde_json/src/write.rs:
