/root/repo/target/release/deps/paper_shape-bc0be088f7811485.d: crates/mtperf/../../tests/paper_shape.rs

/root/repo/target/release/deps/paper_shape-bc0be088f7811485: crates/mtperf/../../tests/paper_shape.rs

crates/mtperf/../../tests/paper_shape.rs:
