/root/repo/target/release/deps/parallel_speedup-39efa7f1fbe37742.d: crates/bench/benches/parallel_speedup.rs

/root/repo/target/release/deps/parallel_speedup-39efa7f1fbe37742: crates/bench/benches/parallel_speedup.rs

crates/bench/benches/parallel_speedup.rs:
