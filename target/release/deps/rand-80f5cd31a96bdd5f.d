/root/repo/target/release/deps/rand-80f5cd31a96bdd5f.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/distributions.rs vendor/rand/src/uniform.rs Cargo.toml

/root/repo/target/release/deps/librand-80f5cd31a96bdd5f.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/distributions.rs vendor/rand/src/uniform.rs Cargo.toml

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/uniform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
