/root/repo/target/release/deps/determinism-71de17e363132355.d: crates/eval/tests/determinism.rs

/root/repo/target/release/deps/determinism-71de17e363132355: crates/eval/tests/determinism.rs

crates/eval/tests/determinism.rs:
