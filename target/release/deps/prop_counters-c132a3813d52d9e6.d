/root/repo/target/release/deps/prop_counters-c132a3813d52d9e6.d: crates/counters/tests/prop_counters.rs Cargo.toml

/root/repo/target/release/deps/libprop_counters-c132a3813d52d9e6.rmeta: crates/counters/tests/prop_counters.rs Cargo.toml

crates/counters/tests/prop_counters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
