/root/repo/target/release/deps/pipeline-61d917d7fd6fa80e.d: crates/mtperf/../../tests/pipeline.rs Cargo.toml

/root/repo/target/release/deps/libpipeline-61d917d7fd6fa80e.rmeta: crates/mtperf/../../tests/pipeline.rs Cargo.toml

crates/mtperf/../../tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
