/root/repo/target/release/deps/prop_counters-71ed608c3a3485f2.d: crates/counters/tests/prop_counters.rs

/root/repo/target/release/deps/prop_counters-71ed608c3a3485f2: crates/counters/tests/prop_counters.rs

crates/counters/tests/prop_counters.rs:
