/root/repo/target/release/deps/serde_derive-1ab059ca9b612483.d: vendor/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-1ab059ca9b612483.so: vendor/serde_derive/src/lib.rs Cargo.toml

vendor/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
