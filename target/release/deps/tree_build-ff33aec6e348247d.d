/root/repo/target/release/deps/tree_build-ff33aec6e348247d.d: crates/bench/benches/tree_build.rs

/root/repo/target/release/deps/tree_build-ff33aec6e348247d: crates/bench/benches/tree_build.rs

crates/bench/benches/tree_build.rs:
