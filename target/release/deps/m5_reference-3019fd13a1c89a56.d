/root/repo/target/release/deps/m5_reference-3019fd13a1c89a56.d: crates/mtree/tests/m5_reference.rs Cargo.toml

/root/repo/target/release/deps/libm5_reference-3019fd13a1c89a56.rmeta: crates/mtree/tests/m5_reference.rs Cargo.toml

crates/mtree/tests/m5_reference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
