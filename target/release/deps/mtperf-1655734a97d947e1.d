/root/repo/target/release/deps/mtperf-1655734a97d947e1.d: crates/mtperf/src/bin/mtperf.rs

/root/repo/target/release/deps/mtperf-1655734a97d947e1: crates/mtperf/src/bin/mtperf.rs

crates/mtperf/src/bin/mtperf.rs:
