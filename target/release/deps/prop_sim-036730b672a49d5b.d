/root/repo/target/release/deps/prop_sim-036730b672a49d5b.d: crates/sim/tests/prop_sim.rs

/root/repo/target/release/deps/prop_sim-036730b672a49d5b: crates/sim/tests/prop_sim.rs

crates/sim/tests/prop_sim.rs:
