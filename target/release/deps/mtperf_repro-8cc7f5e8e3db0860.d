/root/repo/target/release/deps/mtperf_repro-8cc7f5e8e3db0860.d: crates/repro/src/main.rs

/root/repo/target/release/deps/mtperf_repro-8cc7f5e8e3db0860: crates/repro/src/main.rs

crates/repro/src/main.rs:
