/root/repo/target/release/deps/tree_predict-a187f835cc972303.d: crates/bench/benches/tree_predict.rs Cargo.toml

/root/repo/target/release/deps/libtree_predict-a187f835cc972303.rmeta: crates/bench/benches/tree_predict.rs Cargo.toml

crates/bench/benches/tree_predict.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
