/root/repo/target/release/deps/mtperf-21cf72e22a4841e4.d: crates/mtperf/src/bin/mtperf.rs Cargo.toml

/root/repo/target/release/deps/libmtperf-21cf72e22a4841e4.rmeta: crates/mtperf/src/bin/mtperf.rs Cargo.toml

crates/mtperf/src/bin/mtperf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
