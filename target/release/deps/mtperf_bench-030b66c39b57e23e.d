/root/repo/target/release/deps/mtperf_bench-030b66c39b57e23e.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/mtperf_bench-030b66c39b57e23e: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
