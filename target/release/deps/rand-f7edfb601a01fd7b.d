/root/repo/target/release/deps/rand-f7edfb601a01fd7b.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/distributions.rs vendor/rand/src/uniform.rs Cargo.toml

/root/repo/target/release/deps/librand-f7edfb601a01fd7b.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/distributions.rs vendor/rand/src/uniform.rs Cargo.toml

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/uniform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
