/root/repo/target/release/deps/parallel_speedup-f640adc6c8752fd9.d: crates/bench/benches/parallel_speedup.rs Cargo.toml

/root/repo/target/release/deps/libparallel_speedup-f640adc6c8752fd9.rmeta: crates/bench/benches/parallel_speedup.rs Cargo.toml

crates/bench/benches/parallel_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
