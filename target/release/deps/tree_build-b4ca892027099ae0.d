/root/repo/target/release/deps/tree_build-b4ca892027099ae0.d: crates/bench/benches/tree_build.rs Cargo.toml

/root/repo/target/release/deps/libtree_build-b4ca892027099ae0.rmeta: crates/bench/benches/tree_build.rs Cargo.toml

crates/bench/benches/tree_build.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
