/root/repo/target/release/deps/mtperf_eval-78c7819c1fe521a4.d: crates/eval/src/lib.rs crates/eval/src/breakdown.rs crates/eval/src/curve.rs crates/eval/src/cv.rs crates/eval/src/metrics.rs crates/eval/src/repeat.rs crates/eval/src/report.rs crates/eval/src/significance.rs

/root/repo/target/release/deps/libmtperf_eval-78c7819c1fe521a4.rlib: crates/eval/src/lib.rs crates/eval/src/breakdown.rs crates/eval/src/curve.rs crates/eval/src/cv.rs crates/eval/src/metrics.rs crates/eval/src/repeat.rs crates/eval/src/report.rs crates/eval/src/significance.rs

/root/repo/target/release/deps/libmtperf_eval-78c7819c1fe521a4.rmeta: crates/eval/src/lib.rs crates/eval/src/breakdown.rs crates/eval/src/curve.rs crates/eval/src/cv.rs crates/eval/src/metrics.rs crates/eval/src/repeat.rs crates/eval/src/report.rs crates/eval/src/significance.rs

crates/eval/src/lib.rs:
crates/eval/src/breakdown.rs:
crates/eval/src/curve.rs:
crates/eval/src/cv.rs:
crates/eval/src/metrics.rs:
crates/eval/src/repeat.rs:
crates/eval/src/report.rs:
crates/eval/src/significance.rs:
