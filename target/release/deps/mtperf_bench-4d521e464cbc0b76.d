/root/repo/target/release/deps/mtperf_bench-4d521e464cbc0b76.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmtperf_bench-4d521e464cbc0b76.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmtperf_bench-4d521e464cbc0b76.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
