/root/repo/target/release/deps/serde-a3123da2263727f2.d: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/value.rs Cargo.toml

/root/repo/target/release/deps/libserde-a3123da2263727f2.rmeta: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/value.rs Cargo.toml

vendor/serde/src/lib.rs:
vendor/serde/src/de.rs:
vendor/serde/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
