/root/repo/target/release/deps/mtperf-3ac8cc3cfd8b3884.d: crates/mtperf/src/bin/mtperf.rs

/root/repo/target/release/deps/mtperf-3ac8cc3cfd8b3884: crates/mtperf/src/bin/mtperf.rs

crates/mtperf/src/bin/mtperf.rs:
