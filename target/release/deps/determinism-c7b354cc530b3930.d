/root/repo/target/release/deps/determinism-c7b354cc530b3930.d: crates/eval/tests/determinism.rs Cargo.toml

/root/repo/target/release/deps/libdeterminism-c7b354cc530b3930.rmeta: crates/eval/tests/determinism.rs Cargo.toml

crates/eval/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
