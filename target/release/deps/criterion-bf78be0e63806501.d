/root/repo/target/release/deps/criterion-bf78be0e63806501.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-bf78be0e63806501: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
