/root/repo/target/release/deps/mtperf_repro-67673a977d05b651.d: crates/repro/src/main.rs Cargo.toml

/root/repo/target/release/deps/libmtperf_repro-67673a977d05b651.rmeta: crates/repro/src/main.rs Cargo.toml

crates/repro/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
