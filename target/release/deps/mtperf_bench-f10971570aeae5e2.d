/root/repo/target/release/deps/mtperf_bench-f10971570aeae5e2.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libmtperf_bench-f10971570aeae5e2.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
