/root/repo/target/release/deps/criterion-083cbbf7648a02b7.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-083cbbf7648a02b7.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
