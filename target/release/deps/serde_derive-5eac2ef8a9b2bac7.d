/root/repo/target/release/deps/serde_derive-5eac2ef8a9b2bac7.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-5eac2ef8a9b2bac7.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
