/root/repo/target/release/deps/mtperf_baselines-bdaea0a4d6ec096e.d: crates/baselines/src/lib.rs crates/baselines/src/cart.rs crates/baselines/src/ensemble.rs crates/baselines/src/knn.rs crates/baselines/src/linreg.rs crates/baselines/src/mlp.rs crates/baselines/src/scale.rs crates/baselines/src/suite.rs crates/baselines/src/svr.rs Cargo.toml

/root/repo/target/release/deps/libmtperf_baselines-bdaea0a4d6ec096e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cart.rs crates/baselines/src/ensemble.rs crates/baselines/src/knn.rs crates/baselines/src/linreg.rs crates/baselines/src/mlp.rs crates/baselines/src/scale.rs crates/baselines/src/suite.rs crates/baselines/src/svr.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/cart.rs:
crates/baselines/src/ensemble.rs:
crates/baselines/src/knn.rs:
crates/baselines/src/linreg.rs:
crates/baselines/src/mlp.rs:
crates/baselines/src/scale.rs:
crates/baselines/src/suite.rs:
crates/baselines/src/svr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
