/root/repo/target/release/deps/mtperf-7eaae6ac9092e180.d: crates/mtperf/src/lib.rs crates/mtperf/src/cli.rs

/root/repo/target/release/deps/libmtperf-7eaae6ac9092e180.rlib: crates/mtperf/src/lib.rs crates/mtperf/src/cli.rs

/root/repo/target/release/deps/libmtperf-7eaae6ac9092e180.rmeta: crates/mtperf/src/lib.rs crates/mtperf/src/cli.rs

crates/mtperf/src/lib.rs:
crates/mtperf/src/cli.rs:
