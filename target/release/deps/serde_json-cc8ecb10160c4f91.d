/root/repo/target/release/deps/serde_json-cc8ecb10160c4f91.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/read.rs vendor/serde_json/src/write.rs Cargo.toml

/root/repo/target/release/deps/libserde_json-cc8ecb10160c4f91.rmeta: vendor/serde_json/src/lib.rs vendor/serde_json/src/read.rs vendor/serde_json/src/write.rs Cargo.toml

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/read.rs:
vendor/serde_json/src/write.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
