/root/repo/target/release/deps/serde_derive-472e752e243589ce.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-472e752e243589ce: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
