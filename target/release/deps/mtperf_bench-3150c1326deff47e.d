/root/repo/target/release/deps/mtperf_bench-3150c1326deff47e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libmtperf_bench-3150c1326deff47e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
