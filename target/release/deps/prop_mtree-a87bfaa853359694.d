/root/repo/target/release/deps/prop_mtree-a87bfaa853359694.d: crates/mtree/tests/prop_mtree.rs Cargo.toml

/root/repo/target/release/deps/libprop_mtree-a87bfaa853359694.rmeta: crates/mtree/tests/prop_mtree.rs Cargo.toml

crates/mtree/tests/prop_mtree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
