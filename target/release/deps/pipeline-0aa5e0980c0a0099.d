/root/repo/target/release/deps/pipeline-0aa5e0980c0a0099.d: crates/bench/benches/pipeline.rs

/root/repo/target/release/deps/pipeline-0aa5e0980c0a0099: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:
