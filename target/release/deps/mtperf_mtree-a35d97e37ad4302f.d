/root/repo/target/release/deps/mtperf_mtree-a35d97e37ad4302f.d: crates/mtree/src/lib.rs crates/mtree/src/analysis.rs crates/mtree/src/build.rs crates/mtree/src/dataset.rs crates/mtree/src/error.rs crates/mtree/src/learner.rs crates/mtree/src/model.rs crates/mtree/src/node.rs crates/mtree/src/params.rs crates/mtree/src/persist.rs crates/mtree/src/phase.rs crates/mtree/src/render.rs crates/mtree/src/rules.rs crates/mtree/src/split.rs crates/mtree/src/tree.rs Cargo.toml

/root/repo/target/release/deps/libmtperf_mtree-a35d97e37ad4302f.rmeta: crates/mtree/src/lib.rs crates/mtree/src/analysis.rs crates/mtree/src/build.rs crates/mtree/src/dataset.rs crates/mtree/src/error.rs crates/mtree/src/learner.rs crates/mtree/src/model.rs crates/mtree/src/node.rs crates/mtree/src/params.rs crates/mtree/src/persist.rs crates/mtree/src/phase.rs crates/mtree/src/render.rs crates/mtree/src/rules.rs crates/mtree/src/split.rs crates/mtree/src/tree.rs Cargo.toml

crates/mtree/src/lib.rs:
crates/mtree/src/analysis.rs:
crates/mtree/src/build.rs:
crates/mtree/src/dataset.rs:
crates/mtree/src/error.rs:
crates/mtree/src/learner.rs:
crates/mtree/src/model.rs:
crates/mtree/src/node.rs:
crates/mtree/src/params.rs:
crates/mtree/src/persist.rs:
crates/mtree/src/phase.rs:
crates/mtree/src/render.rs:
crates/mtree/src/rules.rs:
crates/mtree/src/split.rs:
crates/mtree/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
