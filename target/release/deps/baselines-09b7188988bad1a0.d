/root/repo/target/release/deps/baselines-09b7188988bad1a0.d: crates/bench/benches/baselines.rs

/root/repo/target/release/deps/baselines-09b7188988bad1a0: crates/bench/benches/baselines.rs

crates/bench/benches/baselines.rs:
