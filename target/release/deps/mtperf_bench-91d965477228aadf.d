/root/repo/target/release/deps/mtperf_bench-91d965477228aadf.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/mtperf_bench-91d965477228aadf: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
