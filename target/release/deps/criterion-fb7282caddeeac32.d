/root/repo/target/release/deps/criterion-fb7282caddeeac32.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-fb7282caddeeac32.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-fb7282caddeeac32.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
