/root/repo/target/release/deps/mtperf_linalg-eae7d4d7f462589c.d: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/matrix.rs crates/linalg/src/parallel.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs Cargo.toml

/root/repo/target/release/deps/libmtperf_linalg-eae7d4d7f462589c.rmeta: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/matrix.rs crates/linalg/src/parallel.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/error.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/parallel.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
