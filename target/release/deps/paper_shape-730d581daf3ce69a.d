/root/repo/target/release/deps/paper_shape-730d581daf3ce69a.d: crates/mtperf/../../tests/paper_shape.rs Cargo.toml

/root/repo/target/release/deps/libpaper_shape-730d581daf3ce69a.rmeta: crates/mtperf/../../tests/paper_shape.rs Cargo.toml

crates/mtperf/../../tests/paper_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
