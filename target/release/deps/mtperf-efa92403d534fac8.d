/root/repo/target/release/deps/mtperf-efa92403d534fac8.d: crates/mtperf/src/lib.rs crates/mtperf/src/cli.rs

/root/repo/target/release/deps/libmtperf-efa92403d534fac8.rlib: crates/mtperf/src/lib.rs crates/mtperf/src/cli.rs

/root/repo/target/release/deps/libmtperf-efa92403d534fac8.rmeta: crates/mtperf/src/lib.rs crates/mtperf/src/cli.rs

crates/mtperf/src/lib.rs:
crates/mtperf/src/cli.rs:
