/root/repo/target/release/deps/baselines-c91787636e04a69b.d: crates/bench/benches/baselines.rs Cargo.toml

/root/repo/target/release/deps/libbaselines-c91787636e04a69b.rmeta: crates/bench/benches/baselines.rs Cargo.toml

crates/bench/benches/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
