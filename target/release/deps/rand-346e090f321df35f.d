/root/repo/target/release/deps/rand-346e090f321df35f.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/distributions.rs vendor/rand/src/uniform.rs

/root/repo/target/release/deps/librand-346e090f321df35f.rlib: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/distributions.rs vendor/rand/src/uniform.rs

/root/repo/target/release/deps/librand-346e090f321df35f.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/distributions.rs vendor/rand/src/uniform.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/uniform.rs:
