/root/repo/target/release/deps/serde_derive-3cd6026f76dca6b4.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-3cd6026f76dca6b4.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
