/root/repo/target/release/deps/pipeline-c05a3014c1922e4d.d: crates/mtperf/../../tests/pipeline.rs

/root/repo/target/release/deps/pipeline-c05a3014c1922e4d: crates/mtperf/../../tests/pipeline.rs

crates/mtperf/../../tests/pipeline.rs:
