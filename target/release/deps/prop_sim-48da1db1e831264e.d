/root/repo/target/release/deps/prop_sim-48da1db1e831264e.d: crates/sim/tests/prop_sim.rs Cargo.toml

/root/repo/target/release/deps/libprop_sim-48da1db1e831264e.rmeta: crates/sim/tests/prop_sim.rs Cargo.toml

crates/sim/tests/prop_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
