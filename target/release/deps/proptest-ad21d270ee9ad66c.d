/root/repo/target/release/deps/proptest-ad21d270ee9ad66c.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-ad21d270ee9ad66c.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-ad21d270ee9ad66c.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/test_runner.rs:
