/root/repo/target/release/deps/comparison-636fb36e8ae07ada.d: crates/mtperf/../../tests/comparison.rs Cargo.toml

/root/repo/target/release/deps/libcomparison-636fb36e8ae07ada.rmeta: crates/mtperf/../../tests/comparison.rs Cargo.toml

crates/mtperf/../../tests/comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
