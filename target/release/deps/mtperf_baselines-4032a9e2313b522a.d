/root/repo/target/release/deps/mtperf_baselines-4032a9e2313b522a.d: crates/baselines/src/lib.rs crates/baselines/src/cart.rs crates/baselines/src/ensemble.rs crates/baselines/src/knn.rs crates/baselines/src/linreg.rs crates/baselines/src/mlp.rs crates/baselines/src/scale.rs crates/baselines/src/suite.rs crates/baselines/src/svr.rs

/root/repo/target/release/deps/libmtperf_baselines-4032a9e2313b522a.rlib: crates/baselines/src/lib.rs crates/baselines/src/cart.rs crates/baselines/src/ensemble.rs crates/baselines/src/knn.rs crates/baselines/src/linreg.rs crates/baselines/src/mlp.rs crates/baselines/src/scale.rs crates/baselines/src/suite.rs crates/baselines/src/svr.rs

/root/repo/target/release/deps/libmtperf_baselines-4032a9e2313b522a.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cart.rs crates/baselines/src/ensemble.rs crates/baselines/src/knn.rs crates/baselines/src/linreg.rs crates/baselines/src/mlp.rs crates/baselines/src/scale.rs crates/baselines/src/suite.rs crates/baselines/src/svr.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cart.rs:
crates/baselines/src/ensemble.rs:
crates/baselines/src/knn.rs:
crates/baselines/src/linreg.rs:
crates/baselines/src/mlp.rs:
crates/baselines/src/scale.rs:
crates/baselines/src/suite.rs:
crates/baselines/src/svr.rs:
