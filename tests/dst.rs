//! Deterministic-simulation soak of the serving stack.
//!
//! These tests are the acceptance gate for the DST harness: a large
//! randomized soak under virtual time with every serving invariant
//! checked, and bit-identical replay of a seed — the property that makes
//! any failing seed from CI a one-command local reproduction
//! (`mtperf dst --seed <N>`).

use mtperf::serve::dst::{run_sim, SimConfig};

/// 1,000 randomized client sessions from one seed: concurrent predicts,
/// malformed requests, deadline races, poisoned reloads, saves under
/// injected I/O faults, overload storms, transport drops, interleaved
/// multi-connection sessions with registry promote/rollback races,
/// cache-consistency probes, drain/restart and crash/restart cycles.
/// Every invariant must hold and the run must finish promptly — the
/// clock is virtual, so no real waiting happens.
#[test]
fn thousand_session_soak_holds_all_invariants() {
    let report = run_sim(&SimConfig {
        seed: 0xC0FFEE,
        sessions: 1000,
    });
    assert!(
        report.passed(),
        "invariant violations (replay with `mtperf dst --seed {}`): {:#?}",
        report.seed,
        report.violations
    );
    // The soak must have actually exercised the stack, not vacuously passed.
    assert!(report.requests > 1000, "requests: {}", report.requests);
    assert!(report.responses > 1000, "responses: {}", report.responses);
    assert!(
        report.typed_errors > 100,
        "typed errors: {}",
        report.typed_errors
    );
    assert!(report.restarts > 10, "restarts: {}", report.restarts);
    assert!(
        report.faults_injected > 10,
        "fs faults: {}",
        report.faults_injected
    );
    // ... including the multi-tenant surfaces added with protocol v2.
    assert!(
        report.multi_conn_sessions > 100,
        "multi-connection sessions: {}",
        report.multi_conn_sessions
    );
    assert!(
        report.registry_ops > 100,
        "registry ops: {}",
        report.registry_ops
    );
    assert!(
        report.cache_hits + report.cache_misses > 100,
        "cache lookups: {} hits + {} misses",
        report.cache_hits,
        report.cache_misses
    );
}

/// The replay guarantee: the same seed produces a byte-identical event
/// trace (and therefore the same verdict, accounting, and fingerprint),
/// while a different seed diverges.
#[test]
fn failing_seed_replay_is_bit_identical() {
    let cfg = SimConfig {
        seed: 20_070_401,
        sessions: 120,
    };
    let first = run_sim(&cfg);
    let second = run_sim(&cfg);
    assert!(first.passed(), "{:#?}", first.violations);
    assert_eq!(first.trace, second.trace, "replay must be byte-identical");
    assert_eq!(first.trace_hash(), second.trace_hash());
    assert_eq!(first.requests, second.requests);
    assert_eq!(first.responses, second.responses);
    assert_eq!(first.typed_errors, second.typed_errors);
    assert_eq!(first.restarts, second.restarts);
    assert_eq!(first.faults_injected, second.faults_injected);

    let other = run_sim(&SimConfig {
        seed: 20_070_402,
        sessions: 120,
    });
    assert_ne!(
        first.trace_hash(),
        other.trace_hash(),
        "different seeds must explore different schedules"
    );
}
