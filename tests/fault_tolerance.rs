//! Robustness integration: end-to-end behaviour under corrupted input.
//!
//! Three layers are exercised together:
//!
//! 1. **Ingestion** — repair-mode cross-validation accuracy on a corrupted
//!    dataset must stay within the tolerance DESIGN.md documents (0.05
//!    correlation) of the clean run.
//! 2. **Training** — a panicking worker inside the parallel engine surfaces
//!    as a structured error instead of aborting, and parallel results are
//!    bit-identical to serial ones on clean data.
//! 3. **CLI** — the `mtperf` binary maps failure classes to distinct exit
//!    codes (2 usage, 65 bad data, 74 i/o).

use std::process::Command;

use mtperf::prelude::*;
use mtperf_counters::faultinject::{FaultInjector, FaultOp};
use mtperf_counters::{read_csv_with_policy, write_csv, IngestPolicy, SampleSet};
use mtperf_eval::cross_validate_with;
use mtperf_linalg::{try_par_map, LinalgError, Parallelism};

const INSTRUCTIONS: u64 = 200_000;
const SECTION_LEN: u64 = 10_000;
const SEED: u64 = 2007;

/// Documented bound (DESIGN.md, "Data quality & fault tolerance") on how
/// far repair-mode CV correlation may drift from the clean-data run under
/// bounded corruption.
const REPAIR_CV_TOLERANCE: f64 = 0.05;

fn suite_csv() -> (SampleSet, String) {
    let samples = mtperf::sim::simulate_suite(INSTRUCTIONS, SECTION_LEN, SEED);
    let mut buf = Vec::new();
    write_csv(&samples, &mut buf).unwrap();
    (samples, String::from_utf8(buf).unwrap())
}

fn cv_correlation(samples: &SampleSet) -> f64 {
    let data = mtperf::dataset_from_samples(samples).unwrap();
    let min_instances = (data.n_rows() / 30).max(8);
    let learner = M5Learner::new(M5Params::default().with_min_instances(min_instances));
    let cv = cross_validate(&learner, &data, 10, 7).unwrap();
    cv.pooled.correlation
}

#[test]
fn repair_mode_cv_stays_within_tolerance_of_clean_run() {
    let (clean, csv) = suite_csv();

    // Bounded corruption: ~5% of the ~300 sections get a non-finite field,
    // a saturated counter, or a truncated tail.
    let mut inj = FaultInjector::new(11);
    let mut text = csv;
    for op in [
        FaultOp::FlipNonFinite(5),
        FaultOp::SaturateCounters(5),
        FaultOp::TruncateFields(5),
    ] {
        text = inj.apply(op, &text).text;
    }

    let (repaired, report) = read_csv_with_policy(text.as_bytes(), IngestPolicy::Repair).unwrap();
    assert!(!report.is_clean());
    assert!(
        report.rows_repaired() + report.rows_quarantined() >= 10,
        "{}",
        report.summary()
    );
    assert_eq!(report.rows_kept, repaired.len());

    let c_clean = cv_correlation(&clean);
    let c_repaired = cv_correlation(&repaired);
    assert!(
        (c_clean - c_repaired).abs() <= REPAIR_CV_TOLERANCE,
        "clean C = {c_clean}, repaired C = {c_repaired}"
    );
}

#[test]
fn panicking_worker_is_reported_not_aborted() {
    let items: Vec<usize> = (0..64).collect();
    let err = try_par_map(Parallelism::Fixed(4), &items, 1, |&x| {
        if x == 17 {
            panic!("injected fault");
        }
        x * 2
    })
    .unwrap_err();
    match err {
        LinalgError::WorkerPanic { index, message } => {
            assert_eq!(index, 17);
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected WorkerPanic, got {other}"),
    }
}

#[test]
fn parallel_cv_is_bit_identical_to_serial() {
    let samples = mtperf::sim::simulate_suite(100_000, SECTION_LEN, SEED);
    let data = mtperf::dataset_from_samples(&samples).unwrap();
    let min_instances = (data.n_rows() / 30).max(8);
    let learner = M5Learner::new(M5Params::default().with_min_instances(min_instances));
    let serial = cross_validate_with(&learner, &data, 10, 7, Parallelism::Off).unwrap();
    let parallel = cross_validate_with(&learner, &data, 10, 7, Parallelism::Fixed(4)).unwrap();
    assert_eq!(serial.pooled, parallel.pooled);
    assert_eq!(serial.aggregate, parallel.aggregate);
}

// ---- CLI exit-code contract ------------------------------------------------

fn mtperf_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mtperf"))
}

#[test]
fn cli_maps_failure_classes_to_distinct_exit_codes() {
    let dir = std::env::temp_dir().join("mtperf-fault-tolerance-cli");
    std::fs::create_dir_all(&dir).unwrap();
    let model = dir.join("model.json").display().to_string();

    // No arguments / unknown command / missing option: usage, exit 2.
    let out = mtperf_bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = mtperf_bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = mtperf_bin().arg("train").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = mtperf_bin()
        .args([
            "train", "--data", "x.csv", "--out", &model, "--policy", "lenient",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Nonexistent input file: i/o, exit 74.
    let out = mtperf_bin()
        .args([
            "train",
            "--data",
            "/nonexistent/mtperf.csv",
            "--out",
            &model,
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(74));

    // Corrupted CSV under strict: bad data, exit 65. Under skip: success,
    // with an ingest report on stderr.
    let (_, csv) = suite_csv();
    let corrupted = FaultInjector::new(3).apply(FaultOp::FlipNonFinite(4), &csv);
    let path = dir.join("corrupt.csv").display().to_string();
    std::fs::write(&path, &corrupted.text).unwrap();

    let out = mtperf_bin()
        .args(["train", "--data", &path, "--out", &model])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(65), "{:?}", out);

    let out = mtperf_bin()
        .args([
            "train", "--data", &path, "--out", &model, "--policy", "skip",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("quarantined"), "{stderr}");
    assert!(std::path::Path::new(&model).exists());

    std::fs::remove_dir_all(dir).ok();
}
