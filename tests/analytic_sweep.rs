//! Integration tests for compositional analytic fusion and `mtperf sweep`.
//!
//! Three contracts are pinned here:
//!
//! 1. **Baseline bit-identity** — with `--features` off (or `counters`),
//!    the CLI's ingest/train/predict paths produce byte-identical artifacts
//!    to the plain library path; the analytic module must be unreachable
//!    from the default pipeline.
//! 2. **Golden sweep** — the exact CLI recipe CI's `sweep-smoke` job runs
//!    (simulate → train → sweep over `examples/sweep_smoke.json`) must
//!    reproduce `tests/golden/sweep.json` byte for byte. Refresh with
//!    `UPDATE_GOLDEN=1 cargo test -p mtperf --test analytic_sweep` and
//!    commit the diff with the change that caused it.
//! 3. **Scale** — the checked-in `examples/sweep_spec.json` explores at
//!    least 1,000 configurations through the parallel batch engine.

use std::path::{Path, PathBuf};

use mtperf::cli::{dispatch, Args};
use mtperf::prelude::*;
use mtperf::CliError;

const INSTRUCTIONS: u64 = 100_000;
const SECTION_LEN: u64 = 10_000;
const SEED: u64 = 2007;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn examples_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples")
}

fn updating() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1")
}

/// Fresh scratch directory per test (parallel test binaries must not
/// collide).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mtperf-analytic-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_cli(argv: &[&str]) -> Result<String, CliError> {
    let args = Args::parse(&argv.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap();
    let mut out = Vec::new();
    dispatch(&args, &mut out).map(|()| String::from_utf8(out).unwrap())
}

fn simulate_csv(dir: &Path) -> PathBuf {
    let csv = dir.join("sections.csv");
    run_cli(&[
        "simulate",
        "--out",
        csv.to_str().unwrap(),
        "--instructions",
        &INSTRUCTIONS.to_string(),
        "--section-len",
        &SECTION_LEN.to_string(),
        "--seed",
        &SEED.to_string(),
    ])
    .unwrap();
    csv
}

#[test]
fn analytic_off_is_bit_identical_to_the_plain_path() {
    let dir = scratch("bitident");
    let csv = simulate_csv(&dir);

    // Train three ways: no flag, explicit --features counters, and the
    // plain library path this repo shipped before analytic fusion existed.
    let (m_default, m_counters) = (dir.join("default.json"), dir.join("counters.json"));
    run_cli(&[
        "train",
        "--data",
        csv.to_str().unwrap(),
        "--out",
        m_default.to_str().unwrap(),
    ])
    .unwrap();
    run_cli(&[
        "train",
        "--data",
        csv.to_str().unwrap(),
        "--features",
        "counters",
        "--out",
        m_counters.to_str().unwrap(),
    ])
    .unwrap();
    let samples = mtperf::sim::simulate_suite(INSTRUCTIONS, SECTION_LEN, SEED);
    let data = mtperf::dataset_from_samples(&samples).unwrap();
    let params = M5Params::default().with_min_instances((data.n_rows() / 30).max(8));
    let library_tree = ModelTree::fit(&data, &params).unwrap();
    let m_library = dir.join("library.json");
    library_tree.save(&m_library).unwrap();

    let default_bytes = std::fs::read(&m_default).unwrap();
    assert_eq!(
        default_bytes,
        std::fs::read(&m_counters).unwrap(),
        "--features counters must not change the trained model"
    );
    assert_eq!(
        default_bytes,
        std::fs::read(&m_library).unwrap(),
        "flag-off CLI training must stay byte-identical to the library path"
    );

    // And the default predict path must emit exactly the library's
    // compiled batch predictions.
    let pred_csv = run_cli(&[
        "predict",
        "--model",
        m_default.to_str().unwrap(),
        "--data",
        csv.to_str().unwrap(),
    ])
    .unwrap();
    let expected = library_tree.compile().predict_batch(&data.to_matrix());
    let got: Vec<f64> = pred_csv
        .lines()
        .skip(1)
        .map(|l| l.rsplit(',').next().unwrap().parse().unwrap())
        .collect();
    assert_eq!(got.len(), expected.len());
    for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(g.to_bits(), e.to_bits(), "row {i}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The exact recipe `.github/workflows/ci.yml`'s `sweep-smoke` job runs.
fn smoke_sweep_json(dir: &Path) -> String {
    let csv = simulate_csv(dir);
    let model = dir.join("model.json");
    run_cli(&[
        "train",
        "--data",
        csv.to_str().unwrap(),
        "--out",
        model.to_str().unwrap(),
    ])
    .unwrap();
    let spec = examples_dir().join("sweep_smoke.json");
    let report = dir.join("sweep.json");
    run_cli(&[
        "sweep",
        "--spec",
        spec.to_str().unwrap(),
        "--model",
        model.to_str().unwrap(),
        "--data",
        csv.to_str().unwrap(),
        "--out",
        report.to_str().unwrap(),
        "--threads",
        "2",
    ])
    .unwrap();
    std::fs::read_to_string(&report).unwrap()
}

#[test]
fn golden_sweep_report() {
    let dir = scratch("golden");
    let got = smoke_sweep_json(&dir);

    let path = golden_dir().join("sweep.json");
    if updating() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("golden: wrote {}", path.display());
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }
    let want = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => panic!(
            "missing golden fixture {} ({e}); run with UPDATE_GOLDEN=1 and commit",
            path.display()
        ),
    };
    assert_eq!(
        got, want,
        "sweep report drifted from tests/golden/sweep.json; if intentional, \
         refresh with UPDATE_GOLDEN=1 and commit"
    );
    // The blame machinery must actually fire in the pinned report.
    assert!(got.contains("\"blame\""), "report carries no blame section");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn example_spec_explores_a_thousand_plus_configs() {
    let spec_text = std::fs::read_to_string(examples_dir().join("sweep_spec.json")).unwrap();
    let spec: mtperf::sweep::SweepSpec = serde_json::from_str(&spec_text).unwrap();
    let points = spec.enumerate().unwrap();
    assert!(
        points.len() >= 1000,
        "examples/sweep_spec.json must explore >= 1000 configs, got {}",
        points.len()
    );

    // And the full grid really runs through the parallel engine.
    let samples = mtperf::sim::simulate_suite(INSTRUCTIONS, SECTION_LEN, SEED);
    let data = mtperf::dataset_from_samples(&samples).unwrap();
    let params = M5Params::default().with_min_instances((data.n_rows() / 30).max(8));
    let tree = ModelTree::fit(&data, &params).unwrap();
    let report = mtperf::sweep::run(
        &spec,
        &tree,
        &samples,
        false,
        mtperf::linalg::Parallelism::Auto,
    )
    .unwrap();
    assert_eq!(report.n_configs, points.len());
    assert!(report
        .configs
        .iter()
        .all(|c| c.mean_cpi.is_finite() && c.min_cpi <= c.max_cpi));
    // Ranking is a permutation of all config ids, sorted by mean CPI.
    let mut sorted = report.ranking.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..report.n_configs).collect::<Vec<_>>());
    assert!(report.best().mean_cpi <= report.worst().mean_cpi);
}

#[test]
fn evaluate_reports_residual_alongside_direct() {
    let dir = scratch("residual");
    let csv = simulate_csv(&dir);
    let out = run_cli(&[
        "evaluate",
        "--data",
        csv.to_str().unwrap(),
        "--features",
        "analytic",
        "--k",
        "5",
    ])
    .unwrap();
    assert!(out.contains("M5' direct"), "{out}");
    assert!(out.contains("M5' on analytic residual"), "{out}");
    assert!(out.contains("analytic model alone"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn width_mismatch_is_a_data_error_not_a_panic() {
    let dir = scratch("mismatch");
    let csv = simulate_csv(&dir);
    let model = dir.join("model.json");
    // Train with analytic features (26 attributes)...
    run_cli(&[
        "train",
        "--data",
        csv.to_str().unwrap(),
        "--features",
        "analytic",
        "--out",
        model.to_str().unwrap(),
    ])
    .unwrap();
    // ...then analyze with plain counters (20): typed data error, exit 65.
    let err = run_cli(&[
        "analyze",
        "--model",
        model.to_str().unwrap(),
        "--data",
        csv.to_str().unwrap(),
    ])
    .unwrap_err();
    assert_eq!(err.exit_code(), 65, "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn residual_flag_requires_analytic_features() {
    let dir = scratch("resflag");
    let csv = simulate_csv(&dir);
    let err = run_cli(&[
        "train",
        "--data",
        csv.to_str().unwrap(),
        "--residual",
        "--out",
        dir.join("m.json").to_str().unwrap(),
    ])
    .unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn residual_predictions_reconstruct_the_cpi_scale() {
    let dir = scratch("resrt");
    let csv = simulate_csv(&dir);
    let model = dir.join("model.json");
    run_cli(&[
        "train",
        "--data",
        csv.to_str().unwrap(),
        "--features",
        "analytic",
        "--residual",
        "--out",
        model.to_str().unwrap(),
    ])
    .unwrap();
    let out = run_cli(&[
        "predict",
        "--model",
        model.to_str().unwrap(),
        "--data",
        csv.to_str().unwrap(),
        "--features",
        "analytic",
        "--residual",
    ])
    .unwrap();
    // Reconstructed predictions must track measured CPI, not the residual
    // scale: mean absolute error well under the mean CPI itself.
    let (mut err_sum, mut cpi_sum, mut n) = (0.0, 0.0, 0usize);
    for line in out.lines().skip(1) {
        let mut cells = line.rsplit(',');
        let pred: f64 = cells.next().unwrap().parse().unwrap();
        let cpi: f64 = cells.next().unwrap().parse().unwrap();
        err_sum += (pred - cpi).abs();
        cpi_sum += cpi;
        n += 1;
    }
    let (mae, mean_cpi) = (err_sum / n as f64, cpi_sum / n as f64);
    assert!(
        mae < 0.2 * mean_cpi,
        "residual reconstruction off the CPI scale: MAE {mae} vs mean CPI {mean_cpi}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
