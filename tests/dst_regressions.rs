//! Minimized, named DST regression scenarios.
//!
//! Each test pins one **mined seed** — found by sweeping `mtperf dst
//! --seeds` and inspecting the replay traces for the scenario of interest
//! — together with the trace fingerprint that seed produced when it was
//! mined. The fingerprint was recorded from a *separate process* (the
//! `mtperf dst` CLI), so a matching assertion here is a cross-process
//! byte-identical replay, not a same-process memoization artifact.
//!
//! If a code change alters one of these fingerprints, that is not
//! automatically a bug — it means the simulated schedule observably
//! changed. Re-mine with `mtperf dst --seed <seed> --sessions <sessions>
//! --trace-dir <dir>`, diff the trace against the invariants by eye, and
//! update the constant **in the same commit** with a note of what moved.

use mtperf::serve::dst::{run_sim, SimConfig};

/// Seed 100 @ 60 sessions. Mined 2026-08-08 from a `--seeds 12` sweep.
///
/// Why this seed: its very first session (`s=0` in the trace) is a
/// multi-connection session driving **3 interleaved connections with 3
/// promotes racing in-flight predicts** — the headline scenario for the
/// multi-tenant registry. The full run also covers per-tenant quota
/// refusals (72), cache hits (67), and 20 drain/crash restarts.
const SEED_PROMOTE_RACE: u64 = 100;
const SESSIONS_PROMOTE_RACE: usize = 60;
// Re-mined 2026-08-08: the health payload grew per-model degradation
// rows (fleet health merge), changing health-response bytes and hence
// every out_hash. Same seed, same schedule, same invariants.
const FINGERPRINT_PROMOTE_RACE: u64 = 0x56bb_dbfb_8c21_46dd;

/// Seed 105 @ 60 sessions. Mined 2026-08-08 from the same sweep.
///
/// Why this seed: the heaviest fault mix of the sweep — 32 injected fs
/// faults (including manifest-save failures under promote), 23 restarts,
/// and a 4-connection session (`s=43`) that **crashes mid-flight with 2
/// promotes issued**, forcing the last-known-good recovery path through
/// `Registry::open` on a manifest written under fire.
const SEED_MANIFEST_FAULTS: u64 = 105;
const SESSIONS_MANIFEST_FAULTS: usize = 60;
// Re-mined 2026-08-08 alongside SEED 100: per-model health rows moved
// the health-response bytes.
const FINGERPRINT_MANIFEST_FAULTS: u64 = 0x9bc5_36da_39ce_d4d2;

#[test]
fn promote_race_seed_replays_to_its_mined_fingerprint() {
    let report = run_sim(&SimConfig {
        seed: SEED_PROMOTE_RACE,
        sessions: SESSIONS_PROMOTE_RACE,
    });
    assert!(report.passed(), "violations: {:#?}", report.violations);
    // The scenario this seed was mined for must still be present: at
    // least one session with >=3 interleaved connections and a promote
    // issued while predicts were in flight on sibling connections.
    assert!(
        report
            .trace
            .iter()
            .any(|l| (l.contains("conns=3") || l.contains("conns=4"))
                && !l.contains("promotes=0")
                && l.contains("mode=multi")),
        "no >=3-connection session with a mid-flight promote in the trace"
    );
    assert_eq!(
        report.trace_hash(),
        FINGERPRINT_PROMOTE_RACE,
        "seed {SEED_PROMOTE_RACE} no longer replays to its mined fingerprint; \
         if the schedule change is intentional, re-mine and update the constant"
    );
}

#[test]
fn manifest_fault_seed_replays_to_its_mined_fingerprint() {
    let report = run_sim(&SimConfig {
        seed: SEED_MANIFEST_FAULTS,
        sessions: SESSIONS_MANIFEST_FAULTS,
    });
    assert!(report.passed(), "violations: {:#?}", report.violations);
    // The mined scenario: injected faults, restarts, and a crashed
    // multi-connection session — all must still occur under this seed.
    assert!(report.faults_injected > 10, "{}", report.faults_injected);
    assert!(report.restarts > 10, "{}", report.restarts);
    assert!(
        report
            .trace
            .iter()
            .any(|l| l.contains("mode=multi") && l.contains("crash=true")),
        "no crashed multi-connection session in the trace"
    );
    assert_eq!(
        report.trace_hash(),
        FINGERPRINT_MANIFEST_FAULTS,
        "seed {SEED_MANIFEST_FAULTS} no longer replays to its mined fingerprint; \
         if the schedule change is intentional, re-mine and update the constant"
    );
}
