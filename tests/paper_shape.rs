//! Shape assertions against the paper's qualitative findings (§V.A):
//!
//! * the root split is on L2 misses, "the single event that most strongly
//!   impacts performance";
//! * DTLB-family tests appear on the low-L2M side (the DTLB reaches only a
//!   quarter of the L2, so its misses matter even when data hits the L2);
//! * cactusADM-like sections concentrate in a high-CPI class characterized
//!   by both L2 and L1I misses (the paper's LM18, ≥ 95 %);
//! * mcf-like sections concentrate in an L2M-dominated class (LM17, ≥ 70 %);
//! * gcc-like sections are the dominant population of the LCP-affected
//!   region of event space.

use mtperf::prelude::*;
use mtperf_mtree::analysis;

const INSTRUCTIONS: u64 = 400_000;
const SECTION_LEN: u64 = 10_000;
const SEED: u64 = 1955;

struct Fixture {
    data: Dataset,
    labels: Vec<String>,
    tree: ModelTree,
}

fn fixture() -> Fixture {
    let samples = mtperf::sim::simulate_suite(INSTRUCTIONS, SECTION_LEN, SEED);
    let labels = mtperf::labels_from_samples(&samples);
    let data = mtperf::dataset_from_samples(&samples).unwrap();
    // Scale the paper's 430-instance pre-pruning to our dataset size.
    let min_instances = (data.n_rows() / 30).max(8);
    let tree = ModelTree::fit(
        &data,
        &M5Params::default()
            .with_min_instances(min_instances)
            .with_smoothing(false),
    )
    .unwrap();
    Fixture { data, labels, tree }
}

fn attr(data: &Dataset, name: &str) -> usize {
    data.attr_index(name)
        .unwrap_or_else(|| panic!("no attr {name}"))
}

#[test]
fn root_splits_on_l2_misses() {
    let f = fixture();
    let impacts = analysis::split_impacts(&f.tree, &f.data);
    let root = &impacts[0];
    assert_eq!(
        f.data.attr_name(root.attr),
        "L2M",
        "root split is {} (tree:\n{})",
        f.data.attr_name(root.attr),
        f.tree.render("CPI")
    );
    // The high-L2M side must be substantially slower.
    assert!(root.mean_difference > 0.5, "{root:?}");
}

#[test]
fn dtlb_tested_in_absence_of_l2_misses() {
    let f = fixture();
    // Among the split nodes, some must test a DTLB-family event; at least
    // one of those must sit on the low side of the root L2M split. We check
    // the weaker, directly-observable form: classify a soplex-like section
    // (DTLB-bound, no L2 misses) and require a DTLB event on its rule path.
    let dtlb_names = ["Dtlb", "DtlbLdM", "DtlbLdReM", "DtlbL0LdM"];
    let mut found = false;
    for (i, label) in f.labels.iter().enumerate() {
        if !label.contains("soplex") {
            continue;
        }
        let c = f.tree.classify(&f.data.row(i));
        if c.path
            .iter()
            .any(|d| dtlb_names.iter().any(|n| f.data.attr_name(d.attr) == *n))
        {
            found = true;
            break;
        }
    }
    assert!(
        found,
        "no DTLB rule on any soplex-like path (tree:\n{})",
        f.tree.render("CPI")
    );
}

#[test]
fn cactus_sections_concentrate_in_one_class() {
    let f = fixture();
    let rows: Vec<Vec<f64>> = (0..f.data.n_rows()).map(|i| f.data.row(i)).collect();
    let occ = analysis::occupancy_by_label(&f.tree, &rows, &f.labels);
    let cactus = &occ["436.cactusADM-like"];
    let total: usize = cactus.values().sum();
    let dominant = cactus.values().max().copied().unwrap_or(0);
    // The paper reports >= 95 %; we require strong concentration.
    assert!(
        dominant as f64 / total as f64 > 0.6,
        "cactus occupancy: {cactus:?}"
    );
    // And that class must be a high-CPI one.
    let (leaf, _) = cactus
        .iter()
        .max_by_key(|(_, &n)| n)
        .expect("non-empty occupancy");
    let leaf_node = f
        .tree
        .leaves()
        .into_iter()
        .find(|n| matches!(n, mtperf_mtree::Node::Leaf { id, .. } if id == leaf))
        .expect("leaf exists");
    assert!(
        leaf_node.mean() > 1.5,
        "cactus class mean CPI = {}",
        leaf_node.mean()
    );
}

#[test]
fn mcf_sections_concentrate_in_l2_dominated_classes() {
    let f = fixture();
    let l2m = attr(&f.data, "L2M");
    let mut high_side = 0usize;
    let mut total = 0usize;
    for (i, label) in f.labels.iter().enumerate() {
        if !label.contains("mcf") {
            continue;
        }
        total += 1;
        let c = f.tree.classify(&f.data.row(i));
        if c.path.iter().any(|d| d.attr == l2m && d.went_high) {
            high_side += 1;
        }
    }
    assert!(total > 0);
    // The paper: > 70 % of mcf sections in the L2-miss class (we require a
    // clear majority; the exact fraction depends on the synthetic phase
    // split).
    assert!(
        high_side as f64 / total as f64 > 0.65,
        "{high_side}/{total} mcf sections on the high-L2M side"
    );
}

#[test]
fn lcp_region_is_dominated_by_gcc() {
    let f = fixture();
    let lcp = attr(&f.data, "LCP");
    // Sections *degraded* by LCP stalls (codegen-level rates, not the trace
    // amounts perl's regex engine emits) should be overwhelmingly gcc-like.
    let mut gcc = 0usize;
    let mut total = 0usize;
    for i in 0..f.data.n_rows() {
        if f.data.value(i, lcp) > 0.03 {
            total += 1;
            if f.labels[i].contains("gcc") {
                gcc += 1;
            }
        }
    }
    assert!(total > 5, "too few LCP-degraded sections ({total})");
    assert!(gcc * 10 >= total * 9, "{gcc}/{total} LCP sections are gcc");
    // And roughly the paper's "about 20 % of gcc sections" magnitude
    // (we configured the codegen phase at 20 % of gcc's instructions).
    let gcc_total = f.labels.iter().filter(|l| l.contains("gcc")).count();
    let frac = gcc as f64 / gcc_total as f64;
    assert!(
        (0.08..=0.4).contains(&frac),
        "LCP-degraded fraction of gcc = {frac}"
    );
}

#[test]
fn contribution_ranking_answers_what_and_how_much() {
    let f = fixture();
    // Pick the mcf-like section with the largest L2M rate.
    let l2m = attr(&f.data, "L2M");
    let (idx, _) = (0..f.data.n_rows())
        .filter(|&i| f.labels[i].contains("mcf"))
        .map(|i| (i, f.data.value(i, l2m)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("mcf sections exist");
    let row = f.data.row(idx);
    let ops = analysis::rank_opportunities(&f.tree, &row).expect("row matches tree");
    let memory_events = [
        "L2M",
        "L1DM",
        "DtlbLdReM",
        "DtlbLdM",
        "Dtlb",
        "DtlbL0LdM",
        "InstLd",
    ];
    if ops.is_empty() {
        // The section landed in a constant-model class (the paper's LM18
        // situation): the levers are the split variables on the rule path,
        // which must include the high side of a memory event.
        let class = f.tree.classify(&row);
        let high = class.high_side_attrs();
        assert!(
            high.iter()
                .any(|&a| memory_events.contains(&f.data.attr_name(a))),
            "constant class without memory split variables: {:?}",
            high.iter()
                .map(|&a| f.data.attr_name(a))
                .collect::<Vec<_>>()
        );
    } else {
        // Memory-system events must rank at the top for an mcf-like section.
        let top = f.data.attr_name(ops[0].attr);
        assert!(
            memory_events.contains(&top),
            "top opportunity for mcf is {top}"
        );
        for c in &ops {
            assert!(c.fraction.is_finite());
            assert!(c.fraction > -1.0 && c.fraction < 2.0);
        }
    }
}
