//! Fleet-router simulation soak: a multi-seed sweep must actually
//! exercise the failover machinery it exists to test, and every seed must
//! replay byte-identically.
//!
//! The coverage floors here are deliberately above the per-seed CLI
//! floors: a sweep that kills fewer than a handful of replicas, opens no
//! circuits, or never hedges a predict is a silently weakened harness
//! even when every individual seed "passes".

use mtperf::serve::fleet::dst::{run_fleet_sim, FleetSimConfig};

const SOAK_SEEDS: u64 = 24;
const SOAK_BASE: u64 = 9_000;
const SOAK_SESSIONS: usize = 60;

#[test]
fn sweep_clears_the_failover_coverage_floors() {
    let mut kills = 0u64;
    let mut circuit_opens = 0u64;
    let mut hedged = 0u64;
    let mut failovers = 0u64;
    let mut unavailable = 0u64;
    for seed in SOAK_BASE..SOAK_BASE + SOAK_SEEDS {
        let report = run_fleet_sim(&FleetSimConfig {
            seed,
            sessions: SOAK_SESSIONS,
        });
        assert!(
            report.passed(),
            "seed {seed} violations: {:#?}",
            report.violations
        );
        // Exactly-once: every dispatched request produced exactly one
        // audited response line (the sim counts them in lockstep).
        assert_eq!(
            report.requests, report.responses,
            "seed {seed}: request/response accounting diverged"
        );
        kills += report.replica_kills;
        circuit_opens += report.circuit_opens;
        hedged += report.hedged_predicts;
        failovers += report.failovers;
        unavailable += report.unavailable;
    }
    assert!(kills > 10, "only {kills} replica kills across the sweep");
    assert!(
        circuit_opens > 10,
        "only {circuit_opens} circuit-open transitions across the sweep"
    );
    assert!(hedged > 5, "only {hedged} hedged predicts across the sweep");
    assert!(
        failovers > 10,
        "only {failovers} failovers across the sweep"
    );
    assert!(
        unavailable > 0,
        "brown-out (typed unavailable) never exercised"
    );
}

#[test]
fn failing_heavy_seed_replays_byte_identically() {
    let cfg = FleetSimConfig {
        seed: SOAK_BASE + 3,
        sessions: 120,
    };
    let a = run_fleet_sim(&cfg);
    let b = run_fleet_sim(&cfg);
    assert!(a.passed(), "violations: {:#?}", a.violations);
    assert_eq!(a.trace, b.trace, "same seed must replay byte-identically");
    assert_eq!(a.trace_hash(), b.trace_hash());
    assert_eq!(a.replica_kills, b.replica_kills);
    assert_eq!(a.hedged_predicts, b.hedged_predicts);
    assert_eq!(a.failovers, b.failovers);
}
