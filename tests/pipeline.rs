//! End-to-end pipeline integration: simulate → section → train → validate.
//!
//! The accuracy floors here are deliberately looser than the paper's
//! headline numbers (C ≈ 0.98, RAE < 8 %) to keep CI robust across seeds;
//! the repro binary (`mtperf-repro headline`) reports the tight numbers on
//! the full-size dataset.

use mtperf::prelude::*;

const INSTRUCTIONS: u64 = 300_000;
const SECTION_LEN: u64 = 10_000;
const SEED: u64 = 2007;

fn suite_dataset() -> (Dataset, Vec<String>) {
    let samples = mtperf::sim::simulate_suite(INSTRUCTIONS, SECTION_LEN, SEED);
    let labels = mtperf::labels_from_samples(&samples);
    (mtperf::dataset_from_samples(&samples).unwrap(), labels)
}

#[test]
fn dataset_has_expected_shape() {
    let (data, labels) = suite_dataset();
    // 15 workloads × ~30 sections each.
    assert_eq!(data.n_attrs(), 20);
    assert!(data.n_rows() >= 400, "n = {}", data.n_rows());
    assert_eq!(labels.len(), data.n_rows());
    // CPI spread spans the paper's dynamic range.
    let (lo, hi) = mtperf::linalg::stats::min_max(data.targets()).unwrap();
    assert!(lo < 0.8, "min CPI = {lo}");
    assert!(hi > 2.5, "max CPI = {hi}");
}

#[test]
fn model_tree_cross_validates_accurately() {
    let (data, _) = suite_dataset();
    let min_instances = (data.n_rows() / 30).max(8);
    let learner = M5Learner::new(M5Params::default().with_min_instances(min_instances));
    let cv = cross_validate(&learner, &data, 10, 7).unwrap();
    // CI floor at this reduced scale (~450 sections); the repro harness
    // reports the tight full-scale numbers (C 0.994, RAE 7.6%).
    assert!(
        cv.pooled.correlation > 0.94,
        "C = {}",
        cv.pooled.correlation
    );
    assert!(
        cv.aggregate.rae_percent < 25.0,
        "RAE = {}%",
        cv.aggregate.rae_percent
    );
}

#[test]
fn pipeline_is_deterministic() {
    let (a, _) = suite_dataset();
    let (b, _) = suite_dataset();
    assert_eq!(a, b);
    let params = M5Params::default().with_min_instances(20);
    let ta = ModelTree::fit(&a, &params).unwrap();
    let tb = ModelTree::fit(&b, &params).unwrap();
    assert_eq!(ta.render("CPI"), tb.render("CPI"));
}

#[test]
fn tree_discovers_multiple_performance_classes() {
    let (data, _) = suite_dataset();
    let min_instances = (data.n_rows() / 30).max(8);
    let tree = ModelTree::fit(
        &data,
        &M5Params::default().with_min_instances(min_instances),
    )
    .unwrap();
    assert!(
        tree.n_leaves() >= 3,
        "only {} classes found",
        tree.n_leaves()
    );
    // Every training row routes to a valid leaf and gets a finite prediction.
    for i in 0..data.n_rows() {
        let row = data.row(i);
        let p = tree.predict(&row);
        assert!(p.is_finite() && p > 0.0, "row {i}: p = {p}");
    }
}

#[test]
fn csv_roundtrip_preserves_the_dataset() {
    let samples = mtperf::sim::simulate_suite(60_000, 10_000, 3);
    let mut buf = Vec::new();
    mtperf::counters::write_csv(&samples, &mut buf).unwrap();
    let back = mtperf::counters::read_csv(buf.as_slice()).unwrap();
    assert_eq!(back, samples);
}
