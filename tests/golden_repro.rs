//! Golden-file regression tests for the seeded repro pipeline.
//!
//! The paper's headline claims (C ≈ 0.98, RAE < 8 %) and the tree the
//! pipeline learns must never drift silently. These tests run the fixed
//! seeded pipeline — simulate the suite, train M5', 10-fold cross-validate —
//! and compare the headline metrics and the rendered tree structure against
//! checked-in fixtures under `tests/golden/`.
//!
//! * Metrics are compared inside a small tolerance band (the pipeline is
//!   bit-deterministic today; the band only absorbs deliberate, reviewed
//!   numeric changes), plus absolute paper-shape floors that hold
//!   regardless of the fixture.
//! * The rendered tree must match the fixture exactly.
//!
//! To refresh after an intentional change, run:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p mtperf --test golden_repro
//! ```
//!
//! and commit the rewritten files in `tests/golden/` with the change that
//! caused them.

use std::path::{Path, PathBuf};

use mtperf::prelude::*;
use serde::{Deserialize, Serialize};

const INSTRUCTIONS: u64 = 400_000;
const SECTION_LEN: u64 = 10_000;
const SEED: u64 = 2007;
const CV_FOLDS: usize = 10;
const CV_SEED: u64 = 7;

/// Snapshot of the pipeline's headline numbers.
#[derive(Debug, Serialize, Deserialize)]
struct Headline {
    n_sections: usize,
    n_leaves: usize,
    depth: usize,
    correlation: f64,
    mae: f64,
    rae_percent: f64,
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn updating() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1")
}

fn read_fixture(path: &Path) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => panic!(
            "missing golden fixture {} ({e}); run with UPDATE_GOLDEN=1 to \
             (re)generate fixtures, then commit them",
            path.display()
        ),
    }
}

fn fixture_tree() -> (Dataset, ModelTree) {
    let samples = mtperf::sim::simulate_suite(INSTRUCTIONS, SECTION_LEN, SEED);
    let data = mtperf::dataset_from_samples(&samples).unwrap();
    let min_instances = (data.n_rows() / 30).max(8);
    let tree = ModelTree::fit(
        &data,
        &M5Params::default()
            .with_min_instances(min_instances)
            .with_smoothing(false),
    )
    .unwrap();
    (data, tree)
}

#[test]
fn golden_headline_metrics() {
    let (data, tree) = fixture_tree();
    let min_instances = (data.n_rows() / 30).max(8);
    let learner = M5Learner::new(
        M5Params::default()
            .with_min_instances(min_instances)
            .with_smoothing(false),
    );
    let cv = cross_validate(&learner, &data, CV_FOLDS, CV_SEED).unwrap();
    let got = Headline {
        n_sections: data.n_rows(),
        n_leaves: tree.n_leaves(),
        depth: tree.depth(),
        correlation: cv.pooled.correlation,
        mae: cv.pooled.mae,
        rae_percent: cv.pooled.rae_percent,
    };

    let path = golden_dir().join("headline.json");
    if updating() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        let mut json = serde_json::to_string_pretty(&got).unwrap();
        json.push('\n');
        std::fs::write(&path, json).unwrap();
        eprintln!("golden: wrote {}", path.display());
        return;
    }
    let want: Headline = serde_json::from_str(&read_fixture(&path)).unwrap();

    // Exact structural snapshot.
    assert_eq!(got.n_sections, want.n_sections, "section count drifted");
    assert_eq!(got.n_leaves, want.n_leaves, "leaf count drifted");
    assert_eq!(got.depth, want.depth, "tree depth drifted");

    // Metric tolerance band: deliberate numeric changes must stay inside
    // it or refresh the fixture with review.
    assert!(
        (got.correlation - want.correlation).abs() < 0.01,
        "correlation drifted: got {}, golden {}",
        got.correlation,
        want.correlation
    );
    assert!(
        (got.mae - want.mae).abs() < 0.05 * want.mae.max(1e-12),
        "MAE drifted: got {}, golden {}",
        got.mae,
        want.mae
    );
    assert!(
        (got.rae_percent - want.rae_percent).abs() < 1.0,
        "RAE drifted: got {} %, golden {} %",
        got.rae_percent,
        want.rae_percent
    );

    // Absolute floors, independent of the fixture: the pipeline must stay
    // in the regime the paper reports (C ≈ 0.98; the full-scale RAE claim
    // is < 8 %, this quick-scale suite lands near 15 %).
    assert!(got.correlation > 0.95, "C = {}", got.correlation);
    assert!(got.rae_percent < 20.0, "RAE = {} %", got.rae_percent);
}

#[test]
fn golden_tree_structure() {
    let (_, tree) = fixture_tree();
    let rendered = tree.render("CPI");

    let path = golden_dir().join("tree.txt");
    if updating() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("golden: wrote {}", path.display());
        return;
    }
    let want = read_fixture(&path);
    assert_eq!(
        rendered, want,
        "rendered tree structure drifted from tests/golden/tree.txt; if the \
         change is intentional, refresh with UPDATE_GOLDEN=1 and commit"
    );
}

#[test]
fn golden_predictions_survive_persistence_and_compilation() {
    // The golden tree, saved and reloaded, must predict bit-identically
    // through the compiled batch engine — ties the golden suite to the
    // differential contract.
    let (data, tree) = fixture_tree();
    let loaded = ModelTree::from_json(&tree.to_json()).unwrap();
    let batch = loaded.compile().predict_batch(&data.to_matrix());
    for (i, b) in batch.iter().enumerate() {
        assert_eq!(b.to_bits(), tree.predict(&data.row(i)).to_bits(), "row {i}");
    }
}
