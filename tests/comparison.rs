//! Method-comparison integration test: the orderings the paper reports.
//!
//! On section data spanning multiple performance classes, the model tree
//! must clearly beat the single global linear model and the constant-leaf
//! regression tree, and land in the same accuracy neighborhood as the
//! black-box MLP/SVR (the paper: M5' 0.98 vs ANN 0.99 vs SVM 0.98).

use mtperf::baselines::{CartLearner, GlobalLinear, KnnLearner, MlpLearner, SvrLearner};
use mtperf::prelude::*;
use mtperf_sim::workload::profiles;
use mtperf_sim::{MachineConfig, Simulator};

fn dataset() -> Dataset {
    // The full suite: the model tree's edge over a single global linear
    // model comes from regime-dependent slopes (an L2 miss costs ~165
    // cycles on mcf's dependent chains but ~40 on milc's overlapped
    // streams), which only appear when both kinds of workload are present.
    let samples = mtperf::sim::simulate_suite(400_000, 10_000, 99);
    mtperf::dataset_from_samples(&samples).unwrap()
}

fn toy_dataset() -> Dataset {
    let sim = Simulator::new(MachineConfig::core2_duo()).with_seed(99);
    let mut samples = mtperf::counters::SampleSet::new();
    for w in profiles::toy_suite(400_000) {
        samples.extend(sim.run(&w, 10_000));
    }
    mtperf::dataset_from_samples(&samples).unwrap()
}

#[test]
fn model_tree_beats_interpretable_baselines_and_matches_black_boxes() {
    let data = dataset();
    let k = 10;
    let seed = 5;
    let min_instances = (data.n_rows() / 30).max(8);

    let m5 = cross_validate(
        &M5Learner::new(M5Params::default().with_min_instances(min_instances)),
        &data,
        k,
        seed,
    )
    .unwrap()
    .pooled;
    let ols = cross_validate(&GlobalLinear::new(), &data, k, seed)
        .unwrap()
        .pooled;
    let cart = cross_validate(&CartLearner::new(min_instances), &data, k, seed)
        .unwrap()
        .pooled;
    let mlp = cross_validate(&MlpLearner::new(12).with_epochs(60), &data, k, seed)
        .unwrap()
        .pooled;

    println!("M5'  {m5}");
    println!("OLS  {ols}");
    println!("CART {cart}");
    println!("MLP  {mlp}");

    // The paper's qualitative ordering.
    assert!(m5.correlation > 0.9, "M5' C = {}", m5.correlation);
    assert!(
        m5.rae_percent < ols.rae_percent,
        "M5' RAE {} vs OLS {}",
        m5.rae_percent,
        ols.rae_percent
    );
    assert!(
        m5.rae_percent < cart.rae_percent,
        "M5' RAE {} vs CART {}",
        m5.rae_percent,
        cart.rae_percent
    );
    // Black-box parity: within a few hundredths of correlation.
    assert!(
        m5.correlation > mlp.correlation - 0.05,
        "M5' C {} vs MLP {}",
        m5.correlation,
        mlp.correlation
    );
}

#[test]
fn svr_and_knn_train_and_predict_reasonably() {
    let data = toy_dataset();
    let (train, test) = mtperf::eval::train_test_split(&data, 0.3, 11).unwrap();

    let svr = SvrLearner::default().fit(&train).unwrap();
    let knn = KnnLearner::new(5).fit(&train).unwrap();

    let actual: Vec<f64> = test.targets().to_vec();
    let svr_pred: Vec<f64> = (0..test.n_rows())
        .map(|i| svr.predict(&test.row(i)))
        .collect();
    let knn_pred: Vec<f64> = (0..test.n_rows())
        .map(|i| knn.predict(&test.row(i)))
        .collect();

    let svr_m = Metrics::compute(&actual, &svr_pred).unwrap();
    let knn_m = Metrics::compute(&actual, &knn_pred).unwrap();
    println!("SVR {svr_m}");
    println!("kNN {knn_m}");

    assert!(svr_m.correlation > 0.85, "SVR C = {}", svr_m.correlation);
    assert!(knn_m.correlation > 0.85, "kNN C = {}", knn_m.correlation);
}
