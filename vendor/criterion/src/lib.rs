//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API subset the bench crate uses — groups, throughput,
//! parameterized IDs, `criterion_group!`/`criterion_main!` — with a simple
//! wall-clock measurement loop instead of criterion's statistical machinery.
//! Each benchmark warms up briefly, then reports the median per-iteration
//! time over a handful of samples.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement configuration shared by all benchmarks in a run.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\ngroup: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Runs the registered benchmark functions (called by `criterion_main!`).
    pub fn final_summary(&self) {}
}

/// Unit used to derive a rate from the per-iteration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an ID from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// Builds an ID from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// A named set of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the work done per iteration, enabling rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let ns = run_samples(self.sample_size, || {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut bencher);
            bencher.per_iter_ns()
        });
        report(&self.name, &id.id, ns, self.throughput);
        self
    }

    /// Measures `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let ns = run_samples(self.sample_size, || {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut bencher, input);
            bencher.per_iter_ns()
        });
        report(&self.name, &id.id, ns, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibrate: aim for ~10ms of work per sample, at least one iter.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 1_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters as u64;
    }

    fn per_iter_ns(&self) -> f64 {
        if self.iters == 0 {
            return f64::NAN;
        }
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

/// Runs `sample` repeatedly and returns the median per-iteration time (ns).
fn run_samples(n: usize, mut sample: impl FnMut() -> f64) -> f64 {
    let mut times: Vec<f64> = (0..n).map(|_| sample()).collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn report(group: &str, id: &str, ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(k)) => {
            format!("  ({:.3e} elem/s)", k as f64 / (ns * 1e-9))
        }
        Some(Throughput::Bytes(k)) => {
            format!("  ({:.3e} B/s)", k as f64 / (ns * 1e-9))
        }
        None => String::new(),
    };
    eprintln!("  {group}/{id}: {ns:.1} ns/iter{rate}");
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point: runs every group. Ignores harness CLI arguments (cargo
/// passes `--bench`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_positive_time() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.iters >= 1);
        assert!(b.per_iter_ns() >= 0.0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::from_parameter(40).id, "40");
        assert_eq!(BenchmarkId::new("fit", 12).id, "fit/12");
        assert_eq!(BenchmarkId::from("raw").id, "raw");
    }
}
