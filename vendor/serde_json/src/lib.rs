//! Offline stand-in for `serde_json`: JSON text ⇄ the vendored serde shim's
//! [`serde::Value`] tree.
//!
//! Numbers print via Rust's shortest-roundtrip `Display` for `f64`, so every
//! finite float survives a write/read cycle exactly (the `float_roundtrip`
//! feature is therefore a no-op). Non-finite floats serialize as `null`, the
//! same choice real `serde_json` makes.

mod read;
mod write;

use std::fmt;

pub use read::parse_value;

/// Error produced by serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Error {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Error {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::write_compact(&value.serialize(), &mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::write_pretty(&value.serialize(), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = read::parse_value(text)?;
    Ok(T::deserialize(&value)?)
}

#[cfg(test)]
mod tests {
    use serde::Value;

    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("ipc".to_string())),
            (
                "xs".to_string(),
                Value::Array(vec![Value::U64(1), Value::F64(2.5), Value::Null]),
            ),
            ("neg".to_string(), Value::I64(-7)),
            ("flag".to_string(), Value::Bool(true)),
        ]);
        let text = to_string(&SerValue(&v)).unwrap();
        assert_eq!(
            text,
            r#"{"name":"ipc","xs":[1,2.5,null],"neg":-7,"flag":true}"#
        );
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn pretty_uses_two_space_indent_and_colon_space() {
        let v = Value::Object(vec![
            ("version".to_string(), Value::U64(1)),
            ("xs".to_string(), Value::Array(vec![Value::U64(2)])),
        ]);
        let text = to_string_pretty(&SerValue(&v)).unwrap();
        assert_eq!(text, "{\n  \"version\": 1,\n  \"xs\": [\n    2\n  ]\n}");
    }

    #[test]
    #[allow(clippy::excessive_precision)] // the over-long literal is the test
    fn float_text_roundtrips_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, 123456789.123456789, -2.5e17] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let v = parse_value(" { \"a\\n\\u0041\" : [ true , false , null ] } ").unwrap();
        assert_eq!(
            v,
            Value::Object(vec![(
                "a\nA".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Bool(false), Value::Null]),
            )])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
        ] {
            assert!(parse_value(bad).is_err(), "accepted {bad:?}");
        }
        assert!(parse_value("[1] trailing").is_err());
    }

    /// Adapter: tests build raw `Value`s but the API takes `impl Serialize`.
    struct SerValue<'a>(&'a Value);

    impl serde::Serialize for SerValue<'_> {
        fn serialize(&self) -> Value {
            self.0.clone()
        }
    }
}
