//! Recursive-descent JSON parser.

use serde::Value;

use crate::Error;

/// Parses a complete JSON document into a [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] naming the byte offset of the first syntax problem.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("unknown escape sequence")),
                    }
                }
                Some(byte) if byte < 0x80 => {
                    out.push(byte as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a valid &str, so decode
                    // the full character from the source slice.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = text
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("empty string tail"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.hex4()?;
        // Surrogate pair handling for characters outside the BMP.
        if (0xD800..0xDC00).contains(&first) {
            if !(self.eat_keyword("\\u")) {
                return Err(self.err("lone high surrogate"));
            }
            let second = self.hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_keep_integer_types() {
        assert_eq!(parse_value("42").unwrap(), Value::U64(42));
        assert_eq!(parse_value("-42").unwrap(), Value::I64(-42));
        assert_eq!(parse_value("42.0").unwrap(), Value::F64(42.0));
        assert_eq!(parse_value("1e3").unwrap(), Value::F64(1000.0));
    }

    #[test]
    fn huge_integers_fall_back_to_float() {
        assert_eq!(parse_value("1e400").unwrap(), Value::F64(f64::INFINITY));
        // Larger than u64::MAX and i64::MIN: parses as f64.
        assert!(matches!(
            parse_value("99999999999999999999999").unwrap(),
            Value::F64(_)
        ));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse_value("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("😀".to_string())
        );
    }

    #[test]
    fn non_ascii_passthrough() {
        assert_eq!(
            parse_value("\"héllo\"").unwrap(),
            Value::Str("héllo".to_string())
        );
    }
}
