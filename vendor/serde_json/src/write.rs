//! JSON text emission.

use serde::Value;

/// Writes `value` as compact JSON (no whitespace).
pub(crate) fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

/// Writes `value` as pretty JSON: 2-space indent, `": "` after keys.
pub(crate) fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                write_string(key, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Shortest-roundtrip float formatting; non-finite values become `null`.
fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let text = x.to_string();
    out.push_str(&text);
    // `Display` omits ".0" for integral floats; keep it so the value reads
    // back as a float-typed token (matches real serde_json).
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_keep_a_decimal_point() {
        let mut out = String::new();
        write_f64(3.0, &mut out);
        assert_eq!(out, "3.0");
    }

    #[test]
    fn non_finite_floats_become_null() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut out = String::new();
            write_f64(x, &mut out);
            assert_eq!(out, "null");
        }
    }

    #[test]
    fn control_characters_are_escaped() {
        let mut out = String::new();
        write_string("a\"b\\c\n\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\n\\u0001\"");
    }
}
