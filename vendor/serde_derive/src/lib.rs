//! Derive macros for the vendored serde shim.
//!
//! Supports the shapes this workspace actually derives: non-generic named
//! structs, tuple structs, unit structs, and enums whose variants are unit,
//! tuple, or struct-like. Anything else (generics, serde attributes) is a
//! compile error — extend the parser when a new shape appears.
//!
//! The implementation deliberately avoids `syn`/`quote` (unavailable
//! offline): it walks the raw `TokenStream` to recover the type's shape and
//! emits the impl as formatted source code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
enum Shape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
    Enum(Vec<(String, VariantShape)>),
}

#[derive(Debug, Clone)]
enum VariantShape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives `serde::Serialize` for supported shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_type(input);
    let body = match &shape {
        Shape::Unit => "serde::Value::Null".to_string(),
        Shape::Named(fields) => serialize_named_fields(fields, "self."),
        Shape::Tuple(1) => "serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => serialize_enum(&name, variants),
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for supported shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_type(input);
    let body = match &shape {
        Shape::Unit => format!("{{ let _ = value; Ok({name}) }}"),
        Shape::Named(fields) => deserialize_named_struct(&name, fields),
        Shape::Tuple(1) => format!(
            "serde::Deserialize::deserialize(value).map({name}).map_err(|e| e.context({name:?}))"
        ),
        Shape::Tuple(n) => deserialize_tuple_struct(&name, *n),
        Shape::Enum(variants) => deserialize_enum(&name, variants),
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn deserialize(value: &serde::Value) -> Result<Self, serde::de::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `{ "f": <ser f>, ... }` for fields accessed via `prefix` (`self.` or ``).
fn serialize_named_fields(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("({f:?}.to_string(), serde::Serialize::serialize(&{prefix}{f}))"))
        .collect();
    format!("serde::Value::Object(vec![{}])", entries.join(", "))
}

fn serialize_enum(name: &str, variants: &[(String, VariantShape)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(v, shape)| match shape {
            VariantShape::Unit => {
                format!("{name}::{v} => serde::Value::Str({v:?}.to_string()),")
            }
            VariantShape::Named(fields) => {
                let bindings = fields.join(", ");
                let obj = serialize_named_fields(fields, "");
                format!(
                    "{name}::{v} {{ {bindings} }} => serde::Value::Object(vec![({v:?}.to_string(), {obj})]),"
                )
            }
            VariantShape::Tuple(1) => format!(
                "{name}::{v}(x0) => serde::Value::Object(vec![({v:?}.to_string(), serde::Serialize::serialize(x0))]),"
            ),
            VariantShape::Tuple(n) => {
                let bindings: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                let items: Vec<String> = bindings
                    .iter()
                    .map(|b| format!("serde::Serialize::serialize({b})"))
                    .collect();
                format!(
                    "{name}::{v}({}) => serde::Value::Object(vec![({v:?}.to_string(), serde::Value::Array(vec![{}]))]),",
                    bindings.join(", "),
                    items.join(", ")
                )
            }
        })
        .collect();
    format!("match self {{ {} }}", arms.join("\n"))
}

fn deserialize_named_fields(fields: &[String], source: &str, ty: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: serde::Deserialize::deserialize({source}.get_field({f:?})\
                     .unwrap_or(&serde::Value::Null))\
                     .map_err(|e| e.context({f:?}).context({ty:?}))?,"
            )
        })
        .collect();
    inits.join("\n")
}

fn deserialize_named_struct(name: &str, fields: &[String]) -> String {
    let inits = deserialize_named_fields(fields, "value", name);
    format!(
        "{{ if value.as_object().is_none() {{\n\
               return Err(serde::de::Error::mismatch(\"object\", value).context({name:?}));\n\
           }}\n\
           Ok({name} {{ {inits} }}) }}"
    )
}

fn deserialize_tuple_struct(name: &str, n: usize) -> String {
    let inits: Vec<String> = (0..n)
        .map(|i| {
            format!(
                "serde::Deserialize::deserialize(&items[{i}])\
                     .map_err(|e| e.context({name:?}))?"
            )
        })
        .collect();
    format!(
        "{{ let items = match value {{\n\
               serde::Value::Array(items) if items.len() == {n} => items,\n\
               other => return Err(serde::de::Error::mismatch(\"array of {n}\", other).context({name:?})),\n\
           }};\n\
           Ok({name}({})) }}",
        inits.join(", ")
    )
}

fn deserialize_enum(name: &str, variants: &[(String, VariantShape)]) -> String {
    // Unit variants arrive as strings; data variants as single-key objects.
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, s)| matches!(s, VariantShape::Unit))
        .map(|(v, _)| format!("{v:?} => return Ok({name}::{v}),"))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|(v, shape)| match shape {
            VariantShape::Unit => None,
            VariantShape::Named(fields) => {
                let inits = deserialize_named_fields(fields, "payload", name);
                Some(format!("{v:?} => return Ok({name}::{v} {{ {inits} }}),"))
            }
            VariantShape::Tuple(1) => Some(format!(
                "{v:?} => return serde::Deserialize::deserialize(payload)\
                     .map({name}::{v}).map_err(|e| e.context({name:?})),"
            )),
            VariantShape::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| {
                        format!(
                            "serde::Deserialize::deserialize(&items[{i}])\
                                 .map_err(|e| e.context({name:?}))?"
                        )
                    })
                    .collect();
                Some(format!(
                    "{v:?} => {{\n\
                         let items = match payload {{\n\
                             serde::Value::Array(items) if items.len() == {n} => items,\n\
                             other => return Err(serde::de::Error::mismatch(\"array of {n}\", other).context({name:?})),\n\
                         }};\n\
                         return Ok({name}::{v}({}));\n\
                     }},",
                    inits.join(", ")
                ))
            }
        })
        .collect();
    format!(
        "{{ if let serde::Value::Str(tag) = value {{\n\
               match tag.as_str() {{ {units} _ => {{}} }}\n\
           }}\n\
           if let serde::Value::Object(entries) = value {{\n\
               if let Some((tag, payload)) = entries.first() {{\n\
                   match tag.as_str() {{ {datas} _ => {{}} }}\n\
               }}\n\
           }}\n\
           Err(serde::de::Error::custom(\"unknown variant\").context({name:?})) }}",
        units = unit_arms.join("\n"),
        datas = data_arms.join("\n"),
    )
}

// ---------------------------------------------------------------------------
// Token parsing
// ---------------------------------------------------------------------------

fn parse_type(input: TokenStream) -> (String, Shape) {
    let mut tokens = input.into_iter().peekable();

    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`) until the
    // `struct`/`enum` keyword.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                match word.as_str() {
                    "pub" => {
                        if let Some(TokenTree::Group(g)) = tokens.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                tokens.next();
                            }
                        }
                    }
                    "struct" | "enum" => break word,
                    _ => {}
                }
            }
            Some(_) => {}
            None => panic!("serde shim derive: no struct/enum keyword found"),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type {name} is not supported");
        }
    }

    if kind == "enum" {
        let body = match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            other => panic!("serde shim derive: expected enum body, found {other:?}"),
        };
        return (name, Shape::Enum(parse_variants(body.stream())));
    }

    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            (name, Shape::Named(parse_named_fields(g.stream())))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            (name, Shape::Tuple(count_tuple_fields(g.stream())))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, Shape::Unit),
        other => panic!("serde shim derive: unsupported struct body {other:?}"),
    }
}

/// Parses `field: Type, ...`, returning the field names. Tracks `<`/`>`
/// nesting so commas inside generic arguments do not terminate a field.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip per-field attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.next() else {
            break;
        };
        fields.push(id.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected ':' after field, found {other:?}"),
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0usize;
        for t in tokens.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Counts the fields of a tuple struct/variant (top-level commas + trailing
/// element). Parenthesized/bracketed element types are single token trees, so
/// only `<`/`>` nesting needs tracking.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0usize;
    let mut last_was_comma = false;
    for t in stream {
        saw_tokens = true;
        last_was_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                last_was_comma = true;
            }
            _ => {}
        }
    }
    if saw_tokens && !last_was_comma {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes on the variant.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.next() else {
            break;
        };
        let vname = id.to_string();
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantShape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                VariantShape::Tuple(n)
            }
            _ => VariantShape::Unit,
        };
        variants.push((vname, shape));
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        let mut angle_depth = 0usize;
        while let Some(t) = tokens.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle_depth += 1;
                    tokens.next();
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                    tokens.next();
                }
                _ => {
                    tokens.next();
                }
            }
        }
    }
    variants
}
