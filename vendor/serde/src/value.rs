//! The JSON-shaped value tree every (de)serialization passes through.

use std::fmt;

/// A dynamically typed value: the data model of the vendored serde shim.
///
/// Objects preserve insertion order (they are association lists, not hash
/// maps) so serialized output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (positive values normalize to [`Value::U64`]).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key → value mapping.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key` in an object (first match; `None` for non-objects).
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// A short name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(n) => write!(f, "{n}"),
            Value::I64(n) => write!(f, "{n}"),
            Value::F64(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Array(_) => write!(f, "array"),
            Value::Object(_) => write!(f, "object"),
        }
    }
}
