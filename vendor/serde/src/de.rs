//! Deserialization errors.

use std::fmt;

use crate::Value;

/// Error produced while rebuilding a value from a [`Value`] tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    /// Path from the root to the failing field, innermost first.
    path: Vec<String>,
}

impl Error {
    /// Creates an error with an arbitrary message.
    pub fn custom(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
            path: Vec::new(),
        }
    }

    /// Creates a "expected X, found Y" error.
    pub fn mismatch(expected: &str, found: &Value) -> Error {
        Error::custom(format!("expected {expected}, found {}", found.type_name()))
    }

    /// Returns the error annotated with an enclosing field or variant name.
    #[must_use]
    pub fn context(mut self, segment: &str) -> Error {
        self.path.push(segment.to_string());
        self
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.message)
        } else {
            let mut segments = self.path.clone();
            segments.reverse();
            write!(f, "{}: {}", segments.join("."), self.message)
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_path() {
        let e = Error::custom("boom").context("field").context("Struct");
        assert_eq!(e.to_string(), "Struct.field: boom");
    }

    #[test]
    fn mismatch_names_types() {
        let e = Error::mismatch("bool", &Value::Array(vec![]));
        assert!(e.to_string().contains("expected bool"));
        assert!(e.to_string().contains("array"));
    }
}
