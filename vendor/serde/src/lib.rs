//! Offline stand-in for the `serde` facade.
//!
//! The build environments this workspace must support cannot reach a crates
//! registry, so the workspace vendors a minimal serialization framework under
//! the same crate name. It offers the subset the workspace uses — derived
//! `Serialize`/`Deserialize` on plain structs and enums, serialized through
//! the JSON-shaped [`Value`] tree consumed by the vendored `serde_json` —
//! not serde's full zero-copy data model.
//!
//! Derives come from the vendored `serde_derive` proc macro. Manual
//! implementations write `serialize(&self) -> Value` and
//! `deserialize(&Value) -> Result<Self, de::Error>` directly.

pub mod de;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from `value`.
    ///
    /// # Errors
    ///
    /// Returns a [`de::Error`] describing the first mismatch between the
    /// value tree and the expected shape.
    fn deserialize(value: &Value) -> Result<Self, de::Error>;
}

// ---------------------------------------------------------------------------
// Primitive implementations
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::mismatch("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, de::Error> {
                let raw = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(de::Error::mismatch("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| de::Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, de::Error> {
                let raw = match value {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| de::Error::custom(format!("integer {n} out of range")))?,
                    other => return Err(de::Error::mismatch("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| de::Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, de::Error> {
                match value {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(de::Error::mismatch("number", other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de::Error::mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(de::Error::mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        let items = match value {
            Value::Array(items) => items,
            other => return Err(de::Error::mismatch("array", other)),
        };
        if items.len() != N {
            return Err(de::Error::custom(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| de::Error::custom("array length changed during conversion"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, de::Error> {
                let items = match value {
                    Value::Array(items) => items,
                    other => return Err(de::Error::mismatch("tuple (array)", other)),
                };
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(de::Error::custom(format!(
                        "expected tuple of length {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-3i32).serialize()).unwrap(), -3);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::deserialize(&v.serialize()).unwrap(), v);
        let o: Option<usize> = Some(7);
        assert_eq!(Option::<usize>::deserialize(&o.serialize()).unwrap(), o);
        let n: Option<usize> = None;
        assert_eq!(Option::<usize>::deserialize(&n.serialize()).unwrap(), n);
        let a = [1.0f64, 2.0];
        assert_eq!(<[f64; 2]>::deserialize(&a.serialize()).unwrap(), a);
        let t = (3usize, 2.5f64);
        assert_eq!(<(usize, f64)>::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn type_mismatch_reports_error() {
        assert!(bool::deserialize(&Value::U64(1)).is_err());
        assert!(u64::deserialize(&Value::I64(-1)).is_err());
        assert!(<[f64; 3]>::deserialize(&[1.0f64].serialize()).is_err());
    }
}
