//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast generator: xoshiro256++, as `rand 0.8` uses on 64-bit
/// targets. Value streams match upstream bit-for-bit for a given seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        // The low bits of xoshiro256++ have weak linear dependencies; use the
        // high ones (as upstream does).
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        if seed.iter().all(|&b| b == 0) {
            // All-zero state is a fixed point of xoshiro; upstream reseeds
            // through the u64 path instead.
            return Self::seed_from_u64(0);
        }
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        SmallRng { s }
    }

    /// SplitMix64 key-stretching, overriding the trait default to match
    /// upstream `Xoshiro256PlusPlus::seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference vector from upstream's own xoshiro256++ unit test.
    #[test]
    fn core_matches_reference_vector() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn next_u32_takes_high_bits() {
        let mut a = SmallRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
    }

    #[test]
    fn zero_seed_is_not_a_fixed_point() {
        let mut rng = SmallRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
