//! Uniform range sampling, exposed through [`crate::Rng::gen_range`].
//!
//! Integer ranges use Lemire's widening-multiply rejection exactly as
//! `rand 0.8`'s `UniformInt::sample_single{,_inclusive}` does; float ranges
//! use `UniformFloat::sample_single`'s scale-and-shift. Both reproduce
//! upstream draw sequences bit-for-bit.
//!
//! Mirroring upstream's impl structure (`Range<T>: SampleRange<T>` generic
//! over one `SampleUniform` bound) matters for type inference at call sites
//! like `x + rng.gen_range(-0.25..0.25)`.

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// Ranges that [`crate::Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types with a uniform range-sampling recipe.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws from `[low, high)`.
    fn sample_uniform<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Draws from `[low, high]`.
    fn sample_uniform_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Clone> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_uniform_inclusive(start, end, rng)
    }
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty, $uty:ty, $next:ident, $shift:expr;)*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
                let range = (high as $uty).wrapping_sub(low as $uty);
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$next();
                    let wide = <$wide>::from(v) * <$wide>::from(range);
                    let (hi, lo) = ((wide >> $shift) as $uty, wide as $uty);
                    if lo <= zone {
                        return (low as $uty).wrapping_add(hi) as $t;
                    }
                }
            }

            fn sample_uniform_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
                let range = (high as $uty).wrapping_sub(low as $uty).wrapping_add(1);
                if range == 0 {
                    // Full-width range: any value is uniform.
                    return rng.$next() as $t;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$next();
                    let wide = <$wide>::from(v) * <$wide>::from(range);
                    let (hi, lo) = ((wide >> $shift) as $uty, wide as $uty);
                    if lo <= zone {
                        return (low as $uty).wrapping_add(hi) as $t;
                    }
                }
            }
        }
    )*};
}
uniform_int! {
    u64 => u128, u64, next_u64, 64;
    usize => u128, u64, next_u64, 64;
    i64 => u128, u64, next_u64, 64;
    u32 => u64, u32, next_u32, 32;
    i32 => u64, u32, next_u32, 32;
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
        let mut scale = high - low;
        loop {
            // A float in [1, 2): exponent 0, random 52-bit mantissa.
            let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
            // Multiply-before-add, matching upstream's FMA-friendly form.
            let res = value1_2 * scale + (low - scale);
            if res < high {
                return res;
            }
            // Top-of-range rounding: shrink scale one ulp and retry.
            scale = f64::from_bits(scale.to_bits() - 1);
        }
    }

    fn sample_uniform_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
        // Upstream widens the scale one ulp so `high` itself is reachable.
        let max_rand = f64::from_bits((1023u64 << 52) | (u64::MAX >> 12));
        let mut scale = (high - low) / max_rand;
        loop {
            let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
            let res = value1_2 * scale + (low - scale);
            if res <= high {
                return res;
            }
            scale = f64::from_bits(scale.to_bits() - 1);
        }
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
        let mut scale = high - low;
        loop {
            let value1_2 = f32::from_bits((127u32 << 23) | (rng.next_u32() >> 9));
            let res = value1_2 * scale + (low - scale);
            if res < high {
                return res;
            }
            scale = f32::from_bits(scale.to_bits() - 1);
        }
    }

    fn sample_uniform_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
        let max_rand = f32::from_bits((127u32 << 23) | (u32::MAX >> 9));
        let mut scale = (high - low) / max_rand;
        loop {
            let value1_2 = f32::from_bits((127u32 << 23) | (rng.next_u32() >> 9));
            let res = value1_2 * scale + (low - scale);
            if res <= high {
                return res;
            }
            scale = f32::from_bits(scale.to_bits() - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn integer_range_is_lemire() {
        // Replays the widening-multiply recipe by hand on the same stream.
        let mut a = SmallRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        let got = a.gen_range(0..10u64);
        let v = b.next_u64();
        let hi = ((u128::from(v) * 10) >> 64) as u64;
        assert_eq!(got, hi);
    }

    #[test]
    fn float_range_is_scale_and_shift() {
        let mut a = SmallRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        let got = a.gen_range(-0.25..0.25);
        let bits = b.next_u64();
        let value1_2 = f64::from_bits((1023u64 << 52) | (bits >> 12));
        let scale = 0.25 - (-0.25);
        assert_eq!(got, value1_2 * scale + (-0.25 - scale));
    }

    #[test]
    fn small_inclusive_ranges_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..=2usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn u32_path_uses_32_bit_draws() {
        let mut a = SmallRng::seed_from_u64(13);
        let mut b = SmallRng::seed_from_u64(13);
        let got = a.gen_range(0..7u32);
        let v = b.next_u32();
        let hi = ((u64::from(v) * 7) >> 32) as u32;
        assert_eq!(got, hi);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(5..5usize);
    }
}
