//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace's simulator and evaluation pipelines are seeded and their
//! regression tests assert on exact outputs, so this shim reproduces the
//! upstream value streams bit-for-bit for everything the workspace calls:
//!
//! - [`rngs::SmallRng`] is xoshiro256++ with the SplitMix64 `seed_from_u64`
//!   expansion, matching `rand 0.8.5` on 64-bit targets.
//! - `gen::<f64>()` uses the 53-bit multiply recipe of the `Standard`
//!   distribution.
//! - `gen_range` uses Lemire's unbiased widening-multiply rejection for
//!   integers and the `UniformFloat` scale-and-shift for floats, again
//!   matching upstream sample-for-sample.

pub mod rngs;

mod distributions;
mod uniform;

pub use distributions::StandardSample;
pub use uniform::SampleRange;

/// Byte-source trait: the minimal core every generator implements.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution
    /// (`f64` in `[0, 1)`, uniform integers, …).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// The fixed-size seed accepted by [`SeedableRng::from_seed`].
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, stretching it over the full seed
    /// with the PCG32-based expansion `rand_core` 0.6 defaults to.
    ///
    /// [`rngs::SmallRng`] overrides this with SplitMix64, as upstream does.
    fn seed_from_u64(mut state: u64) -> Self {
        // Constants and update identical to rand_core 0.6's SeedableRng.
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    /// First outputs of `rand 0.8.5`'s `SmallRng::seed_from_u64(0)` on a
    /// 64-bit target (xoshiro256++). Guards the seed expansion AND the
    /// generator core at once.
    #[test]
    fn matches_rand_0_8_stream_seed0() {
        let mut rng = SmallRng::seed_from_u64(0);
        let expected: [u64; 4] = [
            5987356902031041503,
            7051070477665621255,
            6633766593972829180,
            211316841551650330,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn matches_rand_0_8_stream_seed2007() {
        // rand 0.8.5: SmallRng::seed_from_u64(2007), first two outputs.
        let mut rng = SmallRng::seed_from_u64(2007);
        assert_eq!(rng.next_u64(), 12827019179075555725);
        assert_eq!(rng.next_u64(), 4925085062804326506);
    }

    #[test]
    fn gen_f64_is_53_bit_multiply() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let x: f64 = a.gen();
        let bits = b.next_u64();
        assert_eq!(x, (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64));
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u = rng.gen_range(0..10usize);
            assert!(u < 10);
            let v = rng.gen_range(0..=10usize);
            assert!(v <= 10);
            let f = rng.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&f));
            let w = rng.gen_range(1..8u64);
            assert!((1..8).contains(&w));
        }
    }

    #[test]
    fn degenerate_inclusive_range_is_constant() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(rng.gen_range(5..=5usize), 5);
    }
}
