//! The `Standard` distribution, exposed through [`crate::Rng::gen`].

use crate::RngCore;

/// Types samplable by `rng.gen::<T>()`.
///
/// Recipes match `rand 0.8`'s `Standard` distribution bit-for-bit.
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for i32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl StandardSample for i64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // Upstream samples a u32 and tests the sign bit.
        (rng.next_u32() as i32) < 0
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53-bit multiply recipe: uniform on [0, 1).
        let scale = 1.0 / (1u64 << 53) as f64;
        scale * (rng.next_u64() >> 11) as f64
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 24-bit multiply recipe: uniform on [0, 1).
        let scale = 1.0 / (1u32 << 24) as f32;
        scale * (rng.next_u32() >> 8) as f32
    }
}
