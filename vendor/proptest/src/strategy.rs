//! The [`Strategy`] trait and its core implementations.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// The shim drops real proptest's value-tree/shrinking machinery: a strategy
/// simply draws a concrete value per case.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u32, u64, usize, i32, i64);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
}

/// Strategy that always yields a clone of one fixed value.
///
/// Mirrors real proptest's `Just`; most useful as a `prop_oneof!` arm.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy choosing uniformly among boxed alternatives.
///
/// Built by the [`prop_oneof!`](crate::prop_oneof) macro; unlike real
/// proptest there are no weights — every arm is equally likely.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Wraps the alternative strategies. Panics when `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.options.len())
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.rng().gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_generates_componentwise() {
        let mut rng = TestRng::deterministic("tuple");
        let (a, b, c) = (0u64..4, 0.0..1.0f64, 5usize..6).generate(&mut rng);
        assert!(a < 4);
        assert!((0.0..1.0).contains(&b));
        assert_eq!(c, 5);
    }

    #[test]
    fn just_always_yields_its_value() {
        let mut rng = TestRng::deterministic("just");
        for _ in 0..5 {
            assert_eq!(Just(42u64).generate(&mut rng), 42);
        }
    }

    #[test]
    fn union_picks_among_arms() {
        let mut rng = TestRng::deterministic("union");
        let u = Union::new(vec![Box::new(Just(1u64)), Box::new(Just(2u64))]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen, [1u64, 2].into_iter().collect());
    }

    #[test]
    fn map_applies_function() {
        let mut rng = TestRng::deterministic("map");
        let v = (0u64..10).prop_map(|x| x * 100).generate(&mut rng);
        assert_eq!(v % 100, 0);
        assert!(v < 1000);
    }
}
