//! The [`Strategy`] trait and its core implementations.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// The shim drops real proptest's value-tree/shrinking machinery: a strategy
/// simply draws a concrete value per case.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u32, u64, usize, i32, i64);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_generates_componentwise() {
        let mut rng = TestRng::deterministic("tuple");
        let (a, b, c) = (0u64..4, 0.0..1.0f64, 5usize..6).generate(&mut rng);
        assert!(a < 4);
        assert!((0.0..1.0).contains(&b));
        assert_eq!(c, 5);
    }

    #[test]
    fn map_applies_function() {
        let mut rng = TestRng::deterministic("map");
        let v = (0u64..10).prop_map(|x| x * 100).generate(&mut rng);
        assert_eq!(v % 100, 0);
        assert!(v < 1000);
    }
}
