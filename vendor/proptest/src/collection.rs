//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification: either exact or drawn from a half-open range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.start + 1 == self.size.end {
            self.size.start
        } else {
            rng.rng().gen_range(self.size.start..self.size.end)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size_is_exact() {
        let mut rng = TestRng::deterministic("vec-exact");
        let v = vec(0.0..1.0f64, 7).generate(&mut rng);
        assert_eq!(v.len(), 7);
    }

    #[test]
    fn ranged_size_stays_in_range() {
        let mut rng = TestRng::deterministic("vec-range");
        for _ in 0..100 {
            let v = vec(0u64..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn zero_length_is_allowed() {
        let mut rng = TestRng::deterministic("vec-zero");
        let mut saw_empty = false;
        for _ in 0..200 {
            saw_empty |= vec(0u64..5, 0..2).generate(&mut rng).is_empty();
        }
        assert!(saw_empty);
    }
}
