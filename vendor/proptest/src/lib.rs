//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: range and
//! regex-literal strategies, tuples, `Just`, `prop_oneof!`,
//! `prop::collection::vec`, `prop_map`, the `proptest!` macro family, and
//! `ProptestConfig::with_cases`.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! a failing case fails the test with the ordinary assertion message. Cases
//! are drawn from a fixed-seed generator, so runs are deterministic.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::Strategy;

/// Number of random cases each `proptest!` test runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// How many cases to draw per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Namespace mirror of proptest's `prop::` re-exports.
pub mod prop {
    pub use crate::collection;
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Defines property tests. Each `name(binding in strategy, ...)` item becomes
/// a `#[test]`-able function that draws `cases` random inputs and runs the
/// body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner!{($cfg); $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner!{($crate::ProptestConfig::default()); $($rest)*}
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for _case in 0..cfg.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

/// Picks uniformly among alternative strategies for the same value type.
///
/// Unlike real proptest, weighted arms (`3 => strat`) are not supported —
/// every arm is equally likely.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(Box::new($strat)),+];
        $crate::strategy::Union::new(options)
    }};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, u64)> {
        (-1.0..1.0f64, 3u64..9).prop_map(|(a, b)| (a * 2.0, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps_stay_in_bounds(
            (x, n) in pair(),
            k in 0usize..5,
            s in "[a-z0-9.]{1,12}",
            xs in prop::collection::vec(0.0..0.5f64, 4),
        ) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!(k < 5);
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || c == '.'));
            prop_assert_eq!(xs.len(), 4);
            prop_assert!(xs.iter().all(|v| (0.0..0.5).contains(v)));
        }

        #[test]
        fn assume_skips_cases(v in 0u64..10) {
            prop_assume!(v >= 5);
            prop_assert!(v >= 5);
            prop_assert_ne!(v, 4);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let draw = || {
            let mut rng = crate::test_runner::TestRng::deterministic("x");
            Strategy::generate(&(0.0..1.0f64), &mut rng)
        };
        assert_eq!(draw(), draw());
    }
}
