//! String strategies from regex-like literals.
//!
//! Supports the pattern subset used by this workspace's tests: a sequence of
//! atoms, where an atom is a literal character or a character class
//! `[a-z0-9.]`, optionally followed by a `{n}` or `{m,n}` repetition.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = if atom.min == atom.max {
                atom.min
            } else {
                rng.rng().gen_range(atom.min..=atom.max)
            };
            for _ in 0..n {
                let i = rng.rng().gen_range(0..atom.chars.len());
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.expect("range start");
                            let hi = chars.next().expect("range end");
                            assert!(lo <= hi, "reversed range {lo}-{hi} in {pattern:?}");
                            // `lo` is already in the set; add the rest.
                            set.extend(((lo as u32 + 1)..=(hi as u32)).filter_map(char::from_u32));
                            prev = None;
                        }
                        Some(ch) => {
                            set.push(ch);
                            prev = Some(ch);
                        }
                    }
                }
                set
            }
            '\\' => vec![chars.next().expect("escaped character")],
            ch => vec![ch],
        };
        assert!(!choices.is_empty(), "empty character class in {pattern:?}");
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for ch in chars.by_ref() {
                if ch == '}' {
                    break;
                }
                spec.push(ch);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "reversed repetition in {pattern:?}");
        atoms.push(Atom {
            chars: choices,
            min,
            max,
        });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repetition_generates_in_bounds() {
        let mut rng = TestRng::deterministic("string");
        for _ in 0..200 {
            let s = "[a-z0-9.]{1,12}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 12, "bad length: {s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.'));
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::deterministic("literal");
        assert_eq!("abc".generate(&mut rng), "abc");
        assert_eq!("a{3}".generate(&mut rng), "aaa");
    }
}
