//! The deterministic generator behind `proptest!`.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Random source for property tests: a fixed-seed [`SmallRng`] keyed on the
/// test name, so every run of a given test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Builds the generator for the named test.
    pub fn deterministic(test_name: &str) -> TestRng {
        // FNV-1a over the name: stable across runs and platforms.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(hash),
        }
    }

    /// The underlying rand generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn different_names_give_different_streams() {
        let a = TestRng::deterministic("alpha").rng().next_u64();
        let b = TestRng::deterministic("beta").rng().next_u64();
        assert_ne!(a, b);
    }
}
