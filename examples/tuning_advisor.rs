//! Tuning advisor: the paper's "what" and "how much" questions as a tool.
//!
//! For each workload, classify its sections, pick the dominant performance
//! class, and print the ranked optimization opportunities with their
//! expected gains — the ranking of §V.A.2 ("this ranking shows performance
//! analysts which micro-architectural events to target first and how much
//! gain to expect").
//!
//! Run with: `cargo run --release --example tuning_advisor`

use std::collections::BTreeMap;

use mtperf::prelude::*;
use mtperf_mtree::analysis;

fn main() {
    let samples = mtperf::sim::simulate_suite(500_000, 10_000, 77);
    let labels = mtperf::labels_from_samples(&samples);
    let data = mtperf::dataset_from_samples(&samples).expect("non-empty sample set");
    let min_instances = (data.n_rows() / 30).max(8);
    let tree = ModelTree::fit(
        &data,
        &M5Params::default()
            .with_min_instances(min_instances)
            .with_smoothing(false),
    )
    .expect("training succeeds");

    // Group section indices per workload.
    let mut by_workload: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, label) in labels.iter().enumerate() {
        by_workload.entry(label.as_str()).or_default().push(i);
    }

    for (workload, indices) in by_workload {
        // Representative section: the one with the median CPI.
        let mut sorted = indices.clone();
        sorted.sort_by(|&a, &b| {
            data.target(a)
                .partial_cmp(&data.target(b))
                .expect("finite CPI")
        });
        let median = sorted[sorted.len() / 2];
        let row = data.row(median);
        let class = tree.classify(&row);

        println!("== {workload} ==");
        println!(
            "   median section CPI {:.2}, class {}, rule path: {}",
            data.target(median),
            class.leaf,
            class
                .path
                .iter()
                .map(|d| format!(
                    "{} {} {:.4}",
                    data.attr_name(d.attr),
                    if d.went_high { ">" } else { "<=" },
                    d.threshold
                ))
                .collect::<Vec<_>>()
                .join("  &  ")
        );
        let opportunities = analysis::rank_opportunities(&tree, &row).expect("row matches tree");
        if opportunities.is_empty() {
            println!("   no in-model opportunities (constant class model);");
            println!("   the split variables on the path above are the levers.");
        } else {
            for (rank, c) in opportunities.iter().take(4).enumerate() {
                println!(
                    "   #{} eliminate {:<10} -> up to {:>4.1}% faster ({:.4}/instr x coefficient {:.2})",
                    rank + 1,
                    data.attr_name(c.attr),
                    100.0 * c.fraction,
                    c.value,
                    c.coefficient,
                );
            }
        }
        println!();
    }
}
