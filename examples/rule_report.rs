//! Rule report: the tree as an ordered IF-THEN rule list, saved and
//! reloaded — the form a performance analyst would paste into a report.
//!
//! Run with: `cargo run --release --example rule_report`

use mtperf::mtree::RuleSet;
use mtperf::prelude::*;

fn main() {
    let samples = mtperf::sim::simulate_suite(400_000, 10_000, 7);
    let data = mtperf::dataset_from_samples(&samples).expect("non-empty sample set");
    let min_instances = (data.n_rows() / 30).max(8);
    let tree = ModelTree::fit(
        &data,
        &M5Params::default()
            .with_min_instances(min_instances)
            .with_smoothing(false),
    )
    .expect("training succeeds");

    // Persist and reload: models are plain JSON.
    let path = std::env::temp_dir().join("mtperf-rule-report-model.json");
    tree.save(&path).expect("save succeeds");
    let reloaded = ModelTree::load(&path).expect("load succeeds");
    println!(
        "model saved to {} ({} classes) and reloaded\n",
        path.display(),
        reloaded.n_leaves()
    );

    // The same model, flattened to ordered rules (most-covering first).
    let rules = RuleSet::from_tree(&reloaded);
    println!("{}", rules.render("CPI"));

    // Rules and tree agree on every section.
    let disagreements = (0..data.n_rows())
        .filter(|&i| {
            let row = data.row(i);
            rules.predict(&row) != reloaded.predict_raw(&row)
        })
        .count();
    println!("rule/tree prediction disagreements: {disagreements} (must be 0)");
    std::fs::remove_file(&path).ok();
}
