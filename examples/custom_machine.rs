//! Architecture what-if: the same workloads on modified machines.
//!
//! The paper motivates counter-based models partly for "assisting in the
//! design of new platforms". With a simulated substrate we can actually turn
//! the knobs: double the L2, disable the prefetcher, deepen the pipeline —
//! and watch the event rates and CPI respond.
//!
//! Run with: `cargo run --release --example custom_machine`

use mtperf::prelude::*;
use mtperf_sim::workload::profiles;

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn run(config: MachineConfig, label: &str) {
    let sim = Simulator::new(config).with_seed(42);
    println!("--- {label} ---");
    println!(
        "{:<24} {:>6} {:>9} {:>9} {:>9}",
        "workload", "CPI", "L2M", "L1DM", "BrMisPr"
    );
    for w in [
        profiles::mcf_like(400_000),
        profiles::milc_like(400_000),
        profiles::soplex_like(400_000),
        profiles::gobmk_like(400_000),
    ] {
        let set = sim.run(&w, 10_000);
        println!(
            "{:<24} {:>6.2} {:>9.5} {:>9.5} {:>9.5}",
            w.name,
            mean(&set.cpis()),
            mean(&set.rates_of(Event::L2m)),
            mean(&set.rates_of(Event::L1dm)),
            mean(&set.rates_of(Event::BrMisPr)),
        );
    }
    println!();
}

fn main() {
    // Baseline: the paper's 2.4 GHz Core 2 Duo.
    run(MachineConfig::core2_duo(), "baseline Core 2 Duo");

    // What if the L2 were 8 MiB?
    let mut big_l2 = MachineConfig::core2_duo();
    big_l2.l2.size_bytes *= 2;
    run(big_l2, "8 MiB L2");

    // What if the prefetcher were off?
    let mut no_prefetch = MachineConfig::core2_duo();
    no_prefetch.prefetcher = mtperf::sim::PrefetcherKind::Off;
    run(no_prefetch, "prefetcher disabled (watch milc's L2M)");

    // What if the prefetcher also caught strided streams?
    let mut stride = MachineConfig::core2_duo();
    stride.prefetcher = mtperf::sim::PrefetcherKind::Stride;
    run(
        stride,
        "stride prefetcher (watch cactus-style strided sweeps)",
    );

    // What if the pipeline were NetBurst-deep? The paper contrasts Core 2's
    // branch sensitivity with the Pentium 4's much costlier flushes.
    let mut deep = MachineConfig::core2_duo();
    deep.mispredict_penalty = 30.0;
    run(deep, "NetBurst-like 30-cycle flush (watch gobmk's CPI)");
}
