//! Phase detection: the tree's classes double as a phase detector.
//!
//! The paper builds on Sherwood-style phase behavior — a workload's sections
//! shift between classes as it moves through phases. Here we run the
//! three-phase gcc-like profile and print the class timeline; the phase
//! boundaries (parse → optimize → codegen) are visible as class changes.
//!
//! Run with: `cargo run --release --example phase_detection`

use mtperf::prelude::*;
use mtperf_sim::workload::profiles;

fn main() {
    // Train the classifier on the whole suite (as the paper does)...
    let suite = mtperf::sim::simulate_suite(400_000, 10_000, 42);
    let data = mtperf::dataset_from_samples(&suite).expect("non-empty sample set");
    let min_instances = (data.n_rows() / 30).max(8);
    let tree = ModelTree::fit(
        &data,
        &M5Params::default()
            .with_min_instances(min_instances)
            .with_smoothing(false),
    )
    .expect("training succeeds");

    // ...then replay one phased workload and classify its sections in time
    // order.
    let sim = Simulator::new(MachineConfig::core2_duo()).with_seed(42);
    let gcc = profiles::gcc_like(600_000);
    let run = sim.run(&gcc, 10_000);

    println!(
        "section timeline of {} ({} sections):\n",
        gcc.name,
        run.len()
    );
    println!("{:>8} {:>8} {:>8}   class", "section", "CPI", "LCP");
    let mut previous = None;
    for s in run.iter() {
        let class = tree.classify(s.as_row());
        let marker = if previous.is_some() && previous != Some(class.leaf) {
            "  <-- phase change"
        } else {
            ""
        };
        println!(
            "{:>8} {:>8.2} {:>8.4}   {}{marker}",
            s.section_index,
            s.cpi,
            s.rate(Event::Lcp),
            class.leaf,
        );
        previous = Some(class.leaf);
    }

    // Summarize detected phases with the hysteresis tracker (blips at phase
    // boundaries are absorbed).
    let mut tracker = mtperf::mtree::PhaseTracker::new(&tree, 2);
    for s in run.iter() {
        tracker.observe(s.as_row());
    }
    println!("\ndetected phase structure (hysteresis 2):");
    for phase in tracker.finish() {
        println!(
            "  sections {:>3}..{:<3} class {}",
            phase.start,
            phase.start + phase.len - 1,
            phase.class
        );
    }
}
