//! Full suite analysis: train the tree, then read it the way the paper does
//! in §V.A — which workloads fall into which performance classes, what each
//! class's model says, and what the split variables cost.
//!
//! Run with: `cargo run --release --example spec_analysis`

use mtperf::prelude::*;
use mtperf_mtree::analysis;

fn main() {
    let samples = mtperf::sim::simulate_suite(600_000, 10_000, 2007);
    let labels = mtperf::labels_from_samples(&samples);
    let data = mtperf::dataset_from_samples(&samples).expect("non-empty sample set");

    let min_instances = (data.n_rows() / 30).max(8);
    let tree = ModelTree::fit(
        &data,
        &M5Params::default()
            .with_min_instances(min_instances)
            .with_smoothing(false),
    )
    .expect("training succeeds");

    println!("=== Performance-analysis tree ===\n");
    println!("{}", tree.render("CPI"));

    // Class occupancy per workload (the paper: ">95% of cactusADM in LM18",
    // ">70% of mcf in LM17").
    println!("=== Class occupancy by workload ===\n");
    let rows: Vec<Vec<f64>> = (0..data.n_rows()).map(|i| data.row(i)).collect();
    let occupancy = analysis::occupancy_by_label(&tree, &rows, &labels);
    for (workload, classes) in &occupancy {
        let total: usize = classes.values().sum();
        let (top_leaf, top_n) = classes
            .iter()
            .max_by_key(|(_, &n)| n)
            .expect("non-empty class map");
        println!(
            "{workload:<24} dominant class {top_leaf} ({:.0}% of {total} sections)",
            100.0 * *top_n as f64 / total as f64
        );
    }

    // Split-variable impact, both of the paper's estimators.
    println!("\n=== Split-variable impact (top of the tree) ===\n");
    for impact in analysis::split_impacts(&tree, &data).iter().take(6) {
        println!(
            "{:<10} <= {:.6}  |  mean CPI {:.2} vs {:.2}  (Δ = {:.2}, {:.0}% of the high side; R² = {:.2})",
            data.attr_name(impact.attr),
            impact.threshold,
            impact.mean_low,
            impact.mean_high,
            impact.mean_difference,
            100.0 * impact.fraction_of_high,
            impact.r_squared,
        );
    }
}
