//! Quickstart: simulate a SPEC-like suite, train an M5' model tree on the
//! section counters, and validate it — the paper's pipeline in ~40 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use mtperf::prelude::*;

fn main() {
    // 1. Collect "hardware counter" data: every profile in the synthetic
    //    SPEC-like suite runs on the Core 2 Duo machine model, and execution
    //    is sliced into sections of 10k retired instructions.
    println!("simulating the SPEC-like suite...");
    let samples = mtperf::sim::simulate_suite(400_000, 10_000, 42);
    println!(
        "  {} sections from {} workloads",
        samples.len(),
        samples.workloads().len()
    );

    // 2. Build the learning problem: 20 per-instruction event rates -> CPI.
    let data = mtperf::dataset_from_samples(&samples).expect("non-empty sample set");

    // 3. Train the model tree. The paper pre-prunes at 430 instances on its
    //    dataset; we scale that to ours.
    let min_instances = (data.n_rows() / 30).max(8);
    let params = M5Params::default().with_min_instances(min_instances);
    let tree = ModelTree::fit(&data, &params).expect("training succeeds");
    println!(
        "\nperformance-analysis tree ({} classes, depth {}):\n",
        tree.n_leaves(),
        tree.depth()
    );
    println!("{}", tree.render("CPI"));

    // 4. Validate with the paper's 10-fold cross-validation protocol.
    let learner = M5Learner::new(params);
    let cv = cross_validate(&learner, &data, 10, 7).expect("cv succeeds");
    println!("10-fold CV: {}", cv.pooled);
    println!("(paper reports C = 0.98, MAE = 0.05, RAE = 7.83% on real Core 2 Duo data)");
}
