//! Training-time benchmarks for M5': size sweep and the pruning/smoothing/
//! min-instances ablations of DESIGN.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mtperf_bench::synthetic_dataset;
use mtperf_mtree::{M5Params, ModelTree};

fn bench_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build/size");
    group.sample_size(10);
    for &n in &[1_000usize, 5_000, 20_000] {
        let data = synthetic_dataset(n, 20);
        let params = M5Params::default().with_min_instances((n / 30).max(4));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ModelTree::fit(black_box(&data), black_box(&params)).unwrap());
        });
    }
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let data = synthetic_dataset(5_000, 20);
    let base = M5Params::default().with_min_instances(100);
    let mut group = c.benchmark_group("tree_build/ablation");
    group.sample_size(10);
    for (name, params) in [
        ("default", base.clone()),
        ("no_prune", base.clone().with_prune(false)),
        ("no_smoothing", base.clone().with_smoothing(false)),
        ("min_inst_10", base.clone().with_min_instances(10)),
        ("min_inst_430", base.clone().with_min_instances(430)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| ModelTree::fit(black_box(&data), black_box(&params)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_size_sweep, bench_ablations);
criterion_main!(benches);
