//! Training-cost comparison across all regressors on an identical dataset —
//! the runtime companion to the accuracy comparison of the repro harness.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mtperf_baselines::{CartLearner, GlobalLinear, KnnLearner, MlpLearner, SvrLearner};
use mtperf_bench::synthetic_dataset;
use mtperf_mtree::{Learner, M5Learner, M5Params};

fn bench_training(c: &mut Criterion) {
    let data = synthetic_dataset(2_000, 20);
    let learners: Vec<Box<dyn Learner>> = vec![
        Box::new(M5Learner::new(M5Params::default().with_min_instances(60))),
        Box::new(GlobalLinear::new()),
        Box::new(CartLearner::new(60)),
        Box::new(KnnLearner::new(5)),
        Box::new(MlpLearner::new(16).with_epochs(20)),
        Box::new(SvrLearner {
            max_sweeps: 10,
            ..SvrLearner::default()
        }),
    ];
    let mut group = c.benchmark_group("baselines/train_2000x20");
    group.sample_size(10);
    for learner in &learners {
        group.bench_function(learner.name(), |b| {
            b.iter(|| learner.fit(black_box(&data)).unwrap());
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let data = synthetic_dataset(2_000, 20);
    let row = data.row(999);
    let learners: Vec<Box<dyn Learner>> = vec![
        Box::new(M5Learner::new(M5Params::default().with_min_instances(60))),
        Box::new(GlobalLinear::new()),
        Box::new(KnnLearner::new(5)),
        Box::new(MlpLearner::new(16).with_epochs(20)),
    ];
    let mut group = c.benchmark_group("baselines/predict");
    for learner in &learners {
        let model = learner.fit(&data).unwrap();
        group.bench_function(learner.name(), |b| {
            b.iter(|| model.predict(black_box(&row)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training, bench_inference);
criterion_main!(benches);
