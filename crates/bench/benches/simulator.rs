//! Simulator throughput: instructions/second per profile, plus component
//! microbenchmarks (cache, TLB, predictor, store buffer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use mtperf_sim::workload::profiles;
use mtperf_sim::{
    Cache, CacheGeometry, GsharePredictor, MachineConfig, PredictorConfig, Simulator, StoreBuffer,
    Tlb, TlbGeometry,
};

const INSTRUCTIONS: u64 = 100_000;

fn bench_profiles(c: &mut Criterion) {
    let sim = Simulator::new(MachineConfig::core2_duo()).with_seed(1);
    let mut group = c.benchmark_group("simulator/profile");
    group.sample_size(10);
    group.throughput(Throughput::Elements(INSTRUCTIONS));
    for w in [
        profiles::namd_like(INSTRUCTIONS),
        profiles::gcc_like(INSTRUCTIONS),
        profiles::mcf_like(INSTRUCTIONS),
        profiles::milc_like(INSTRUCTIONS),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(&w.name), &w, |b, w| {
            b.iter(|| sim.run(black_box(w), 10_000));
        });
    }
    group.finish();
}

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/component");
    group.throughput(Throughput::Elements(1));

    let mut cache = Cache::new(CacheGeometry {
        size_bytes: 32 * 1024,
        line_bytes: 64,
        ways: 8,
    });
    let mut addr = 0u64;
    group.bench_function("cache_access", |b| {
        b.iter(|| {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1);
            cache.access(black_box(addr % (1 << 22)))
        });
    });

    let mut tlb = Tlb::new(
        TlbGeometry {
            entries: 256,
            ways: 4,
        },
        4096,
    );
    let mut vaddr = 0u64;
    group.bench_function("tlb_translate", |b| {
        b.iter(|| {
            vaddr = vaddr
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            tlb.translate(black_box(vaddr % (1 << 30)))
        });
    });

    let mut predictor = GsharePredictor::new(PredictorConfig { history_bits: 12 });
    let mut pc = 0u64;
    group.bench_function("branch_predict", |b| {
        b.iter(|| {
            pc = pc.wrapping_add(4) % 8192;
            predictor.predict_and_update(black_box(pc), pc.is_multiple_of(3))
        });
    });

    let mut sb = StoreBuffer::new();
    let mut a = 0u64;
    group.bench_function("store_buffer_check", |b| {
        b.iter(|| {
            a = a.wrapping_add(24) % 4096;
            sb.record_store(a, 8);
            sb.check_load(black_box(a ^ 8), 8)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_profiles, bench_components);
criterion_main!(benches);
