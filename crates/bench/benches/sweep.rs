//! Cost of the compositional-fusion additions: analytic feature
//! augmentation at ingest, counter transplanting to a candidate machine,
//! and end-to-end design-space sweep throughput (configs/sec through the
//! compiled parallel batch engine).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mtperf::analytic::{self, AnalyticModel};
use mtperf::sweep::{SweepAxes, SweepSpec};
use mtperf_bench::suite_samples;
use mtperf_linalg::Parallelism;
use mtperf_mtree::{M5Params, ModelTree};
use mtperf_sim::MachineConfig;

const INSTRUCTIONS: u64 = 100_000;

fn small_grid() -> SweepSpec {
    SweepSpec {
        base_machine: "core2_duo".to_string(),
        axes: SweepAxes {
            l1d_kb: vec![16, 32],
            l2_kb: vec![1024, 2048, 4096],
            dtlb1_entries: vec![128, 256],
            history_bits: vec![8, 12],
            ..SweepAxes::default()
        },
        top_blame: 3,
    }
}

fn bench_sweep(c: &mut Criterion) {
    let samples = suite_samples(INSTRUCTIONS);
    let machine = MachineConfig::core2_duo();

    let mut group = c.benchmark_group("sweep");

    // Ingest augmentation: the analytic columns vs. the plain dataset.
    group.bench_function("ingest/counters", |b| {
        b.iter(|| mtperf::dataset_from_samples(black_box(&samples)).unwrap());
    });
    group.bench_function("ingest/analytic", |b| {
        b.iter(|| analytic::dataset_with_analytic(black_box(&samples), &machine).unwrap());
    });

    // Per-row analytic pricing on its own (the inner loop of augmentation
    // and of analytic-mode sweeps).
    let data = mtperf::dataset_from_samples(&samples).unwrap();
    let model = AnalyticModel::new(machine.clone());
    let first = data.row(0);
    group.bench_function("analytic/components", |b| {
        b.iter(|| model.components(black_box(&first)));
    });

    // Counter transplanting: one section re-priced for one candidate.
    let variant = {
        let mut m = machine.clone();
        m.l2.size_bytes /= 4;
        m
    };
    let factors = analytic::scale_factors(&machine, &variant);
    group.bench_function("transplant/row", |b| {
        b.iter(|| analytic::transplant_rates(black_box(&first), black_box(&factors)));
    });

    // End-to-end sweep: 24 configs x every section, through the compiled
    // engine. Serial vs. auto parallelism, same spec, so the ratio tracks
    // the engine's batch speedup on sweep-shaped work.
    let params = M5Params::default().with_min_instances((data.n_rows() / 30).max(8));
    let tree = ModelTree::fit(&data, &params).unwrap();
    let spec = small_grid();
    assert_eq!(spec.enumerate().unwrap().len(), 24);
    group.sample_size(10);
    for (label, par) in [("serial", Parallelism::Off), ("auto", Parallelism::Auto)] {
        group.bench_function(format!("run24/{label}"), |b| {
            b.iter(|| mtperf::sweep::run(black_box(&spec), &tree, &samples, false, par).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
