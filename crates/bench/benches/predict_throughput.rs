//! Compiled-vs-interpreted prediction throughput, as a scaling curve.
//!
//! Measures rows/sec of the interpreted per-row walk (`ModelTree::predict`
//! over `Dataset::row`) against the compiled batch engine
//! (`CompiledTree::predict_batch`) — serial and at every thread count from
//! 1 to the host's budget — across batch sizes from 1k to 10M rows, and
//! writes the whole curve to `BENCH_predict.json` at the repository root
//! (schema v2, documented in the README) so per-PR regressions are visible
//! per (threads × batch size) cell, not just as one blended number.
//!
//! Set `BENCH_SMOKE=1` to run a reduced sweep (≤100k rows, fewer reps) —
//! that is what CI's `bench-smoke` job runs on every push.

use criterion::{criterion_group, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

use mtperf_bench::{synthetic_dataset, synthetic_matrix};
use mtperf_linalg::{parallel, Matrix, Parallelism};
use mtperf_mtree::{CompiledTree, Dataset, M5Params, ModelTree};
use serde::Value;

/// Rows used to *fit* the tree (the model under test is fixed; only the
/// scored batch scales).
const FIT_ROWS: usize = 10_000;
const ATTRS: usize = 20;

/// Batch sizes of the full sweep; the smoke sweep stops at 100k.
const SIZES: [usize; 5] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000];

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

fn sweep_sizes() -> &'static [usize] {
    if smoke() {
        &SIZES[..3]
    } else {
        &SIZES
    }
}

/// Repetitions per measurement, scaled down as batches grow so the full
/// sweep stays in tens of seconds.
fn reps_for(rows: usize) -> usize {
    if smoke() {
        7
    } else if rows <= 100_000 {
        25
    } else if rows <= 1_000_000 {
        15
    } else {
        9
    }
}

fn fixture() -> (Dataset, ModelTree, CompiledTree) {
    let data = synthetic_dataset(FIT_ROWS, ATTRS);
    let tree = ModelTree::fit(
        &data,
        &M5Params::default()
            .with_min_instances(100)
            .with_smoothing(true),
    )
    .unwrap();
    let compiled = tree.compile();
    (data, tree, compiled)
}

/// The interpreted per-row scoring loop exactly as the evaluation harness
/// ran it before the compiled engine existed: materialize each row as an
/// owned `Vec` (what `Dataset::row` hands out), then walk the boxed tree.
/// Keeping the per-row materialization preserves comparability of the
/// interpreted baseline across the perf history in `BENCH_predict.json`.
#[allow(clippy::unnecessary_to_owned)] // the allocation IS the baseline
fn interpreted_pass(tree: &ModelTree, matrix: &Matrix) -> f64 {
    let mut acc = 0.0;
    for i in 0..matrix.rows() {
        acc += tree.predict(black_box(&matrix.row(i).to_vec()));
    }
    acc
}

fn bench_predict_throughput(c: &mut Criterion) {
    let (data, tree, compiled) = fixture();
    let matrix = data.to_matrix();

    let mut group = c.benchmark_group("predict_throughput/10k_rows");
    group.throughput(Throughput::Elements(FIT_ROWS as u64));
    group.bench_function("interpreted", |b| {
        b.iter(|| interpreted_pass(&tree, &matrix));
    });
    group.bench_function("compiled_serial", |b| {
        b.iter(|| compiled.predict_batch_with(black_box(&matrix), Parallelism::Off));
    });
    group.bench_function("compiled_parallel", |b| {
        b.iter(|| compiled.predict_batch_with(black_box(&matrix), Parallelism::Auto));
    });
    group.finish();
}

/// Median rows/sec over repeated timed passes.
fn rows_per_sec(rows: usize, reps: usize, mut pass: impl FnMut()) -> f64 {
    let mut rates: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            pass();
            rows as f64 / start.elapsed().as_secs_f64()
        })
        .collect();
    median(&mut rates)
}

fn median(rates: &mut [f64]) -> f64 {
    rates.sort_by(f64::total_cmp);
    rates[rates.len() / 2]
}

/// Builds a JSON object from string keys (the vendored serde shim's
/// [`Value`] has no `json!` macro).
fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Pass-through wrapper so a hand-built [`Value`] tree can go through
/// [`serde_json::to_string_pretty`], which wants a [`serde::Serialize`].
struct Raw(Value);

impl serde::Serialize for Raw {
    fn serialize(&self) -> Value {
        self.0.clone()
    }
}

/// Measures the scaling curve and writes `BENCH_predict.json` (schema v2)
/// at the repo root: one entry per batch size with interpreted + serial
/// rates and a per-thread-count parallel sub-curve, plus host metadata and
/// the measured serial/parallel cutover. The legacy flat keys stay at the
/// top level, reporting the largest swept size, so older tooling keeps
/// parsing the file.
fn emit_bench_json() {
    let (_, tree, compiled) = fixture();
    let max_threads = Parallelism::Auto.threads().max(1);
    parallel::warm_up();

    let mut curve = Vec::new();
    let mut last = (0.0, 0.0, 0.0); // (interpreted, serial, best parallel) at largest size
    for &rows in sweep_sizes() {
        let matrix = synthetic_matrix(rows, ATTRS);
        let reps = reps_for(rows);

        // Warm: touch every page and calibrate the Auto cutover.
        black_box(compiled.predict_batch_with(&matrix, Parallelism::Auto));

        let interpreted = rows_per_sec(rows, reps.min(7), || {
            black_box(interpreted_pass(&tree, &matrix));
        });
        // Serial and every thread count measure round-robin, one pass each
        // per rep: on quota-throttled hosts the clock slows monotonically
        // through the run, and back-to-back blocks of reps would hand the
        // earlier-measured setting a systematic edge. Interleaving spreads
        // the drift evenly; the medians then compare like with like.
        let time_once = |par: Parallelism| {
            let start = Instant::now();
            black_box(compiled.predict_batch_with(&matrix, par));
            rows as f64 / start.elapsed().as_secs_f64()
        };
        let mut serial_rates = Vec::with_capacity(reps);
        let mut fixed_rates: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); max_threads];
        for rep in 0..reps {
            // Alternate within-round order too: on throttled hosts the
            // second pass of a round systematically reads slower, so a
            // fixed order would bias whichever setting always ran last.
            if rep % 2 == 0 {
                serial_rates.push(time_once(Parallelism::Off));
                for (t, rates) in fixed_rates.iter_mut().enumerate() {
                    rates.push(time_once(Parallelism::Fixed(t + 1)));
                }
            } else {
                for (t, rates) in fixed_rates.iter_mut().enumerate().rev() {
                    rates.push(time_once(Parallelism::Fixed(t + 1)));
                }
                serial_rates.push(time_once(Parallelism::Off));
            }
        }
        let serial = median(&mut serial_rates);
        let per_thread: Vec<(usize, f64)> = fixed_rates
            .iter_mut()
            .enumerate()
            .map(|(t, rates)| (t + 1, median(rates)))
            .collect();
        let best_parallel = per_thread.iter().map(|&(_, r)| r).fold(0.0f64, f64::max);
        eprintln!(
            "predict scaling: rows {rows:>9} interpreted {interpreted:>12.0} \
             serial {serial:>12.0} best-parallel {best_parallel:>12.0} rows/s"
        );
        curve.push(obj(vec![
            ("rows", Value::U64(rows as u64)),
            ("interpreted_rows_per_sec", Value::F64(interpreted)),
            ("compiled_serial_rows_per_sec", Value::F64(serial)),
            (
                "compiled_parallel",
                Value::Array(
                    per_thread
                        .iter()
                        .map(|&(t, rate)| {
                            obj(vec![
                                ("threads", Value::U64(t as u64)),
                                ("rows_per_sec", Value::F64(rate)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
        last = (interpreted, serial, best_parallel);
    }

    let (interpreted, serial, parallel_rate) = last;
    let root = obj(vec![
        ("bench", Value::Str("predict_throughput".into())),
        ("schema", Value::U64(2)),
        ("smoke", Value::Bool(smoke())),
        ("attrs", Value::U64(ATTRS as u64)),
        ("smoothing", Value::Bool(true)),
        (
            "host",
            obj(vec![
                ("threads", Value::U64(max_threads as u64)),
                ("os", Value::Str(std::env::consts::OS.into())),
                ("arch", Value::Str(std::env::consts::ARCH.into())),
            ]),
        ),
        (
            "cutover_rows",
            match compiled.parallel_cutover() {
                Some(n) => Value::U64(n as u64),
                None => Value::Null,
            },
        ),
        ("curve", Value::Array(curve)),
        // Legacy flat keys (schema v1), reporting the largest swept size.
        (
            "rows",
            Value::U64(sweep_sizes().last().copied().unwrap() as u64),
        ),
        ("interpreted_rows_per_sec", Value::F64(interpreted)),
        ("compiled_serial_rows_per_sec", Value::F64(serial)),
        ("compiled_parallel_rows_per_sec", Value::F64(parallel_rate)),
        ("speedup_serial", Value::F64(serial / interpreted)),
        ("speedup_parallel", Value::F64(parallel_rate / interpreted)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_predict.json");
    let mut rendered = serde_json::to_string_pretty(&Raw(root)).expect("render JSON");
    rendered.push('\n');
    std::fs::write(path, &rendered).expect("write BENCH_predict.json");
    eprintln!("wrote {path}:\n{rendered}");
}

criterion_group!(benches, bench_predict_throughput);

fn main() {
    // The JSON scaling curve runs first, on a cold CPU: the criterion group
    // saturates the machine for minutes, and on quota-throttled containers
    // everything measured after it reads up to 2× slow.
    emit_bench_json();
    benches();
}
