//! Compiled-vs-interpreted prediction throughput.
//!
//! Measures rows/sec of the interpreted per-row walk (`ModelTree::predict`
//! over `Dataset::row`, the pre-compiled evaluation path) against the
//! compiled batch engine (`CompiledTree::predict_batch`), serial and
//! parallel, on a 10k-row batch — and writes the measured rates to
//! `BENCH_predict.json` at the repository root so the speedup is tracked
//! across PRs. The compiled path must deliver ≥ 4× the interpreted
//! rows/sec; the JSON records the actual ratio.

use criterion::{criterion_group, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

use mtperf_bench::synthetic_dataset;
use mtperf_linalg::{Matrix, Parallelism};
use mtperf_mtree::{CompiledTree, Dataset, M5Params, ModelTree};

const ROWS: usize = 10_000;
const ATTRS: usize = 20;

fn fixture() -> (Dataset, ModelTree, CompiledTree, Matrix) {
    let data = synthetic_dataset(ROWS, ATTRS);
    let tree = ModelTree::fit(
        &data,
        &M5Params::default()
            .with_min_instances(100)
            .with_smoothing(true),
    )
    .unwrap();
    let compiled = tree.compile();
    let matrix = data.to_matrix();
    (data, tree, compiled, matrix)
}

/// The interpreted per-row scoring loop exactly as the evaluation harness
/// ran it before the compiled engine existed: materialize each row from the
/// column-major dataset, then walk the boxed tree.
fn interpreted_pass(tree: &ModelTree, data: &Dataset) -> f64 {
    let mut acc = 0.0;
    for i in 0..data.n_rows() {
        acc += tree.predict(black_box(&data.row(i)));
    }
    acc
}

fn bench_predict_throughput(c: &mut Criterion) {
    let (data, tree, compiled, matrix) = fixture();

    let mut group = c.benchmark_group("predict_throughput/10k_rows");
    group.throughput(Throughput::Elements(ROWS as u64));
    group.bench_function("interpreted", |b| {
        b.iter(|| interpreted_pass(&tree, &data));
    });
    group.bench_function("compiled_serial", |b| {
        b.iter(|| compiled.predict_batch_with(black_box(&matrix), Parallelism::Off));
    });
    group.bench_function("compiled_parallel", |b| {
        b.iter(|| compiled.predict_batch_with(black_box(&matrix), Parallelism::Auto));
    });
    group.finish();
}

/// Median rows/sec over repeated timed passes.
fn rows_per_sec(reps: usize, mut pass: impl FnMut()) -> f64 {
    let mut rates: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            pass();
            ROWS as f64 / start.elapsed().as_secs_f64()
        })
        .collect();
    rates.sort_by(f64::total_cmp);
    rates[rates.len() / 2]
}

/// Measures the three paths and writes `BENCH_predict.json` at the repo
/// root (machine-readable perf trajectory; see DESIGN.md §9).
fn emit_bench_json() {
    let (data, tree, compiled, matrix) = fixture();

    // Warm up, then take the median of repeated passes.
    interpreted_pass(&tree, &data);
    compiled.predict_batch_with(&matrix, Parallelism::Off);

    let interpreted = rows_per_sec(25, || {
        black_box(interpreted_pass(&tree, &data));
    });
    let serial = rows_per_sec(25, || {
        black_box(compiled.predict_batch_with(&matrix, Parallelism::Off));
    });
    let parallel = rows_per_sec(25, || {
        black_box(compiled.predict_batch_with(&matrix, Parallelism::Auto));
    });

    let json = format!(
        "{{\n  \"bench\": \"predict_throughput\",\n  \"rows\": {ROWS},\n  \
         \"attrs\": {ATTRS},\n  \"smoothing\": true,\n  \
         \"interpreted_rows_per_sec\": {interpreted:.0},\n  \
         \"compiled_serial_rows_per_sec\": {serial:.0},\n  \
         \"compiled_parallel_rows_per_sec\": {parallel:.0},\n  \
         \"speedup_serial\": {:.2},\n  \"speedup_parallel\": {:.2}\n}}\n",
        serial / interpreted,
        parallel / interpreted,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_predict.json");
    std::fs::write(path, &json).expect("write BENCH_predict.json");
    eprintln!("wrote {path}:\n{json}");
}

criterion_group!(benches, bench_predict_throughput);

fn main() {
    benches();
    emit_bench_json();
}
