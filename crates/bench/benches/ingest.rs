//! Ingestion cost across policies: strict parse vs. quarantine (skip) vs.
//! median-imputation repair, on clean and corrupted CSV text.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mtperf_bench::suite_samples;
use mtperf_counters::faultinject::{FaultInjector, FaultOp};
use mtperf_counters::{read_csv_with_policy, write_csv, IngestPolicy};

const INSTRUCTIONS: u64 = 100_000;

fn bench_ingest(c: &mut Criterion) {
    let samples = suite_samples(INSTRUCTIONS);
    let mut buf = Vec::new();
    write_csv(&samples, &mut buf).unwrap();
    let clean = String::from_utf8(buf).unwrap();

    let mut inj = FaultInjector::new(11);
    let mut corrupt = clean.clone();
    for op in [
        FaultOp::FlipNonFinite(8),
        FaultOp::SaturateCounters(8),
        FaultOp::TruncateFields(8),
    ] {
        corrupt = inj.apply(op, &corrupt).text;
    }

    let mut group = c.benchmark_group("ingest");
    for policy in [
        IngestPolicy::Strict,
        IngestPolicy::Skip,
        IngestPolicy::Repair,
    ] {
        group.bench_function(format!("clean/{policy}"), |b| {
            b.iter(|| read_csv_with_policy(black_box(clean.as_bytes()), policy).unwrap());
        });
    }
    // Strict rejects the corrupted text, so only the tolerant policies are
    // meaningful there.
    for policy in [IngestPolicy::Skip, IngestPolicy::Repair] {
        group.bench_function(format!("corrupt/{policy}"), |b| {
            b.iter(|| read_csv_with_policy(black_box(corrupt.as_bytes()), policy).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
