//! Prediction-latency benchmarks: single section and batch, smoothed and
//! raw.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use mtperf_bench::synthetic_dataset;
use mtperf_mtree::{M5Params, ModelTree};

fn bench_predict(c: &mut Criterion) {
    let data = synthetic_dataset(10_000, 20);
    let smoothed = ModelTree::fit(
        &data,
        &M5Params::default()
            .with_min_instances(100)
            .with_smoothing(true),
    )
    .unwrap();
    let raw = ModelTree::fit(
        &data,
        &M5Params::default()
            .with_min_instances(100)
            .with_smoothing(false),
    )
    .unwrap();
    let row = data.row(1234);

    let mut group = c.benchmark_group("tree_predict/single");
    group.bench_function("smoothed", |b| {
        b.iter(|| smoothed.predict(black_box(&row)));
    });
    group.bench_function("raw", |b| {
        b.iter(|| raw.predict(black_box(&row)));
    });
    group.bench_function("classify", |b| {
        b.iter(|| raw.classify(black_box(&row)));
    });
    group.finish();

    let rows: Vec<Vec<f64>> = (0..1000).map(|i| data.row(i)).collect();
    let mut group = c.benchmark_group("tree_predict/batch_1000");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("raw", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for r in &rows {
                acc += raw.predict(black_box(r));
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_predict);
criterion_main!(benches);
