//! Serial-vs-parallel wall time for the hot paths the `parallel` module
//! threads through: the SDR split scan, 10-fold cross validation, and the
//! six-model baseline suite. Every configuration computes bit-identical
//! results; only wall time may differ, and only when cores are available.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mtperf_baselines::{standard_suite, train_suite};
use mtperf_bench::synthetic_dataset;
use mtperf_eval::cross_validate_with;
use mtperf_linalg::parallel::Parallelism;
use mtperf_mtree::{best_split_with, M5Learner, M5Params};

fn configs() -> Vec<(&'static str, Parallelism)> {
    vec![
        ("serial", Parallelism::Off),
        ("2-threads", Parallelism::Fixed(2)),
        ("auto", Parallelism::Auto),
    ]
}

fn bench_parallel_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_speedup");
    group.sample_size(10);

    let data = synthetic_dataset(4000, 20);
    let idx: Vec<usize> = (0..data.n_rows()).collect();
    for (name, par) in configs() {
        group.bench_with_input(BenchmarkId::new("best_split", name), &par, |b, &par| {
            b.iter(|| best_split_with(black_box(&data), &idx, 8, par));
        });
    }

    let cv_data = synthetic_dataset(1200, 20);
    for (name, par) in configs() {
        let params = M5Params::default()
            .with_min_instances(40)
            .with_parallelism(par);
        let learner = M5Learner::new(params);
        group.bench_with_input(
            BenchmarkId::new("cross_validate_10fold", name),
            &par,
            |b, &par| {
                b.iter(|| {
                    cross_validate_with(black_box(&learner), black_box(&cv_data), 10, 7, par)
                        .unwrap()
                });
            },
        );
    }

    let suite_data = synthetic_dataset(400, 8);
    for (name, par) in configs() {
        let params = M5Params::default()
            .with_min_instances(20)
            .with_parallelism(Parallelism::Off);
        group.bench_with_input(BenchmarkId::new("baseline_suite", name), &par, |b, &par| {
            b.iter(|| train_suite(&standard_suite(&params), black_box(&suite_data), par).unwrap());
        });
    }

    group.finish();
}

criterion_group!(benches, bench_parallel_speedup);
criterion_main!(benches);
