//! End-to-end pipeline cost: simulate → section → dataset → train →
//! cross-validate, at a reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mtperf_bench::{suite_dataset, suite_samples};
use mtperf_eval::cross_validate;
use mtperf_mtree::{M5Learner, M5Params, ModelTree};

const INSTRUCTIONS: u64 = 100_000;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    group.bench_function("simulate_suite", |b| {
        b.iter(|| suite_samples(black_box(INSTRUCTIONS)));
    });

    let data = suite_dataset(INSTRUCTIONS);
    let params = M5Params::default().with_min_instances((data.n_rows() / 30).max(8));
    group.bench_function("train", |b| {
        b.iter(|| ModelTree::fit(black_box(&data), black_box(&params)).unwrap());
    });

    let learner = M5Learner::new(params);
    group.bench_function("cross_validate_10fold", |b| {
        b.iter(|| cross_validate(black_box(&learner), black_box(&data), 10, 7).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
