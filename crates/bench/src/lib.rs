//! Shared fixtures for the Criterion benches.

use mtperf_counters::SampleSet;
use mtperf_linalg::Matrix;
use mtperf_mtree::Dataset;

/// Simulates a small suite and returns the learning problem
/// (deterministic: fixed seed).
pub fn suite_dataset(instructions_per_workload: u64) -> Dataset {
    let samples = suite_samples(instructions_per_workload);
    mtperf::dataset_from_samples(&samples).expect("non-empty suite")
}

/// Simulates a small suite and returns the raw samples.
pub fn suite_samples(instructions_per_workload: u64) -> SampleSet {
    mtperf::sim::simulate_suite(instructions_per_workload, 10_000, 42)
}

/// A purely synthetic regression problem of `n` rows over `d` attributes
/// (piecewise-linear in the first attribute), for size sweeps that do not
/// need the simulator.
pub fn synthetic_dataset(n: usize, d: usize) -> Dataset {
    let names: Vec<String> = (0..d).map(|j| format!("x{j}")).collect();
    let mut data = Dataset::new(names).expect("valid names");
    let mut state = 0x9E37_79B9_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..n {
        let row: Vec<f64> = (0..d).map(|_| next() * 10.0).collect();
        let y = if row[0] <= 5.0 {
            1.0 + 0.4 * row[1 % d]
        } else {
            8.0 - 0.2 * row[2 % d]
        } + (next() - 0.5) * 0.1;
        data.push_row(&row, y).expect("finite row");
    }
    data
}

/// A synthetic prediction batch of `n` rows over `d` attributes, drawn from
/// the same distribution as [`synthetic_dataset`]'s inputs but built as a
/// bare [`Matrix`]: no target column, no per-row `Vec`s, so 10M-row scoring
/// sweeps allocate one flat buffer instead of doubling through a `Dataset`.
pub fn synthetic_matrix(n: usize, d: usize) -> Matrix {
    let mut state = 0x517C_C1B7_2722_0A95_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let data: Vec<f64> = (0..n * d).map(|_| next() * 10.0).collect();
    Matrix::from_vec(n, d, data).expect("shape matches data")
}
