//! Cross-profile integration checks: the simulated suite must span the
//! performance classes the paper's tree discovers, with the right workloads
//! in the right corners of event space.
//!
//! Run with `--nocapture` to see the per-workload summary table.

use mtperf_counters::{Event, SampleSet};
use mtperf_sim::workload::profiles;
use mtperf_sim::{MachineConfig, Simulator};

/// Instructions per workload: enough to get past cold start on the bigger
/// working sets while staying fast in CI.
const INSTRUCTIONS: u64 = 400_000;
const SECTION_LEN: u64 = 10_000;

fn simulate(name_filter: Option<&str>) -> Vec<(String, SampleSet)> {
    let sim = Simulator::new(MachineConfig::core2_duo()).with_seed(1234);
    profiles::suite(INSTRUCTIONS)
        .into_iter()
        .filter(|w| name_filter.is_none_or(|f| w.name.contains(f)))
        .map(|w| {
            let set = sim.run(&w, SECTION_LEN);
            (w.name.clone(), set)
        })
        .collect()
}

fn warm(set: &SampleSet) -> SampleSet {
    // Drop the first quarter of sections: cold-start transient.
    set.iter().skip(set.len() / 4).cloned().collect()
}

fn mean(set: &SampleSet, e: Event) -> f64 {
    let v = set.rates_of(e);
    v.iter().sum::<f64>() / v.len() as f64
}

fn mean_cpi(set: &SampleSet) -> f64 {
    let v = set.cpis();
    v.iter().sum::<f64>() / v.len() as f64
}

#[test]
fn suite_spans_the_papers_performance_classes() {
    let runs = simulate(None);
    let by_name = |needle: &str| -> SampleSet {
        warm(
            &runs
                .iter()
                .find(|(n, _)| n.contains(needle))
                .unwrap_or_else(|| panic!("missing {needle}"))
                .1,
        )
    };

    println!(
        "{:<24} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "workload", "CPI", "L2M", "L1DM", "L1IM", "Dtlb", "BrMisPr", "LCP"
    );
    for (name, set) in &runs {
        let w = warm(set);
        println!(
            "{:<24} {:>6.2} {:>8.5} {:>8.5} {:>8.5} {:>8.5} {:>8.5} {:>8.5}",
            name,
            mean_cpi(&w),
            mean(&w, Event::L2m),
            mean(&w, Event::L1dm),
            mean(&w, Event::L1im),
            mean(&w, Event::Dtlb),
            mean(&w, Event::BrMisPr),
            mean(&w, Event::Lcp),
        );
    }

    let mcf = by_name("mcf");
    let namd = by_name("namd");
    let cactus = by_name("cactus");
    let soplex = by_name("soplex");
    let gcc = by_name("gcc");
    let gobmk = by_name("gobmk");
    let xalanc = by_name("xalanc");

    // CPI ordering: mcf is the ceiling, namd the floor.
    assert!(mean_cpi(&mcf) > 2.0, "mcf CPI = {}", mean_cpi(&mcf));
    assert!(mean_cpi(&namd) < 0.8, "namd CPI = {}", mean_cpi(&namd));
    for (name, set) in &runs {
        let c = mean_cpi(&warm(set));
        assert!(
            mean_cpi(&namd) <= c + 0.2 && c <= mean_cpi(&mcf) + 1.0,
            "{name} CPI {c} outside suite envelope"
        );
        assert!((0.2..12.0).contains(&c), "{name} CPI {c} implausible");
    }

    // mcf: L2-miss dominated; it must sit among the suite's top L2M rates
    // (cactus legitimately shares the corner — that is the paper's LM18).
    assert!(mean(&mcf, Event::L2m) > 0.01);
    let mut l2_rates: Vec<f64> = runs
        .iter()
        .map(|(_, set)| mean(&warm(set), Event::L2m))
        .collect();
    l2_rates.sort_by(|a, b| b.partial_cmp(a).unwrap());
    assert!(
        mean(&mcf, Event::L2m) >= l2_rates[2],
        "mcf not in the top-3 L2M rates"
    );

    // cactus: high L1IM *and* high L2M (the paper's LM18 corner).
    assert!(mean(&cactus, Event::L1im) > 0.01, "cactus L1IM");
    assert!(mean(&cactus, Event::L2m) > 0.003, "cactus L2M");

    // soplex: DTLB misses without a significant L2M rate.
    assert!(
        mean(&soplex, Event::Dtlb) > 0.02,
        "soplex Dtlb = {}",
        mean(&soplex, Event::Dtlb)
    );
    assert!(
        mean(&soplex, Event::L2m) < 0.004,
        "soplex L2M = {}",
        mean(&soplex, Event::L2m)
    );

    // gcc: the LCP citizen.
    for (name, set) in &runs {
        if !name.contains("gcc") {
            assert!(
                mean(&warm(set), Event::Lcp) <= mean(&gcc, Event::Lcp) + 1e-9,
                "{name} out-LCPs gcc"
            );
        }
    }
    assert!(mean(&gcc, Event::Lcp) > 0.002);

    // gobmk: worst branch behavior.
    assert!(mean(&gobmk, Event::BrMisPr) > 0.015, "gobmk BrMisPr");

    // xalanc: the ITLB-pressure profile.
    assert!(
        mean(&xalanc, Event::ItlbM) > 0.001,
        "xalanc ItlbM = {}",
        mean(&xalanc, Event::ItlbM)
    );
}

#[test]
fn counters_satisfy_structural_identities() {
    let runs = simulate(Some("perlbench"));
    let (_, set) = &runs[0];
    for s in set.iter() {
        // Retired-load DTLB misses never exceed all-load DTLB misses, which
        // never exceed all DTLB misses.
        assert!(s.rate(Event::DtlbLdReM) <= s.rate(Event::DtlbLdM) + 1e-12);
        assert!(s.rate(Event::DtlbLdM) <= s.rate(Event::Dtlb) + 1e-12);
        // L2 misses (load-retired) cannot exceed L1D misses (load-retired).
        assert!(s.rate(Event::L2m) <= s.rate(Event::L1dm) + 1e-12);
        // L0 DTLB load misses bound the last-level retired-load misses.
        assert!(s.rate(Event::DtlbLdReM) <= s.rate(Event::DtlbL0LdM) + 1e-12);
        // Mix identities: classes sum to 1.
        let sum = s.rate(Event::InstLd)
            + s.rate(Event::InstSt)
            + s.rate(Event::BrMisPr)
            + s.rate(Event::BrPred)
            + s.rate(Event::InstOther);
        assert!((sum - 1.0).abs() < 1e-9, "mix sum = {sum}");
    }
}
