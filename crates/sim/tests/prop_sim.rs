//! Property-based tests for the simulator substrate.

use mtperf_counters::Event;
use mtperf_sim::workload::{AccessMix, InstrMix, PhaseSpec, WorkloadSpec};
use mtperf_sim::{Cache, CacheGeometry, MachineConfig, Simulator, Tlb, TlbGeometry};
use proptest::prelude::*;

/// Strategy: a valid phase spec drawn from broad but sane ranges.
fn phase_spec() -> impl Strategy<Value = PhaseSpec> {
    (
        0.1..0.4f64,   // load
        0.05..0.2f64,  // store
        0.05..0.25f64, // branch
        0.0..1.0f64,   // sequential share
        0.0..1.0f64,   // chase share (normalized below)
        0.3..0.95f64,  // hot fraction
        10u64..14,     // log2 ws (1 KiB .. 8 MiB)
        7u64..19,      // log2 code (128 B .. 256 KiB)
        0.0..0.6f64,   // random branches
        1.0..12.0f64,  // ilp
        0.0..0.2f64,   // misalign
        0.0..0.2f64,   // lcp
    )
        .prop_map(
            |(load, store, branch, seq, chase, hot, lws, lcode, rnd, ilp, mis, lcp)| {
                let mut p = PhaseSpec::balanced("prop");
                p.mix = InstrMix {
                    load,
                    store,
                    branch,
                };
                // Normalize seq+chase to at most 1.
                let total = (seq + chase).max(1.0);
                p.access = AccessMix {
                    sequential: seq / total,
                    chase: chase / total,
                    stride: 64,
                };
                p.hot_fraction = hot;
                p.data_ws_bytes = 1 << lws;
                p.code_bytes = (1u64 << lcode).max(64);
                p.random_branch_frac = rnd;
                p.ilp = ilp;
                p.misalign_frac = mis;
                p.lcp_frac = lcp;
                p
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid phase spec simulates into well-formed samples with sane
    /// counter identities and plausible CPI.
    #[test]
    fn simulation_is_well_formed(spec in phase_spec(), seed in 0u64..1000) {
        let sim = Simulator::new(MachineConfig::core2_duo()).with_seed(seed);
        let w = WorkloadSpec::new("prop").phase(spec, 20_000);
        let set = sim.run(&w, 5_000);
        prop_assert_eq!(set.len(), 4);
        prop_assert!(set.is_well_formed());
        for s in set.iter() {
            // CPI in a physically plausible envelope.
            prop_assert!(s.cpi > 0.2 && s.cpi < 60.0, "CPI = {}", s.cpi);
            // Mix identity: the five instruction classes partition the
            // stream.
            let mix = s.rate(Event::InstLd)
                + s.rate(Event::InstSt)
                + s.rate(Event::BrMisPr)
                + s.rate(Event::BrPred)
                + s.rate(Event::InstOther);
            prop_assert!((mix - 1.0).abs() < 1e-9, "mix = {mix}");
            // Hierarchy identities.
            prop_assert!(s.rate(Event::L2m) <= s.rate(Event::L1dm) + 1e-12);
            prop_assert!(s.rate(Event::DtlbLdReM) <= s.rate(Event::DtlbLdM) + 1e-12);
            prop_assert!(s.rate(Event::DtlbLdM) <= s.rate(Event::Dtlb) + 1e-12);
            prop_assert!(s.rate(Event::DtlbLdReM) <= s.rate(Event::DtlbL0LdM) + 1e-12);
            // Split accesses are a subset of memory accesses.
            prop_assert!(
                s.rate(Event::L1dSpLd) + s.rate(Event::L1dSpSt)
                    <= s.rate(Event::InstLd) + s.rate(Event::InstSt) + 1e-12
            );
        }
    }

    /// Simulation is a pure function of (config, workload, seed).
    #[test]
    fn simulation_is_deterministic(spec in phase_spec(), seed in 0u64..50) {
        let w = WorkloadSpec::new("det").phase(spec, 10_000);
        let a = Simulator::new(MachineConfig::core2_duo()).with_seed(seed).run(&w, 5_000);
        let b = Simulator::new(MachineConfig::core2_duo()).with_seed(seed).run(&w, 5_000);
        prop_assert_eq!(a, b);
    }

    /// Cache invariant: hits + misses == accesses, and re-access of the
    /// most recent address always hits.
    #[test]
    fn cache_invariants(addrs in prop::collection::vec(0u64..(1 << 20), 1..300)) {
        let mut c = Cache::new(CacheGeometry {
            size_bytes: 4096,
            line_bytes: 64,
            ways: 4,
        });
        for &a in &addrs {
            c.access(a);
            // MRU property: immediate re-access hits.
            prop_assert!(!c.access(a).is_miss());
        }
        prop_assert_eq!(c.stats().accesses(), addrs.len() as u64 * 2);
        prop_assert_eq!(c.stats().hits + c.stats().misses, c.stats().accesses());
    }

    /// TLB invariant: a working set within reach eventually stops missing.
    #[test]
    fn tlb_within_reach_converges(npages in 1u64..8) {
        let mut t = Tlb::new(TlbGeometry { entries: 16, ways: 4 }, 4096);
        // Touch pages round-robin; after the first sweep everything fits.
        for round in 0..4 {
            for p in 0..npages {
                let miss = t.translate(p * 4096);
                if round > 0 {
                    prop_assert!(!miss, "page {p} missed in round {round}");
                }
            }
        }
    }

    /// Warmup never hurts: with warmup the first section's CPI is at most
    /// the cold first section's CPI (plus slack for noise).
    #[test]
    fn warmup_reduces_cold_start(spec in phase_spec()) {
        let w = WorkloadSpec::new("warm").phase(spec, 10_000);
        let warm = Simulator::new(MachineConfig::core2_duo())
            .with_seed(3)
            .run(&w, 5_000);
        let cold = Simulator::new(MachineConfig::core2_duo())
            .with_seed(3)
            .with_warmup(false)
            .run(&w, 5_000);
        let wc = warm.cpis()[0];
        let cc = cold.cpis()[0];
        prop_assert!(wc <= cc * 1.1 + 0.2, "warm {wc} vs cold {cc}");
    }
}
