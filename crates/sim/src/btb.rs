//! Branch target buffer.
//!
//! Direction prediction alone is not enough to keep fetch on track: a taken
//! branch whose *target* is unknown stalls the front end for a couple of
//! cycles while the target resolves (a BACLEAR-style redirect, much cheaper
//! than a full mispredict flush). The BTB caches targets by branch PC;
//! indirect-ish branches that keep changing targets keep missing.

use crate::config::TlbGeometry;

/// BTB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// Taken branches whose target was correctly cached.
    pub hits: u64,
    /// Taken branches that missed or had a stale target.
    pub misses: u64,
}

impl BtbStats {
    /// Total taken-branch lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio; 0.0 before any lookup.
    pub fn miss_ratio(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }
}

/// A set-associative branch target buffer keyed by branch PC, storing the
/// last observed target.
///
/// Reuses [`TlbGeometry`] for its shape (entries/ways) since the structures
/// are isomorphic.
///
/// # Example
///
/// ```
/// use mtperf_sim::{Btb, TlbGeometry};
///
/// let mut btb = Btb::new(TlbGeometry { entries: 512, ways: 4 });
/// assert!(btb.lookup_update(0x100, 0x4000)); // cold miss
/// assert!(!btb.lookup_update(0x100, 0x4000)); // cached
/// assert!(btb.lookup_update(0x100, 0x8000)); // target changed -> stale
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    sets: u32,
    ways: u32,
    /// `(branch pc, target)` per slot; pc `u64::MAX` marks invalid.
    slots: Vec<(u64, u64)>,
    stamps: Vec<u64>,
    clock: u64,
    stats: BtbStats,
}

const INVALID: u64 = u64::MAX;

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`TlbGeometry::sets`]).
    pub fn new(geometry: TlbGeometry) -> Self {
        let sets = geometry.sets();
        let n = (sets * geometry.ways) as usize;
        Btb {
            sets,
            ways: geometry.ways,
            slots: vec![(INVALID, 0); n],
            stamps: vec![0; n],
            clock: 0,
            stats: BtbStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BtbStats {
        self.stats
    }

    /// Looks up the cached target for a **taken** branch at `pc` and
    /// installs/updates the actual `target`. Returns `true` on a **miss**
    /// (absent or stale target — the front end redirects).
    pub fn lookup_update(&mut self, pc: u64, target: u64) -> bool {
        let set = ((pc >> 2) % self.sets as u64) as usize;
        let ways = self.ways as usize;
        let base = set * ways;
        self.clock += 1;
        if let Some(way) = self.slots[base..base + ways]
            .iter()
            .position(|&(p, _)| p == pc)
        {
            let hit = self.slots[base + way].1 == target;
            self.slots[base + way] = (pc, target);
            self.stamps[base + way] = self.clock;
            if hit {
                self.stats.hits += 1;
            } else {
                self.stats.misses += 1;
            }
            return !hit;
        }
        // Absent: install over an invalid or LRU way.
        let victim = self.slots[base..base + ways]
            .iter()
            .position(|&(p, _)| p == INVALID)
            .unwrap_or_else(|| {
                let mut lru = 0;
                let mut lru_stamp = u64::MAX;
                for (w, &s) in self.stamps[base..base + ways].iter().enumerate() {
                    if s < lru_stamp {
                        lru_stamp = s;
                        lru = w;
                    }
                }
                lru
            });
        self.slots[base + victim] = (pc, target);
        self.stamps[base + victim] = self.clock;
        self.stats.misses += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn btb() -> Btb {
        Btb::new(TlbGeometry {
            entries: 8,
            ways: 2,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut b = btb();
        assert!(b.lookup_update(0x40, 0x1000));
        assert!(!b.lookup_update(0x40, 0x1000));
        assert_eq!(b.stats().hits, 1);
        assert_eq!(b.stats().misses, 1);
    }

    #[test]
    fn stale_target_misses() {
        let mut b = btb();
        b.lookup_update(0x40, 0x1000);
        assert!(b.lookup_update(0x40, 0x2000), "changed target must miss");
        // The new target is now cached.
        assert!(!b.lookup_update(0x40, 0x2000));
    }

    #[test]
    fn capacity_eviction() {
        let mut b = btb(); // 4 sets x 2 ways
                           // Three branches in the same set (pc >> 2 congruent mod 4).
        let pcs = [0x10u64, 0x50, 0x90];
        for &pc in &pcs {
            b.lookup_update(pc, 0x1000);
        }
        // First pc evicted by LRU; re-lookup misses.
        assert!(b.lookup_update(pcs[0], 0x1000));
    }

    #[test]
    fn stable_targets_converge_to_hits() {
        let mut b = Btb::new(TlbGeometry {
            entries: 512,
            ways: 4,
        });
        for round in 0..4 {
            for i in 0..64u64 {
                let miss = b.lookup_update(i * 4, 0x4000 + i * 64);
                if round > 0 {
                    assert!(!miss, "pc {i} missed in round {round}");
                }
            }
        }
        assert!(b.stats().miss_ratio() < 0.3);
    }

    #[test]
    fn empty_stats() {
        assert_eq!(BtbStats::default().miss_ratio(), 0.0);
        assert_eq!(BtbStats::default().lookups(), 0);
    }
}
