//! Dynamic-instruction representation produced by the workload generator and
//! consumed by the simulator core.

/// The class of a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrKind {
    /// A load from `addr` of `size` bytes.
    Load {
        /// Virtual byte address accessed.
        addr: u64,
        /// Access size in bytes.
        size: u8,
    },
    /// A store to `addr` of `size` bytes.
    Store {
        /// Virtual byte address accessed.
        addr: u64,
        /// Access size in bytes.
        size: u8,
    },
    /// A conditional branch with its resolved direction and (for taken
    /// branches) its target.
    Branch {
        /// Actual direction of the branch.
        taken: bool,
        /// Branch target when taken.
        target: u64,
    },
    /// Any other (ALU-class) instruction; `lcp` marks instructions whose
    /// encoding carries a length-changing prefix and therefore stalls the
    /// pre-decoder.
    Other {
        /// Length-changing-prefix flag.
        lcp: bool,
    },
}

/// One dynamic instruction.
///
/// `dep_distance` is the distance (in instructions) to the consumer of this
/// instruction's result — the generator's proxy for the instruction-level
/// parallelism around it. It shapes how much latency the out-of-order core
/// can hide but is *not* observable through any Table I counter, exactly
/// like real ILP: it contributes the irreducible error term of the paper's
/// Equation 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Instruction class and operands.
    pub kind: InstrKind,
    /// Distance to the dependent consumer, `>= 1`.
    pub dep_distance: u32,
}

impl Instr {
    /// Convenience constructor for an ALU instruction without LCP.
    pub fn other(dep_distance: u32) -> Self {
        Instr {
            kind: InstrKind::Other { lcp: false },
            dep_distance,
        }
    }

    /// Returns the memory access `(addr, size, is_store)` if this is a load
    /// or store.
    pub fn mem_access(&self) -> Option<(u64, u8, bool)> {
        match self.kind {
            InstrKind::Load { addr, size } => Some((addr, size, false)),
            InstrKind::Store { addr, size } => Some((addr, size, true)),
            _ => None,
        }
    }

    /// `true` for loads.
    pub fn is_load(&self) -> bool {
        matches!(self.kind, InstrKind::Load { .. })
    }

    /// `true` for stores.
    pub fn is_store(&self) -> bool {
        matches!(self.kind, InstrKind::Store { .. })
    }

    /// `true` for branches.
    pub fn is_branch(&self) -> bool {
        matches!(self.kind, InstrKind::Branch { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_access_extraction() {
        let ld = Instr {
            kind: InstrKind::Load {
                addr: 0x10,
                size: 8,
            },
            dep_distance: 1,
        };
        assert_eq!(ld.mem_access(), Some((0x10, 8, false)));
        assert!(ld.is_load() && !ld.is_store() && !ld.is_branch());

        let st = Instr {
            kind: InstrKind::Store {
                addr: 0x20,
                size: 4,
            },
            dep_distance: 2,
        };
        assert_eq!(st.mem_access(), Some((0x20, 4, true)));
        assert!(st.is_store());

        let br = Instr {
            kind: InstrKind::Branch {
                taken: true,
                target: 0x40,
            },
            dep_distance: 1,
        };
        assert_eq!(br.mem_access(), None);
        assert!(br.is_branch());

        assert_eq!(Instr::other(3).mem_access(), None);
    }
}
