//! Set-associative cache model with true-LRU replacement.

use crate::config::CacheGeometry;

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line was present.
    Hit,
    /// The line was absent and has been installed.
    Miss,
}

impl Lookup {
    /// `true` for [`Lookup::Miss`].
    pub fn is_miss(self) -> bool {
        matches!(self, Lookup::Miss)
    }
}

/// Hit/miss counters for a cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio; 0.0 before any access.
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement over 64-bit byte
/// addresses.
///
/// The model tracks tags only (no data); an access installs the line on a
/// miss. This is exactly what is needed to produce the miss *counts* the
/// PMU events report.
///
/// # Example
///
/// ```
/// use mtperf_sim::{Cache, CacheGeometry};
///
/// let mut c = Cache::new(CacheGeometry { size_bytes: 1024, line_bytes: 64, ways: 2 });
/// assert!(c.access(0x0).is_miss());
/// assert!(!c.access(0x4).is_miss()); // same 64-byte line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    sets: u64,
    line_shift: u32,
    /// `tags[set * ways + way]`; `u64::MAX` marks an invalid way.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`; larger = more recent.
    stamps: Vec<u64>,
    clock: u64,
    stats: CacheStats,
}

const INVALID: u64 = u64::MAX;

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`CacheGeometry::sets`]).
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.sets();
        let slots = (sets * geometry.ways as u64) as usize;
        Cache {
            geometry,
            sets,
            line_shift: geometry.line_bytes.trailing_zeros(),
            tags: vec![INVALID; slots],
            stamps: vec![0; slots],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Line-granular tag of an address.
    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Accesses `addr`; installs the line on a miss and updates LRU state.
    pub fn access(&mut self, addr: u64) -> Lookup {
        let line = self.line_of(addr);
        let set = line % self.sets;
        let ways = self.geometry.ways as usize;
        let base = (set as usize) * ways;
        self.clock += 1;

        let slots = &mut self.tags[base..base + ways];
        if let Some(way) = slots.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.clock;
            self.stats.hits += 1;
            return Lookup::Hit;
        }
        // Miss: fill an invalid way or evict the LRU way.
        let victim = match slots.iter().position(|&t| t == INVALID) {
            Some(w) => w,
            None => {
                let mut lru_way = 0;
                let mut lru_stamp = u64::MAX;
                for (w, &s) in self.stamps[base..base + ways].iter().enumerate() {
                    if s < lru_stamp {
                        lru_stamp = s;
                        lru_way = w;
                    }
                }
                lru_way
            }
        };
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        self.stats.misses += 1;
        Lookup::Miss
    }

    /// Checks for presence without updating LRU state or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set = line % self.sets;
        let ways = self.geometry.ways as usize;
        let base = (set as usize) * ways;
        self.tags[base..base + ways].contains(&line)
    }

    /// Installs a line without counting it as a demand access (prefetch
    /// fill). Counts neither hit nor miss; a prefetch of a resident line
    /// refreshes its LRU stamp.
    pub fn install(&mut self, addr: u64) {
        let line = self.line_of(addr);
        let set = line % self.sets;
        let ways = self.geometry.ways as usize;
        let base = (set as usize) * ways;
        self.clock += 1;
        let slots = &mut self.tags[base..base + ways];
        if let Some(way) = slots.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.clock;
            return;
        }
        let victim = match slots.iter().position(|&t| t == INVALID) {
            Some(w) => w,
            None => {
                let mut lru_way = 0;
                let mut lru_stamp = u64::MAX;
                for (w, &s) in self.stamps[base..base + ways].iter().enumerate() {
                    if s < lru_stamp {
                        lru_stamp = s;
                        lru_way = w;
                    }
                }
                lru_way
            }
        };
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
    }

    /// Invalidates every line and clears statistics.
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
        self.stamps.fill(0);
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets, 2 ways, 64-byte lines.
        Cache::new(CacheGeometry {
            size_bytes: 256,
            line_bytes: 64,
            ways: 2,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert_eq!(c.access(0x100), Lookup::Miss);
        assert_eq!(c.access(0x100), Lookup::Hit);
        assert_eq!(c.access(0x13f), Lookup::Hit); // same line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn conflict_eviction_respects_lru() {
        let mut c = small();
        // Three lines mapping to set 0 (line % 2 == 0): lines 0, 2, 4.
        c.access(0);
        c.access(2 * 64);
        // Touch line 0 so line 2 is LRU.
        c.access(0);
        // Install line 4: must evict line 2.
        c.access(4 * 64);
        assert!(c.probe(0));
        assert!(!c.probe(2 * 64));
        assert!(c.probe(4 * 64));
    }

    #[test]
    fn working_set_within_capacity_hits_steady_state() {
        let mut c = Cache::new(CacheGeometry {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 4,
        });
        let lines = 1024 / 64;
        // First pass: all cold misses.
        for i in 0..lines {
            assert!(c.access(i * 64).is_miss());
        }
        // Steady state: everything hits.
        for _ in 0..3 {
            for i in 0..lines {
                assert_eq!(c.access(i * 64), Lookup::Hit);
            }
        }
    }

    #[test]
    fn working_set_exceeding_capacity_thrashes() {
        let mut c = small(); // 4 lines capacity
        let lines = 16u64;
        // Sequential sweep over 16 lines repeatedly: with LRU every access
        // misses once the set cycles.
        for _ in 0..4 {
            for i in 0..lines {
                c.access(i * 64);
            }
        }
        assert!(c.stats().miss_ratio() > 0.9);
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = small();
        c.access(0x40);
        let before = c.stats();
        assert!(c.probe(0x40));
        assert!(!c.probe(0x4000));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn install_counts_nothing_but_populates() {
        let mut c = small();
        c.install(0x40);
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.access(0x40), Lookup::Hit);
    }

    #[test]
    fn flush_resets() {
        let mut c = small();
        c.access(0x40);
        c.flush();
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(0x40).is_miss());
    }

    #[test]
    fn stats_identity_hits_plus_misses() {
        let mut c = small();
        for i in 0..100u64 {
            c.access((i * 37) % 2048 * 8);
        }
        assert_eq!(c.stats().accesses(), 100);
        assert_eq!(c.stats().hits + c.stats().misses, 100);
    }

    #[test]
    fn miss_ratio_empty_is_zero() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
