//! Machine configuration: geometry and penalty parameters.
//!
//! The default, [`MachineConfig::core2_duo`], models the platform of the
//! paper's measurements: a 2.4 GHz Intel Core 2 Duo with 32 KB split L1
//! caches, a 4 MB shared L2, a two-level DTLB whose last level maps roughly a
//! quarter of the L2 (the capacity relationship the paper calls out when
//! explaining why DTLB misses matter even when data hits the L2), and a
//! ~15-cycle branch-misprediction pipeline flush.

use serde::{Deserialize, Serialize};

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-two
    /// line size, or capacity not divisible by `line * ways`).
    pub fn sets(&self) -> u64 {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            self.size_bytes > 0 && self.ways > 0,
            "degenerate cache geometry"
        );
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.ways as u64) && lines > 0,
            "capacity must divide into line*ways"
        );
        lines / self.ways as u64
    }
}

/// Geometry of a TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbGeometry {
    /// Total number of entries.
    pub entries: u32,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl TlbGeometry {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible by `ways` or either is zero.
    pub fn sets(&self) -> u32 {
        assert!(self.entries > 0 && self.ways > 0, "degenerate TLB geometry");
        assert!(
            self.entries.is_multiple_of(self.ways),
            "entries must divide into ways"
        );
        self.entries / self.ways
    }
}

/// Branch predictor configuration (gshare).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Global-history length in bits; the pattern table has `2^history_bits`
    /// two-bit counters.
    pub history_bits: u32,
}

/// Which hardware prefetcher the L2 runs.
///
/// Prefetching is one of the features the paper names as complicating the
/// interpretation of raw counters; making it a knob lets the ablations
/// measure exactly how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefetcherKind {
    /// No prefetching.
    Off,
    /// Next-line streams only (`+1` line deltas).
    NextLine,
    /// Constant-stride streams of any line delta (catches strided stencil
    /// sweeps that defeat a next-line scheme).
    Stride,
}

/// Full machine model: cache/TLB/predictor geometry plus the latency and
/// penalty parameters consumed by the cycle-accounting model.
///
/// All latencies are in core cycles.
///
/// # Example
///
/// ```
/// let m = mtperf_sim::MachineConfig::core2_duo();
/// assert_eq!(m.l2.size_bytes, 4 * 1024 * 1024);
/// // Last-level DTLB reach is about a quarter of the L2 capacity.
/// let reach = m.dtlb1.entries as u64 * m.page_bytes;
/// assert_eq!(reach * 4, m.l2.size_bytes);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheGeometry,
    /// L1 data cache geometry.
    pub l1d: CacheGeometry,
    /// Unified L2 cache geometry.
    pub l2: CacheGeometry,
    /// First-level (L0) micro-DTLB geometry.
    pub dtlb0: TlbGeometry,
    /// Last-level DTLB geometry.
    pub dtlb1: TlbGeometry,
    /// ITLB geometry.
    pub itlb: TlbGeometry,
    /// Branch-target-buffer geometry.
    pub btb: TlbGeometry,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Branch predictor configuration.
    pub predictor: PredictorConfig,
    /// L2 prefetcher scheme.
    pub prefetcher: PrefetcherKind,

    /// Sustainable issue width (instructions per cycle) of the core.
    pub issue_width: f64,
    /// Extra per-instruction dependency-stall cost coefficient; the cycle
    /// model charges `dep_stall_coeff / dep_distance` per instruction.
    pub dep_stall_coeff: f64,
    /// L1-miss / L2-hit load-to-use latency.
    pub lat_l2: f64,
    /// L2-miss memory latency.
    pub lat_mem: f64,
    /// Maximum memory-level parallelism the core can expose.
    pub max_mlp: f64,
    /// Penalty of an L0 DTLB miss that hits the big DTLB.
    pub dtlb0_penalty: f64,
    /// Page-walk cost of a last-level DTLB miss.
    pub page_walk: f64,
    /// Page-walk cost of an ITLB miss.
    pub itlb_walk: f64,
    /// Branch-misprediction flush penalty.
    pub mispredict_penalty: f64,
    /// Front-end redirect cost of a correctly-predicted taken branch whose
    /// target missed the BTB (BACLEAR-style).
    pub baclear_penalty: f64,
    /// Length-changing-prefix pre-decode stall.
    pub lcp_stall: f64,
    /// Load-block penalty (STA/STD/overlapping-store replay).
    pub ld_block_penalty: f64,
    /// Cache-line-split access penalty.
    pub split_penalty: f64,
    /// Misaligned (but non-split) access penalty.
    pub misalign_penalty: f64,
}

impl MachineConfig {
    /// The 2.4 GHz Core 2 Duo-like configuration used for all paper
    /// reproductions.
    pub fn core2_duo() -> Self {
        MachineConfig {
            l1i: CacheGeometry {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 8,
            },
            l1d: CacheGeometry {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 8,
            },
            l2: CacheGeometry {
                size_bytes: 4 * 1024 * 1024,
                line_bytes: 64,
                ways: 16,
            },
            dtlb0: TlbGeometry {
                entries: 16,
                ways: 4,
            },
            dtlb1: TlbGeometry {
                entries: 256,
                ways: 4,
            },
            itlb: TlbGeometry {
                entries: 128,
                ways: 4,
            },
            btb: TlbGeometry {
                entries: 2048,
                ways: 4,
            },
            page_bytes: 4096,
            predictor: PredictorConfig { history_bits: 12 },
            prefetcher: PrefetcherKind::NextLine,

            issue_width: 4.0,
            dep_stall_coeff: 0.35,
            lat_l2: 14.0,
            lat_mem: 165.0,
            max_mlp: 4.0,
            dtlb0_penalty: 2.0,
            page_walk: 12.0,
            itlb_walk: 20.0,
            mispredict_penalty: 15.0,
            baclear_penalty: 3.0,
            lcp_stall: 6.0,
            ld_block_penalty: 5.0,
            split_penalty: 4.0,
            misalign_penalty: 2.0,
        }
    }

    /// A Pentium 4 (NetBurst)-flavored configuration: the paper's §V.A.1
    /// contrasts Core 2's moderate branch sensitivity with NetBurst, "where
    /// the much longer pipeline translated into a greater pipeline flush and
    /// resteering cost". Narrower issue, twice the flush cost, smaller L1D,
    /// and a 1 MiB L2 (a Prescott-class part).
    pub fn netburst_like() -> Self {
        let mut m = Self::core2_duo();
        m.l1d = CacheGeometry {
            size_bytes: 16 * 1024,
            line_bytes: 64,
            ways: 8,
        };
        m.l1i = CacheGeometry {
            // Trace cache stand-in: small effective instruction storage.
            size_bytes: 16 * 1024,
            line_bytes: 64,
            ways: 8,
        };
        m.l2 = CacheGeometry {
            size_bytes: 1024 * 1024,
            line_bytes: 64,
            ways: 8,
        };
        m.issue_width = 3.0;
        m.mispredict_penalty = 30.0;
        m.baclear_penalty = 6.0;
        m.lat_l2 = 18.0;
        m
    }

    /// A scaled-down machine for fast unit tests: tiny caches and TLBs so
    /// miss behavior can be provoked with small footprints.
    pub fn tiny() -> Self {
        let mut m = Self::core2_duo();
        m.l1i = CacheGeometry {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
        };
        m.l1d = CacheGeometry {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
        };
        m.l2 = CacheGeometry {
            size_bytes: 8 * 1024,
            line_bytes: 64,
            ways: 4,
        };
        m.dtlb0 = TlbGeometry {
            entries: 4,
            ways: 2,
        };
        m.dtlb1 = TlbGeometry {
            entries: 8,
            ways: 2,
        };
        m.itlb = TlbGeometry {
            entries: 4,
            ways: 2,
        };
        m.btb = TlbGeometry {
            entries: 16,
            ways: 2,
        };
        m
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::core2_duo()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core2_geometry_is_consistent() {
        let m = MachineConfig::core2_duo();
        assert_eq!(m.l1d.sets(), 64); // 32K / 64B / 8 ways
        assert_eq!(m.l1i.sets(), 64);
        assert_eq!(m.l2.sets(), 4096); // 4M / 64B / 16 ways
        assert_eq!(m.dtlb0.sets(), 4);
        assert_eq!(m.dtlb1.sets(), 64);
        assert_eq!(m.itlb.sets(), 32);
    }

    #[test]
    fn dtlb_reach_is_quarter_of_l2() {
        // The paper: "the DTLB contains only enough entries to map about 1/4
        // of the full L2 cache."
        let m = MachineConfig::core2_duo();
        assert_eq!(m.dtlb1.entries as u64 * m.page_bytes * 4, m.l2.size_bytes);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_line_size() {
        CacheGeometry {
            size_bytes: 1024,
            line_bytes: 48,
            ways: 2,
        }
        .sets();
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn rejects_bad_tlb_ways() {
        TlbGeometry {
            entries: 10,
            ways: 4,
        }
        .sets();
    }

    #[test]
    fn default_is_core2() {
        assert_eq!(MachineConfig::default(), MachineConfig::core2_duo());
    }

    #[test]
    fn netburst_is_flushier() {
        let nb = MachineConfig::netburst_like();
        let c2 = MachineConfig::core2_duo();
        assert!(nb.mispredict_penalty > c2.mispredict_penalty);
        assert!(nb.l2.size_bytes < c2.l2.size_bytes);
        assert!(nb.issue_width < c2.issue_width);
    }

    #[test]
    fn tiny_is_smaller() {
        let t = MachineConfig::tiny();
        let c = MachineConfig::core2_duo();
        assert!(t.l1d.size_bytes < c.l1d.size_bytes);
        assert!(t.dtlb1.entries < c.dtlb1.entries);
    }

    #[test]
    fn serde_roundtrip() {
        let m = MachineConfig::core2_duo();
        let json = serde_json::to_string(&m).unwrap();
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
