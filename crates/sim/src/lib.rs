//! Execution-driven micro-architecture simulator for `mtperf`.
//!
//! The ISPASS 2007 paper trains its model tree on hardware-counter data
//! collected on a real Core 2 Duo running SPEC CPU2006. This crate is the
//! substitute for that measurement substrate: a single-core machine model
//! (split L1s, unified L2, two-level DTLB, ITLB, gshare branch predictor,
//! next-line L2 prefetcher, store buffer) driven by synthetic instruction
//! streams whose statistical character mimics SPEC members, priced by a
//! cycle-accounting model that reproduces the event interactions the paper
//! emphasizes (memory-level parallelism, out-of-order latency hiding,
//! stall shadowing).
//!
//! # Quick start
//!
//! ```
//! use mtperf_sim::{MachineConfig, Simulator};
//! use mtperf_sim::workload::profiles;
//!
//! let sim = Simulator::new(MachineConfig::core2_duo()).with_seed(1);
//! let workload = profiles::namd_like(150_000);
//! let sections = sim.run(&workload, 50_000);
//! assert_eq!(sections.len(), 3);
//! // namd-like is compute-dense: warm-section CPI is well under 1
//! // (the first section carries the cold-start misses).
//! assert!(sections.cpis().last().unwrap() < &1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod btb;
mod cache;
mod config;
mod cycle;
mod instr;
mod loadblock;
mod memory;
mod sim;
mod tlb;
pub mod workload;

pub use branch::{GsharePredictor, PredictorStats};
pub use btb::{Btb, BtbStats};
pub use cache::{Cache, CacheStats, Lookup};
pub use config::{CacheGeometry, MachineConfig, PredictorConfig, PrefetcherKind, TlbGeometry};
pub use cycle::{CycleModel, InstrEvents};
pub use instr::{Instr, InstrKind};
pub use loadblock::{LoadBlock, StoreBuffer};
pub use memory::{DataOutcome, FetchOutcome, MemoryHierarchy};
pub use sim::{Simulator, DEFAULT_SECTION_LEN};
pub use tlb::{Tlb, TlbStats};

/// Simulates the full SPEC-like suite and returns the merged dataset.
///
/// This is the one-call path from "nothing" to "the dataset the paper's
/// experiments run on": every profile in
/// [`workload::profiles::suite`] is executed for `instructions_per_workload`
/// instructions and sectioned every `section_len` instructions.
///
/// # Example
///
/// ```
/// let set = mtperf_sim::simulate_suite(60_000, 10_000, 42);
/// assert_eq!(set.workloads().len(), 15);
/// assert!(set.is_well_formed());
/// ```
pub fn simulate_suite(
    instructions_per_workload: u64,
    section_len: u64,
    seed: u64,
) -> mtperf_counters::SampleSet {
    let sim = Simulator::new(MachineConfig::core2_duo()).with_seed(seed);
    let mut all = mtperf_counters::SampleSet::new();
    for w in workload::profiles::suite(instructions_per_workload) {
        all.extend(sim.run(&w, section_len));
    }
    all
}
