//! Cycle-accounting model.
//!
//! This is where the paper's central observation — that "the amount of
//! penalty successfully removed depends on the available instruction level
//! parallelism and the instantaneous interactions between micro-architectural
//! events" — is made concrete. The model prices each retired instruction's
//! event outcomes in cycles, with three interaction mechanisms:
//!
//! 1. **Memory-level parallelism**: an L2 miss on a dependent pointer chase
//!    (`dep_distance == 1`) pays the full memory latency, while independent
//!    streaming misses overlap up to `max_mlp` deep.
//! 2. **Out-of-order latency hiding**: shorter penalties (L1-miss/L2-hit,
//!    page walks) are partially hidden in proportion to the surrounding ILP.
//! 3. **Stall shadowing**: a branch flush or front-end stall that occurs
//!    while the machine is already memory-bound costs less, tracked by an
//!    EWMA of recent memory-stall intensity.
//!
//! The result is a piecewise, interaction-heavy mapping from event rates to
//! CPI — the kind of target a model tree can carve into classes while a
//! single global linear model cannot.

use crate::config::MachineConfig;
use crate::loadblock::LoadBlock;
use crate::memory::{DataOutcome, FetchOutcome};

/// The priced inputs of one retired instruction.
#[derive(Debug, Clone, Copy, Default)]
pub struct InstrEvents {
    /// Front-end outcome of fetching the instruction.
    pub fetch: FetchOutcome,
    /// Data-side outcome (loads and stores).
    pub data: Option<DataOutcome>,
    /// Dependency distance to the consumer (ILP proxy), `>= 1`.
    pub dep_distance: u32,
    /// The instruction is a mispredicted branch.
    pub mispredict: bool,
    /// The instruction is a correctly-predicted taken branch whose target
    /// missed the BTB (cheap front-end redirect).
    pub btb_redirect: bool,
    /// The instruction is a load that hit a store-buffer block.
    pub load_block: Option<LoadBlock>,
    /// The instruction carries a length-changing prefix.
    pub lcp: bool,
    /// The data access is a store (misses are mostly absorbed by the write
    /// buffers and charged at a fraction of the load penalty).
    pub is_store: bool,
}

/// Stateful cycle-accounting model (owns the memory-boundedness EWMA).
#[derive(Debug, Clone)]
pub struct CycleModel {
    cfg: MachineConfig,
    /// Recent memory-stall intensity in `[0, 1]`.
    membound: f64,
}

/// EWMA smoothing factor for the memory-boundedness tracker.
const MEMBOUND_DECAY: f64 = 0.98;

impl CycleModel {
    /// Creates a model for `config`.
    pub fn new(config: &MachineConfig) -> Self {
        CycleModel {
            cfg: config.clone(),
            membound: 0.0,
        }
    }

    /// Current memory-boundedness estimate in `[0, 1]` (diagnostics).
    pub fn memboundedness(&self) -> f64 {
        self.membound
    }

    /// Prices one retired instruction in cycles.
    pub fn cost(&mut self, ev: &InstrEvents) -> f64 {
        let cfg = &self.cfg;
        let dep = f64::from(ev.dep_distance.max(1));

        // Issue cost plus dependency stalls the scheduler cannot fill.
        let base = 1.0 / cfg.issue_width + cfg.dep_stall_coeff / dep;

        // Front-end: an L1I miss serializes fetch; when the line also misses
        // the L2 the whole pipeline drains for a memory access that nothing
        // can overlap (the LM18 regime of the paper: high L1IM and high L2
        // pressure saturate CPI).
        let mut frontend = 0.0;
        if ev.fetch.l1i_miss {
            frontend += if ev.fetch.l2_miss {
                cfg.lat_mem
            } else {
                cfg.lat_l2 * 0.8
            };
        }
        if ev.fetch.itlb_miss {
            frontend += cfg.itlb_walk * 0.9;
        }
        if ev.lcp {
            frontend += cfg.lcp_stall;
        }
        if ev.btb_redirect {
            frontend += cfg.baclear_penalty;
        }

        // Data side.
        let mut memory = 0.0;
        if let Some(d) = ev.data {
            let mem_lat = if d.l2_miss {
                cfg.lat_mem
            } else if d.l1d_miss {
                cfg.lat_l2
            } else {
                0.0
            };
            let tlb_lat = if d.dtlb_miss {
                cfg.page_walk
            } else if d.dtlb0_miss {
                cfg.dtlb0_penalty
            } else {
                0.0
            };
            // The page walk mostly overlaps the line fetch; the longer of
            // the two dominates with a fraction of the shorter exposed.
            let raw = mem_lat.max(tlb_lat) + 0.25 * mem_lat.min(tlb_lat);
            memory = if d.l2_miss {
                // Independent misses overlap up to max_mlp deep; a dependent
                // chain (dep = 1) exposes the full latency.
                raw / dep.min(cfg.max_mlp).max(1.0)
            } else {
                // Short latencies hide under out-of-order execution in
                // proportion to the surrounding ILP.
                raw * (1.0 - (0.12 * dep).min(0.85))
            };
            if ev.is_store {
                // Store misses drain through the write buffers; only a small
                // fraction of the latency ever stalls retirement.
                memory *= 0.15;
            }
            if d.split {
                memory += cfg.split_penalty;
            } else if d.misaligned {
                memory += cfg.misalign_penalty;
            }
        }
        if let Some(block) = ev.load_block {
            memory += match block {
                LoadBlock::StoreAddress => cfg.ld_block_penalty,
                LoadBlock::StoreData => cfg.ld_block_penalty * 0.8,
                LoadBlock::OverlapStore => cfg.ld_block_penalty * 1.2,
            };
        }

        // A flush costs less when the machine was already stalled on memory:
        // the recovery hides in the miss shadow.
        let mut branch = 0.0;
        if ev.mispredict {
            branch = cfg.mispredict_penalty * (1.0 - 0.5 * self.membound);
        }

        let total = base + frontend + memory + branch;

        // Update the memory-boundedness tracker: an instruction whose cost
        // is dominated by memory pushes it toward 1.
        let mem_frac = if total > 0.0 { memory / total } else { 0.0 };
        self.membound = MEMBOUND_DECAY * self.membound + (1.0 - MEMBOUND_DECAY) * mem_frac;

        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{DataOutcome, FetchOutcome};

    fn model() -> CycleModel {
        CycleModel::new(&MachineConfig::core2_duo())
    }

    fn plain(dep: u32) -> InstrEvents {
        InstrEvents {
            dep_distance: dep,
            ..Default::default()
        }
    }

    #[test]
    fn base_cost_decreases_with_ilp() {
        let mut m = model();
        let serial = m.cost(&plain(1));
        let parallel = m.cost(&plain(12));
        assert!(serial > parallel);
        assert!(parallel >= 1.0 / 4.0);
    }

    #[test]
    fn l2_miss_on_chain_pays_full_latency() {
        let mut m = model();
        let mut ev = plain(1);
        ev.data = Some(DataOutcome {
            l1d_miss: true,
            l2_miss: true,
            ..Default::default()
        });
        let chain_cost = m.cost(&ev);
        assert!(chain_cost > 160.0, "cost = {chain_cost}");

        let mut m = model();
        ev.dep_distance = 8; // mlp capped at 4
        let streaming_cost = m.cost(&ev);
        assert!(
            streaming_cost < chain_cost / 3.0,
            "chain {chain_cost} vs streaming {streaming_cost}"
        );
    }

    #[test]
    fn l1_miss_mostly_hidden_under_high_ilp() {
        let mut m = model();
        let mut ev = plain(1);
        ev.data = Some(DataOutcome {
            l1d_miss: true,
            ..Default::default()
        });
        let low_ilp = m.cost(&ev);
        let mut m = model();
        ev.dep_distance = 10;
        let high_ilp = m.cost(&ev);
        assert!(high_ilp < low_ilp / 2.0, "{high_ilp} vs {low_ilp}");
    }

    #[test]
    fn page_walk_overlaps_memory_fetch() {
        let mut m = model();
        let mut ev = plain(1);
        ev.data = Some(DataOutcome {
            l1d_miss: true,
            l2_miss: true,
            dtlb0_miss: true,
            dtlb_miss: true,
            ..Default::default()
        });
        let both = m.cost(&ev);

        let mut m = model();
        ev.data = Some(DataOutcome {
            l1d_miss: true,
            l2_miss: true,
            ..Default::default()
        });
        let miss_only = m.cost(&ev);
        // A combined miss must cost more than the cache miss alone, but far
        // less than the naive sum (165 + 30).
        assert!(both > miss_only);
        assert!(both < miss_only + 30.0);
    }

    #[test]
    fn instruction_miss_to_memory_saturates() {
        let mut m = model();
        let mut ev = plain(8);
        ev.fetch = FetchOutcome {
            l1i_miss: true,
            l2_miss: true,
            itlb_miss: false,
        };
        // High ILP cannot hide a front-end drain.
        let c = m.cost(&ev);
        assert!(c > 160.0, "cost = {c}");
    }

    #[test]
    fn mispredict_cheaper_when_memory_bound() {
        // Warm the membound tracker with a run of L2 misses.
        let mut m = model();
        let mut miss = plain(1);
        miss.data = Some(DataOutcome {
            l1d_miss: true,
            l2_miss: true,
            ..Default::default()
        });
        for _ in 0..2000 {
            m.cost(&miss);
        }
        assert!(m.memboundedness() > 0.5);
        let mut br = plain(4);
        br.mispredict = true;
        let shadowed = m.cost(&br);

        let mut fresh = model();
        let full = fresh.cost(&br);
        assert!(shadowed < full, "{shadowed} vs {full}");
    }

    #[test]
    fn lcp_and_block_penalties_additive() {
        let mut m = model();
        let base = m.cost(&plain(4));
        let mut m = model();
        let mut ev = plain(4);
        ev.lcp = true;
        let lcp = m.cost(&ev);
        assert!((lcp - base - 6.0).abs() < 1e-9);

        let mut m = model();
        let mut ev = plain(4);
        ev.load_block = Some(LoadBlock::OverlapStore);
        let blocked = m.cost(&ev);
        assert!(blocked > base + 5.0);
    }

    #[test]
    fn split_beats_misaligned_penalty() {
        let mut m = model();
        let mut ev = plain(4);
        ev.data = Some(DataOutcome {
            misaligned: true,
            ..Default::default()
        });
        let mis = m.cost(&ev);
        let mut m = model();
        ev.data = Some(DataOutcome {
            misaligned: true,
            split: true,
            ..Default::default()
        });
        let split = m.cost(&ev);
        assert!(split > mis);
    }

    #[test]
    fn costs_are_positive_and_finite() {
        let mut m = model();
        for dep in 1..16 {
            let c = m.cost(&plain(dep));
            assert!(c.is_finite() && c > 0.0);
        }
    }
}
