//! Store-buffer model for load-block events.
//!
//! Core 2's memory pipeline replays a load that conflicts with an older
//! in-flight store: if the store's *address* is not yet known the load blocks
//! on STA; if the addresses match exactly but the store *data* is not ready
//! it blocks on STD; if the ranges overlap only partially, forwarding is
//! impossible and the load blocks on the overlapping store. These are the
//! `LOAD_BLOCK.{STA,STD,OVERLAP_STORE}` events of Table I.

use std::collections::VecDeque;

/// Which load-block condition a load hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBlock {
    /// Blocked on an unresolved store address (`LOAD_BLOCK.STA`).
    StoreAddress,
    /// Blocked on unavailable store data (`LOAD_BLOCK.STD`).
    StoreData,
    /// Blocked on a partially overlapping store
    /// (`LOAD_BLOCK.OVERLAP_STORE`).
    OverlapStore,
}

/// How many instructions after a store its address is still unresolved.
const STA_WINDOW: u64 = 1;
/// How many instructions after a store its data is still unavailable.
const STD_WINDOW: u64 = 4;
/// Store-buffer capacity (in-flight stores a load can conflict with).
const CAPACITY: usize = 16;

#[derive(Debug, Clone, Copy)]
struct PendingStore {
    addr: u64,
    size: u64,
    seq: u64,
}

/// A model of the in-flight store queue, used to classify load conflicts.
///
/// # Example
///
/// ```
/// use mtperf_sim::{LoadBlock, StoreBuffer};
///
/// let mut sb = StoreBuffer::new();
/// sb.record_store(0x100, 8);
/// // A load issued immediately after the store sees an unresolved address.
/// assert_eq!(sb.check_load(0x100, 8), Some(LoadBlock::StoreAddress));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StoreBuffer {
    pending: VecDeque<PendingStore>,
    seq: u64,
}

impl StoreBuffer {
    /// Creates an empty store buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the instruction sequence counter (call once per retired
    /// instruction that is neither the checked load nor the recorded store;
    /// `record_store` and `check_load` advance it themselves).
    pub fn tick(&mut self) {
        self.seq += 1;
    }

    /// Records a store entering the buffer.
    pub fn record_store(&mut self, addr: u64, size: u8) {
        self.seq += 1;
        if self.pending.len() == CAPACITY {
            self.pending.pop_front();
        }
        self.pending.push_back(PendingStore {
            addr,
            size: size.max(1) as u64,
            seq: self.seq,
        });
    }

    /// Checks a load against the in-flight stores, returning the most severe
    /// applicable block (youngest conflicting store wins, as in hardware).
    pub fn check_load(&mut self, addr: u64, size: u8) -> Option<LoadBlock> {
        self.seq += 1;
        let size = size.max(1) as u64;
        let lo = addr;
        let hi = addr + size;
        for st in self.pending.iter().rev() {
            let s_lo = st.addr;
            let s_hi = st.addr + st.size;
            let overlap = lo < s_hi && s_lo < hi;
            if !overlap {
                continue;
            }
            let age = self.seq - st.seq;
            if age <= STA_WINDOW {
                return Some(LoadBlock::StoreAddress);
            }
            let exact = s_lo == lo && s_hi == hi;
            if exact {
                if age <= STD_WINDOW {
                    return Some(LoadBlock::StoreData);
                }
                // Old enough: store-to-load forwarding succeeds.
                return None;
            }
            // Partial overlap can never forward.
            return Some(LoadBlock::OverlapStore);
        }
        None
    }

    /// Number of stores currently tracked.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no stores are tracked.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_load_blocks_on_sta() {
        let mut sb = StoreBuffer::new();
        sb.record_store(0x100, 8);
        assert_eq!(sb.check_load(0x100, 8), Some(LoadBlock::StoreAddress));
    }

    #[test]
    fn young_exact_match_blocks_on_std() {
        let mut sb = StoreBuffer::new();
        sb.record_store(0x100, 8);
        sb.tick(); // one intervening instruction
        assert_eq!(sb.check_load(0x100, 8), Some(LoadBlock::StoreData));
    }

    #[test]
    fn old_exact_match_forwards() {
        let mut sb = StoreBuffer::new();
        sb.record_store(0x100, 8);
        for _ in 0..10 {
            sb.tick();
        }
        assert_eq!(sb.check_load(0x100, 8), None);
    }

    #[test]
    fn partial_overlap_blocks_regardless_of_age() {
        let mut sb = StoreBuffer::new();
        sb.record_store(0x100, 8);
        for _ in 0..10 {
            sb.tick();
        }
        // Load of 8 bytes at +2 overlaps [0x100,0x108) partially.
        assert_eq!(sb.check_load(0x102, 8), Some(LoadBlock::OverlapStore));
    }

    #[test]
    fn disjoint_load_is_clear() {
        let mut sb = StoreBuffer::new();
        sb.record_store(0x100, 8);
        assert_eq!(sb.check_load(0x200, 8), None);
        assert_eq!(sb.check_load(0x108, 8), None, "adjacent, not overlapping");
    }

    #[test]
    fn youngest_conflicting_store_wins() {
        let mut sb = StoreBuffer::new();
        sb.record_store(0x100, 8);
        for _ in 0..10 {
            sb.tick();
        }
        sb.record_store(0x100, 8); // young duplicate
        assert_eq!(sb.check_load(0x100, 8), Some(LoadBlock::StoreAddress));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut sb = StoreBuffer::new();
        sb.record_store(0xAAAA, 8);
        for i in 0..CAPACITY as u64 {
            sb.record_store(0x2000 + i * 64, 8);
        }
        assert_eq!(sb.len(), CAPACITY);
        // The 0xAAAA store fell out; a matching load is clear.
        for _ in 0..10 {
            sb.tick();
        }
        assert_eq!(sb.check_load(0xAAAA, 8), None);
    }

    #[test]
    fn empty_buffer_never_blocks() {
        let mut sb = StoreBuffer::new();
        assert!(sb.is_empty());
        assert_eq!(sb.check_load(0x0, 8), None);
    }
}
