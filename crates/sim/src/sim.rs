//! The simulator core: drives instruction streams through the machine model
//! and emits section samples.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mtperf_counters::{CounterBank, Event, SampleSet, Sectioner};

use crate::branch::GsharePredictor;
use crate::btb::Btb;
use crate::config::MachineConfig;
use crate::cycle::{CycleModel, InstrEvents};
use crate::instr::InstrKind;
use crate::loadblock::{LoadBlock, StoreBuffer};
use crate::memory::MemoryHierarchy;
use crate::workload::{InstrStream, WorkloadSpec};

/// Default section length: how many retired instructions one sample spans.
pub const DEFAULT_SECTION_LEN: u64 = 10_000;

/// An execution-driven simulator of one core described by a
/// [`MachineConfig`].
///
/// Each [`Simulator::run`] starts from cold machine state (fresh caches,
/// TLBs, predictor), executes the workload's phase plan, and returns one
/// [`SectionSample`](mtperf_counters::SectionSample) per
/// `section_len` retired instructions — the paper's data-collection recipe.
///
/// # Example
///
/// ```
/// use mtperf_sim::{MachineConfig, Simulator};
/// use mtperf_sim::workload::{PhaseSpec, WorkloadSpec};
///
/// let sim = Simulator::new(MachineConfig::core2_duo()).with_seed(42);
/// let w = WorkloadSpec::new("toy").phase(PhaseSpec::balanced("only"), 30_000);
/// let samples = sim.run(&w, 10_000);
/// assert_eq!(samples.len(), 3);
/// assert!(samples.is_well_formed());
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    config: MachineConfig,
    seed: u64,
    warmup: bool,
}

impl Simulator {
    /// Creates a simulator with seed 0 and warmup enabled.
    pub fn new(config: MachineConfig) -> Self {
        Simulator {
            config,
            seed: 0,
            warmup: true,
        }
    }

    /// Sets the master seed; all workload randomness derives from it, so a
    /// fixed seed reproduces the dataset bit-for-bit.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables silent cache/TLB warmup before each workload.
    ///
    /// Warmup models steady-state measurement: real applications touch
    /// their data during initialization, so the paper's mid-run sections see
    /// warm caches. Disable it to study cold-start transients.
    pub fn with_warmup(mut self, warmup: bool) -> Self {
        self.warmup = warmup;
        self
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Executes `workload` and returns its section samples.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails [`WorkloadSpec::is_valid`] or
    /// `section_len` is zero.
    pub fn run(&self, workload: &WorkloadSpec, section_len: u64) -> SampleSet {
        assert!(workload.is_valid(), "invalid workload {:?}", workload.name);
        let mut mem = MemoryHierarchy::new(&self.config);
        let mut predictor = GsharePredictor::new(self.config.predictor);
        let mut btb = Btb::new(self.config.btb);
        let mut stores = StoreBuffer::new();
        let mut cycles = CycleModel::new(&self.config);
        let mut bank = CounterBank::new();
        let mut sectioner = Sectioner::new(workload.name.clone(), section_len);
        let mut rng = SmallRng::seed_from_u64(self.seed ^ hash_name(&workload.name));
        let mut samples = SampleSet::new();
        if self.warmup {
            let data_bytes = workload
                .phases
                .iter()
                .map(|p| p.spec.data_ws_bytes)
                .max()
                .unwrap_or(0);
            let code_bytes = workload
                .phases
                .iter()
                .map(|p| p.spec.code_bytes)
                .max()
                .unwrap_or(0);
            mem.warm(
                crate::workload::DATA_BASE,
                data_bytes,
                crate::workload::CODE_BASE,
                code_bytes,
            );
            mem.warm(crate::workload::HOT_BASE, crate::workload::HOT_BYTES, 0, 0);
        }
        // Fractional-cycle carry so integer retirement stays exact.
        let mut carry = 0.0f64;

        for rep in 0..workload.repeats {
            for (pi, plan) in workload.phases.iter().enumerate() {
                let stream_seed = self
                    .seed
                    .wrapping_add(hash_name(&workload.name))
                    .wrapping_add((rep as u64) << 32)
                    .wrapping_add(pi as u64 * 0x9E37_79B9);
                let mut stream = InstrStream::new(&plan.spec, stream_seed);
                for _ in 0..plan.instructions {
                    let cost = self.step(
                        &mut stream,
                        &mut mem,
                        &mut predictor,
                        &mut btb,
                        &mut stores,
                        &mut cycles,
                        &mut bank,
                        &mut rng,
                    );
                    let total = cost + carry;
                    let whole = total.floor();
                    carry = total - whole;
                    if let Some(s) = sectioner.retire(&mut bank, 1, whole as u64) {
                        samples.push(s);
                    }
                }
            }
        }
        if let Some(s) = sectioner.finish(&mut bank) {
            samples.push(s);
        }
        samples
    }

    /// Executes one instruction; updates machine state and counters, returns
    /// its cycle cost.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        stream: &mut InstrStream,
        mem: &mut MemoryHierarchy,
        predictor: &mut GsharePredictor,
        btb: &mut Btb,
        stores: &mut StoreBuffer,
        cycles: &mut CycleModel,
        bank: &mut CounterBank,
        rng: &mut SmallRng,
    ) -> f64 {
        let (pc, instr) = stream.next_instr();
        let fetch = mem.fetch_access(pc);
        if fetch.l1i_miss {
            bank.add(Event::L1im, 1);
        }
        if fetch.itlb_miss {
            bank.add(Event::ItlbM, 1);
        }

        let mut ev = InstrEvents {
            fetch,
            dep_distance: instr.dep_distance,
            ..Default::default()
        };

        match instr.kind {
            InstrKind::Load { addr, size } => {
                bank.add(Event::InstLd, 1);
                let block = stores.check_load(addr, size);
                if let Some(b) = block {
                    bank.add(
                        match b {
                            LoadBlock::StoreAddress => Event::LdBlSta,
                            LoadBlock::StoreData => Event::LdBlStd,
                            LoadBlock::OverlapStore => Event::LdBlOvSt,
                        },
                        1,
                    );
                }
                let d = mem.data_access(addr, size, false);
                if d.l1d_miss {
                    bank.add(Event::L1dm, 1);
                }
                if d.l2_miss {
                    bank.add(Event::L2m, 1);
                }
                if d.dtlb0_miss {
                    bank.add(Event::DtlbL0LdM, 1);
                }
                if d.dtlb_miss {
                    // Retired load page walks fire the load-specific and the
                    // any-miss counters together.
                    bank.add(Event::DtlbLdM, 1);
                    bank.add(Event::DtlbLdReM, 1);
                    bank.add(Event::Dtlb, 1);
                }
                if d.misaligned {
                    bank.add(Event::MisalRef, 1);
                }
                if d.split {
                    bank.add(Event::L1dSpLd, 1);
                }
                ev.data = Some(d);
                ev.load_block = block;
            }
            InstrKind::Store { addr, size } => {
                bank.add(Event::InstSt, 1);
                stores.record_store(addr, size);
                let d = mem.data_access(addr, size, true);
                // MEM_LOAD_RETIRED.* counters are load-only; stores fire
                // only the any-DTLB-miss and alignment events.
                if d.dtlb_miss {
                    bank.add(Event::Dtlb, 1);
                }
                if d.misaligned {
                    bank.add(Event::MisalRef, 1);
                }
                if d.split {
                    bank.add(Event::L1dSpSt, 1);
                }
                ev.data = Some(d);
                ev.is_store = true;
            }
            InstrKind::Branch { taken, target } => {
                stores.tick();
                let mispredicted = predictor.predict_and_update(pc, taken);
                if taken {
                    // A correct direction prediction still needs the target:
                    // a BTB miss costs a short front-end redirect (no Table I
                    // event fires — one more interpretation subtlety).
                    let btb_miss = btb.lookup_update(pc, target);
                    ev.btb_redirect = btb_miss && !mispredicted;
                }
                if mispredicted {
                    bank.add(Event::BrMisPr, 1);
                    // Wrong-path execution: an occasional speculative load
                    // perturbs the TLBs and makes the speculative DTLB
                    // counters (DTLB_MISSES.*) run ahead of the retired ones
                    // (MEM_LOAD_RETIRED.DTLB_MISS), as on real hardware.
                    if rng.gen::<f64>() < 0.3 {
                        let ws = stream.spec().data_ws_bytes;
                        let addr = crate::workload::DATA_BASE + rng.gen_range(0..ws / 8) * 8;
                        if mem.speculative_touch(addr) {
                            bank.add(Event::DtlbLdM, 1);
                            bank.add(Event::Dtlb, 1);
                        }
                    }
                } else {
                    bank.add(Event::BrPred, 1);
                }
                ev.mispredict = mispredicted;
            }
            InstrKind::Other { lcp } => {
                stores.tick();
                bank.add(Event::InstOther, 1);
                if lcp {
                    bank.add(Event::Lcp, 1);
                }
                ev.lcp = lcp;
            }
        }

        cycles.cost(&ev)
    }
}

/// FNV-1a hash of a workload name, for seed derivation.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{AccessMix, InstrMix, PhaseSpec};
    use mtperf_counters::Event;

    fn run_phase(spec: PhaseSpec, instructions: u64) -> SampleSet {
        let sim = Simulator::new(MachineConfig::core2_duo()).with_seed(7);
        let w = WorkloadSpec::new(format!("test-{}", spec.name)).phase(spec, instructions);
        sim.run(&w, 5_000)
    }

    fn mean_rate(set: &SampleSet, e: Event) -> f64 {
        let v = set.rates_of(e);
        v.iter().sum::<f64>() / v.len() as f64
    }

    fn mean_cpi(set: &SampleSet) -> f64 {
        let v = set.cpis();
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn emits_expected_section_count() {
        let set = run_phase(PhaseSpec::balanced("p"), 50_000);
        assert_eq!(set.len(), 10);
        assert!(set.is_well_formed());
    }

    #[test]
    fn deterministic_under_seed() {
        let sim = Simulator::new(MachineConfig::core2_duo()).with_seed(11);
        let w = WorkloadSpec::new("det").phase(PhaseSpec::balanced("p"), 20_000);
        let a = sim.run(&w, 5_000);
        let b = sim.run(&w, 5_000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let w = WorkloadSpec::new("det").phase(PhaseSpec::balanced("p"), 20_000);
        let a = Simulator::new(MachineConfig::core2_duo())
            .with_seed(1)
            .run(&w, 5_000);
        let b = Simulator::new(MachineConfig::core2_duo())
            .with_seed(2)
            .run(&w, 5_000);
        assert_ne!(a, b);
    }

    #[test]
    fn instruction_mix_shows_up_in_counters() {
        let set = run_phase(PhaseSpec::balanced("p"), 50_000);
        let mix = PhaseSpec::balanced("p").mix;
        assert!((mean_rate(&set, Event::InstLd) - mix.load).abs() < 0.05);
        assert!((mean_rate(&set, Event::InstSt) - mix.store).abs() < 0.05);
        let branches = mean_rate(&set, Event::BrMisPr) + mean_rate(&set, Event::BrPred);
        assert!(
            (branches - mix.branch).abs() < 0.08,
            "branches = {branches}"
        );
        assert!(
            (mean_rate(&set, Event::InstOther) - mix.other()).abs() < 0.08,
            "other = {}",
            mean_rate(&set, Event::InstOther)
        );
    }

    #[test]
    fn small_footprint_has_low_miss_rates_and_low_cpi() {
        let set = run_phase(PhaseSpec::balanced("small"), 50_000);
        // Skip the cold-start section: steady state is what matters.
        let warm: SampleSet = set.iter().skip(2).cloned().collect();
        assert!(
            mean_rate(&warm, Event::L2m) < 0.002,
            "L2M = {}",
            mean_rate(&warm, Event::L2m)
        );
        assert!(mean_rate(&warm, Event::Dtlb) < 0.01);
        let cpi = mean_cpi(&warm);
        assert!(cpi < 1.2, "cpi = {cpi}");
    }

    #[test]
    fn pointer_chase_big_ws_drives_l2_and_dtlb_misses() {
        let mut spec = PhaseSpec::balanced("chase");
        spec.hot_fraction = 0.55;
        spec.data_ws_bytes = 32 * 1024 * 1024;
        spec.access = AccessMix {
            sequential: 0.0,
            chase: 1.0,
            stride: 64,
        };
        let set = run_phase(spec, 60_000);
        assert!(
            mean_rate(&set, Event::L2m) > 0.01,
            "L2M = {}",
            mean_rate(&set, Event::L2m)
        );
        assert!(mean_rate(&set, Event::Dtlb) > 0.01);
        let cpi = mean_cpi(&set);
        assert!(cpi > 1.5, "cpi = {cpi}");
    }

    #[test]
    fn mid_ws_random_hits_dtlb_without_l2_misses() {
        // 2 MiB random: fits the 4 MiB L2 but exceeds the 1 MiB DTLB reach.
        let mut spec = PhaseSpec::balanced("dtlb");
        spec.hot_fraction = 0.4;
        spec.data_ws_bytes = 2 * 1024 * 1024;
        spec.access = AccessMix {
            sequential: 0.0,
            chase: 0.0,
            stride: 64,
        };
        // Long enough that the 2 MiB working set is fully L2-resident for
        // most of the run (cold fills alone touch ~32k lines).
        let set = run_phase(spec, 600_000);
        // Skip warm-up sections: look at the last quarter.
        let half: SampleSet = set.iter().skip(set.len() * 3 / 4).cloned().collect();
        assert!(
            mean_rate(&half, Event::Dtlb) > 0.02,
            "Dtlb = {}",
            mean_rate(&half, Event::Dtlb)
        );
        assert!(
            mean_rate(&half, Event::L2m) < 0.005,
            "L2M = {}",
            mean_rate(&half, Event::L2m)
        );
    }

    #[test]
    fn unpredictable_branches_raise_mispredicts() {
        let mut spec = PhaseSpec::balanced("branchy");
        spec.random_branch_frac = 0.9;
        let branchy = run_phase(spec, 50_000);
        let mut calm_spec = PhaseSpec::balanced("calm");
        calm_spec.random_branch_frac = 0.02;
        let calm = run_phase(calm_spec, 50_000);
        let (hi, lo) = (
            mean_rate(&branchy, Event::BrMisPr),
            mean_rate(&calm, Event::BrMisPr),
        );
        assert!(hi > 2.5 * lo, "branchy {hi} vs calm {lo}");
    }

    #[test]
    fn lcp_phase_counts_lcp_events() {
        let mut spec = PhaseSpec::balanced("lcp");
        spec.lcp_frac = 0.2;
        let set = run_phase(spec, 30_000);
        let expected = 0.2 * PhaseSpec::balanced("x").mix.other();
        assert!((mean_rate(&set, Event::Lcp) - expected).abs() < 0.02);
    }

    #[test]
    fn big_code_footprint_drives_l1i_misses() {
        let small = run_phase(PhaseSpec::balanced("small-code"), 50_000);
        let mut spec = PhaseSpec::balanced("icache");
        spec.code_bytes = 512 * 1024;
        let set = run_phase(spec, 50_000);
        assert!(
            mean_rate(&set, Event::L1im) > mean_rate(&small, Event::L1im) + 0.002,
            "big {} vs small {}",
            mean_rate(&set, Event::L1im),
            mean_rate(&small, Event::L1im)
        );
        // And far beyond ITLB reach (512 KiB), with low code locality so
        // fetch actually spreads over the footprint:
        let mut spec2 = PhaseSpec::balanced("itlb");
        spec2.code_bytes = 4 * 1024 * 1024;
        spec2.code_locality = 0.4;
        let set2 = run_phase(spec2, 50_000);
        assert!(
            mean_rate(&set2, Event::ItlbM) > 0.001,
            "ItlbM = {}",
            mean_rate(&set2, Event::ItlbM)
        );
    }

    #[test]
    fn store_reuse_produces_load_blocks() {
        let mut spec = PhaseSpec::balanced("blocks");
        spec.store_reuse_frac = 0.3;
        spec.mix = InstrMix {
            load: 0.3,
            store: 0.25,
            branch: 0.1,
        };
        let set = run_phase(spec, 50_000);
        let blocks = mean_rate(&set, Event::LdBlSta)
            + mean_rate(&set, Event::LdBlStd)
            + mean_rate(&set, Event::LdBlOvSt);
        assert!(blocks > 0.005, "blocks = {blocks}");
    }

    #[test]
    fn misalign_phase_counts_misal_and_splits() {
        let mut spec = PhaseSpec::balanced("misal");
        spec.misalign_frac = 0.3;
        let set = run_phase(spec, 50_000);
        assert!(mean_rate(&set, Event::MisalRef) > 0.05);
        assert!(mean_rate(&set, Event::L1dSpLd) + mean_rate(&set, Event::L1dSpSt) > 0.002);
    }

    #[test]
    fn speculative_dtlb_counts_run_ahead_of_retired() {
        let mut spec = PhaseSpec::balanced("spec");
        spec.random_branch_frac = 0.6;
        spec.hot_fraction = 0.3;
        spec.data_ws_bytes = 8 * 1024 * 1024;
        spec.access = AccessMix {
            sequential: 0.0,
            chase: 0.0,
            stride: 64,
        };
        let set = run_phase(spec, 60_000);
        let spec_ld = mean_rate(&set, Event::DtlbLdM);
        let ret_ld = mean_rate(&set, Event::DtlbLdReM);
        assert!(spec_ld > ret_ld, "{spec_ld} vs {ret_ld}");
    }

    #[test]
    fn multi_phase_workload_produces_distinct_sections() {
        let mut heavy = PhaseSpec::balanced("heavy");
        heavy.hot_fraction = 0.4;
        heavy.data_ws_bytes = 32 * 1024 * 1024;
        heavy.access = AccessMix {
            sequential: 0.0,
            chase: 1.0,
            stride: 64,
        };
        let light = PhaseSpec::balanced("light");
        let w = WorkloadSpec::new("phased")
            .phase(light, 30_000)
            .phase(heavy, 30_000);
        let sim = Simulator::new(MachineConfig::core2_duo()).with_seed(3);
        let set = sim.run(&w, 5_000);
        let cpis = set.cpis();
        let early: f64 = cpis[..6].iter().sum::<f64>() / 6.0;
        let late: f64 = cpis[6..].iter().sum::<f64>() / (cpis.len() - 6) as f64;
        assert!(late > early * 1.5, "early {early}, late {late}");
    }
}
