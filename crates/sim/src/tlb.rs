//! Translation-lookaside-buffer model.
//!
//! A TLB here is a set-associative cache over virtual *page numbers*. The
//! Core 2 Duo data-side hierarchy has a small L0 micro-TLB backed by a
//! 256-entry last-level DTLB; instruction fetch uses a separate ITLB. The
//! simulator composes three [`Tlb`] instances (see `memory.rs`).

use crate::config::TlbGeometry;

/// Hit/miss counters for a TLB instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Number of translations that hit.
    pub hits: u64,
    /// Number of translations that missed.
    pub misses: u64,
}

impl TlbStats {
    /// Total translations.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio; 0.0 before any translation.
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }
}

/// A set-associative TLB with true-LRU replacement, keyed by virtual page
/// number.
///
/// # Example
///
/// ```
/// use mtperf_sim::{Tlb, TlbGeometry};
///
/// let mut t = Tlb::new(TlbGeometry { entries: 8, ways: 2 }, 4096);
/// assert!(t.translate(0x0000)); // cold miss
/// assert!(!t.translate(0x0800)); // same 4 KiB page -> hit
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    sets: u32,
    ways: u32,
    page_shift: u32,
    /// `pages[set * ways + way]`; `u64::MAX` marks an invalid entry.
    pages: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    stats: TlbStats,
}

const INVALID: u64 = u64::MAX;

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate or `page_bytes` is not a power
    /// of two.
    pub fn new(geometry: TlbGeometry, page_bytes: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        let sets = geometry.sets();
        Tlb {
            sets,
            ways: geometry.ways,
            page_shift: page_bytes.trailing_zeros(),
            pages: vec![INVALID; (sets * geometry.ways) as usize],
            stamps: vec![0; (sets * geometry.ways) as usize],
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// Reach in bytes: entries × page size.
    pub fn reach_bytes(&self) -> u64 {
        (self.sets as u64 * self.ways as u64) << self.page_shift
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Translates a virtual address; returns `true` on a **miss** (a page
    /// walk happened and the entry was installed).
    pub fn translate(&mut self, vaddr: u64) -> bool {
        let page = vaddr >> self.page_shift;
        let set = (page % self.sets as u64) as usize;
        let ways = self.ways as usize;
        let base = set * ways;
        self.clock += 1;
        let slots = &mut self.pages[base..base + ways];
        if let Some(way) = slots.iter().position(|&p| p == page) {
            self.stamps[base + way] = self.clock;
            self.stats.hits += 1;
            return false;
        }
        let victim = match slots.iter().position(|&p| p == INVALID) {
            Some(w) => w,
            None => {
                let mut lru_way = 0;
                let mut lru_stamp = u64::MAX;
                for (w, &s) in self.stamps[base..base + ways].iter().enumerate() {
                    if s < lru_stamp {
                        lru_stamp = s;
                        lru_way = w;
                    }
                }
                lru_way
            }
        };
        self.pages[base + victim] = page;
        self.stamps[base + victim] = self.clock;
        self.stats.misses += 1;
        true
    }

    /// Installs the entry for `vaddr` without counting a hit or a miss
    /// (warmup fill).
    pub fn install(&mut self, vaddr: u64) {
        let page = vaddr >> self.page_shift;
        let set = (page % self.sets as u64) as usize;
        let ways = self.ways as usize;
        let base = set * ways;
        self.clock += 1;
        let slots = &mut self.pages[base..base + ways];
        if let Some(way) = slots.iter().position(|&p| p == page) {
            self.stamps[base + way] = self.clock;
            return;
        }
        let victim = match slots.iter().position(|&p| p == INVALID) {
            Some(w) => w,
            None => {
                let mut lru_way = 0;
                let mut lru_stamp = u64::MAX;
                for (w, &s) in self.stamps[base..base + ways].iter().enumerate() {
                    if s < lru_stamp {
                        lru_stamp = s;
                        lru_way = w;
                    }
                }
                lru_way
            }
        };
        self.pages[base + victim] = page;
        self.stamps[base + victim] = self.clock;
    }

    /// Invalidates all entries and clears statistics.
    pub fn flush(&mut self) {
        self.pages.fill(INVALID);
        self.stamps.fill(0);
        self.clock = 0;
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TlbGeometry;

    fn tlb4() -> Tlb {
        Tlb::new(
            TlbGeometry {
                entries: 4,
                ways: 2,
            },
            4096,
        )
    }

    #[test]
    fn same_page_hits() {
        let mut t = tlb4();
        assert!(t.translate(0x1000));
        assert!(!t.translate(0x1fff));
        assert!(!t.translate(0x1800));
        assert_eq!(t.stats().misses, 1);
        assert_eq!(t.stats().hits, 2);
    }

    #[test]
    fn reach_is_entries_times_page() {
        let t = tlb4();
        assert_eq!(t.reach_bytes(), 4 * 4096);
    }

    #[test]
    fn working_set_within_reach_steady_hits() {
        let mut t = tlb4();
        // 4 pages spread over both sets (page numbers 0..4, 2 per set).
        for p in 0..4u64 {
            t.translate(p * 4096);
        }
        for _ in 0..3 {
            for p in 0..4u64 {
                assert!(!t.translate(p * 4096));
            }
        }
    }

    #[test]
    fn exceeding_reach_thrashes() {
        let mut t = tlb4();
        for _ in 0..4 {
            for p in 0..16u64 {
                t.translate(p * 4096);
            }
        }
        assert!(t.stats().miss_ratio() > 0.9);
    }

    #[test]
    fn lru_within_set() {
        let mut t = tlb4(); // 2 sets x 2 ways; pages with equal parity share a set
        t.translate(0); // set 0
        t.translate(2 * 4096); // set 0
        t.translate(0); // refresh page 0
        t.translate(4 * 4096); // set 0 -> evicts page 2
        assert!(!t.translate(0), "page 0 must have survived");
        assert!(t.translate(2 * 4096), "page 2 must have been evicted");
    }

    #[test]
    fn flush_resets() {
        let mut t = tlb4();
        t.translate(0);
        t.flush();
        assert_eq!(t.stats().accesses(), 0);
        assert!(t.translate(0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_page_size() {
        Tlb::new(
            TlbGeometry {
                entries: 4,
                ways: 2,
            },
            1000,
        );
    }
}
