//! The memory hierarchy: split L1s, unified L2, two-level DTLB, ITLB and a
//! stream-detecting next-line L2 prefetcher.
//!
//! The hierarchy turns virtual addresses into *event outcomes*; the cycle
//! model prices them and the simulator core feeds them to the counter bank.
//! Note the asymmetry the paper's events impose: `MEM_LOAD_RETIRED.*` events
//! (L1DM, L2M, DtlbLdReM) count **loads only**, so stores and instruction
//! fetches update cache state without firing those counters.

use crate::cache::Cache;
use crate::config::{MachineConfig, PrefetcherKind};
use crate::tlb::Tlb;

/// Outcome of one data-side access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataOutcome {
    /// The access missed the L1D.
    pub l1d_miss: bool,
    /// The access missed the L2 (implies `l1d_miss`).
    pub l2_miss: bool,
    /// The access missed the L0 micro-DTLB.
    pub dtlb0_miss: bool,
    /// The access missed the last-level DTLB (implies `dtlb0_miss`); a page
    /// walk was performed.
    pub dtlb_miss: bool,
    /// The access was not naturally aligned for its size.
    pub misaligned: bool,
    /// The access crossed a cache-line boundary.
    pub split: bool,
}

/// Outcome of one instruction fetch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchOutcome {
    /// The fetch missed the L1I.
    pub l1i_miss: bool,
    /// The fetch missed the L2 as well (code came from memory).
    pub l2_miss: bool,
    /// The fetch missed the ITLB.
    pub itlb_miss: bool,
}

/// The simulated memory hierarchy of one core.
///
/// # Example
///
/// ```
/// use mtperf_sim::{MachineConfig, MemoryHierarchy};
///
/// let mut mem = MemoryHierarchy::new(&MachineConfig::tiny());
/// let first = mem.data_access(0x2000_0000, 8, false);
/// assert!(first.l1d_miss && first.l2_miss);
/// let second = mem.data_access(0x2000_0000, 8, false);
/// assert!(!second.l1d_miss);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    dtlb0: Tlb,
    dtlb1: Tlb,
    itlb: Tlb,
    line_bytes: u64,
    page_bytes: u64,
    prefetcher: PrefetcherKind,
    /// Stream-prefetcher tracking table (see [`StreamEntry`]).
    streams: [StreamEntry; N_STREAMS],
    stream_clock: u64,
    /// Rotating counter used to skip a fraction of prefetch issues
    /// (models finite fill bandwidth; keeps streaming workloads from
    /// becoming miss-free).
    prefetch_tick: u32,
}

/// Number of concurrent streams the L2 prefetcher tracks.
const N_STREAMS: usize = 4;

/// One tracked line stream.
#[derive(Debug, Clone, Copy)]
struct StreamEntry {
    /// Line most recently seen on this stream.
    last_line: u64,
    /// Line delta of the stream (1 for sequential; any constant in stride
    /// mode).
    stride: i64,
    /// Consecutive accesses matching the stride.
    streak: u32,
    /// LRU stamp.
    stamp: u64,
}

impl StreamEntry {
    fn idle() -> Self {
        StreamEntry {
            last_line: u64::MAX - 1,
            stride: 0,
            streak: 0,
            stamp: 0,
        }
    }
}

impl MemoryHierarchy {
    /// Creates a cold hierarchy per `config`.
    pub fn new(config: &MachineConfig) -> Self {
        MemoryHierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            dtlb0: Tlb::new(config.dtlb0, config.page_bytes),
            dtlb1: Tlb::new(config.dtlb1, config.page_bytes),
            itlb: Tlb::new(config.itlb, config.page_bytes),
            line_bytes: config.l1d.line_bytes,
            page_bytes: config.page_bytes,
            prefetcher: config.prefetcher,
            streams: [StreamEntry::idle(); N_STREAMS],
            stream_clock: 0,
            prefetch_tick: 0,
        }
    }

    /// Performs a data access of `size` bytes at `addr`.
    ///
    /// Stores allocate in the caches like loads (the L1D is write-allocate,
    /// write-back); split accesses touch both lines.
    pub fn data_access(&mut self, addr: u64, size: u8, _is_store: bool) -> DataOutcome {
        let mut out = DataOutcome::default();
        let size = size.max(1) as u64;
        out.misaligned = !addr.is_multiple_of(size);
        out.split = (addr % self.line_bytes) + size > self.line_bytes;

        // Translation: L0 micro-TLB backed by the big DTLB.
        out.dtlb0_miss = self.dtlb0.translate(addr);
        if out.dtlb0_miss {
            out.dtlb_miss = self.dtlb1.translate(addr);
        }

        out.l1d_miss = self.l1d.access(addr).is_miss();
        if out.split {
            // The second line of a split access also occupies the cache but
            // the PMU counts the access once.
            let second = addr + size - 1;
            if self.l1d.access(second).is_miss() {
                out.l1d_miss = true;
                self.l2_fill(second);
            }
        }
        if out.l1d_miss {
            out.l2_miss = self.l2.access(addr).is_miss();
            self.stream_prefetch(addr);
        }
        out
    }

    /// A wrong-path (speculative) data touch: perturbs TLB/cache state and
    /// reports whether the last-level DTLB missed, but is never *retired* —
    /// callers use it to make speculative counters (`DTLB_MISSES.*`) run
    /// slightly ahead of retired ones (`MEM_LOAD_RETIRED.*`), as on real
    /// hardware.
    pub fn speculative_touch(&mut self, addr: u64) -> bool {
        let dtlb0_miss = self.dtlb0.translate(addr);
        let dtlb_miss = if dtlb0_miss {
            self.dtlb1.translate(addr)
        } else {
            false
        };
        if self.l1d.access(addr).is_miss() {
            self.l2.access(addr);
        }
        dtlb_miss
    }

    /// Performs an instruction fetch at `pc`.
    pub fn fetch_access(&mut self, pc: u64) -> FetchOutcome {
        let mut out = FetchOutcome {
            itlb_miss: self.itlb.translate(pc),
            l1i_miss: self.l1i.access(pc).is_miss(),
            ..Default::default()
        };
        if out.l1i_miss {
            out.l2_miss = self.l2.access(pc).is_miss();
            if !out.l2_miss || self.prefetcher == PrefetcherKind::Off {
                return out;
            }
            // Sequential code prefetch: pull the next line into L2.
            self.l2.install(pc + self.line_bytes);
        }
        out
    }

    /// Detects line streams at the L2 and prefetches ahead.
    ///
    /// A small table tracks up to [`N_STREAMS`] concurrent streams so that
    /// interleaved random traffic does not break an established stream.
    /// Called on every L2 demand access (hit or miss) so streams keep
    /// prefetching once their lines start hitting. One in eight prefetch
    /// opportunities is skipped, modeling finite fill bandwidth — streaming
    /// workloads keep a residual demand-miss rate, as on real hardware.
    ///
    /// In [`PrefetcherKind::NextLine`] mode only `+1` line deltas train a
    /// stream; [`PrefetcherKind::Stride`] accepts any constant delta, which
    /// additionally covers strided stencil sweeps.
    fn stream_prefetch(&mut self, addr: u64) {
        if self.prefetcher == PrefetcherKind::Off {
            return;
        }
        let line = addr / self.line_bytes;
        self.stream_clock += 1;
        // Same-line repeats (sub-line strides) are ignored.
        if self.streams.iter().any(|s| s.last_line == line) {
            return;
        }
        let stride_mode = self.prefetcher == PrefetcherKind::Stride;
        let matches = |s: &StreamEntry| -> Option<i64> {
            let delta = line as i64 - s.last_line as i64;
            if delta == 0 || delta.unsigned_abs() > 16 {
                return None;
            }
            if stride_mode {
                Some(delta)
            } else if delta == 1 {
                Some(1)
            } else {
                None
            }
        };
        let mut hit: Option<(usize, i64)> = None;
        for (i, s) in self.streams.iter().enumerate() {
            if let Some(delta) = matches(s) {
                hit = Some((i, delta));
                break;
            }
        }
        if let Some((i, delta)) = hit {
            let clock = self.stream_clock;
            let s = &mut self.streams[i];
            if delta == s.stride {
                s.streak = s.streak.saturating_add(1);
            } else {
                s.stride = delta;
                s.streak = 1;
            }
            s.last_line = line;
            s.stamp = clock;
            let (streak, stride) = (s.streak, s.stride);
            if streak >= 2 {
                self.prefetch_tick = self.prefetch_tick.wrapping_add(1);
                if self.prefetch_tick % 8 != 7 {
                    let next = line as i64 + stride;
                    if next > 0 {
                        self.l2.install(next as u64 * self.line_bytes);
                    }
                }
            }
            return;
        }
        // Allocate the LRU entry to this (potential) new stream.
        let victim = self
            .streams
            .iter_mut()
            .min_by_key(|s| s.stamp)
            .expect("non-empty stream table");
        victim.last_line = line;
        victim.stride = 0;
        victim.streak = 0;
        victim.stamp = self.stream_clock;
    }

    fn l2_fill(&mut self, addr: u64) {
        if self.l2.access(addr).is_miss() {
            self.stream_prefetch(addr);
        }
    }

    /// Silently warms the hierarchy for steady-state measurement: installs
    /// `data_bytes` of the data region (clamped to the L2 capacity) into the
    /// L2, the head of it into the L1D, pre-translates data pages up to the
    /// DTLB reach and code pages up to the ITLB reach, and pulls the head of
    /// the code region into the L1I.
    ///
    /// Real applications touch their data during initialization; warming
    /// replaces simulating that init phase, so the emitted sections reflect
    /// each phase's steady behavior rather than compulsory-miss transients.
    /// No statistics or counters are affected.
    pub fn warm(&mut self, data_base: u64, data_bytes: u64, code_base: u64, code_bytes: u64) {
        let line = self.line_bytes;
        let l2_cap = self.l2.geometry().size_bytes;
        let warm_data = data_bytes.min(l2_cap.saturating_sub(code_bytes.min(l2_cap / 2)));
        let mut addr = data_base;
        while addr < data_base + warm_data {
            self.l2.install(addr);
            addr += line;
        }
        let l1d_cap = self.l1d.geometry().size_bytes;
        let mut addr = data_base;
        while addr < data_base + data_bytes.min(l1d_cap / 2) {
            self.l1d.install(addr);
            addr += line;
        }
        // TLB warm: install leading pages up to half of each reach.
        let page_bytes = self.page_bytes;
        let mut addr = data_base;
        while addr < data_base + data_bytes.min(self.dtlb1.reach_bytes() / 2) {
            self.dtlb0.install(addr);
            self.dtlb1.install(addr);
            addr += page_bytes;
        }
        let mut addr = code_base;
        while addr < code_base + code_bytes.min(self.itlb.reach_bytes() / 2) {
            self.itlb.install(addr);
            addr += page_bytes;
        }
        let l1i_cap = self.l1i.geometry().size_bytes;
        let mut addr = code_base;
        while addr < code_base + code_bytes.min(l1i_cap / 2) {
            self.l1i.install(addr);
            addr += line;
        }
        let mut addr = code_base;
        while addr < code_base + code_bytes.min(l2_cap / 4) {
            self.l2.install(addr);
            addr += line;
        }
    }

    /// The L1D statistics (diagnostics).
    pub fn l1d_stats(&self) -> crate::cache::CacheStats {
        self.l1d.stats()
    }

    /// The L2 statistics (diagnostics).
    pub fn l2_stats(&self) -> crate::cache::CacheStats {
        self.l2.stats()
    }

    /// The last-level DTLB statistics (diagnostics).
    pub fn dtlb_stats(&self) -> crate::tlb::TlbStats {
        self.dtlb1.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(&MachineConfig::tiny())
    }

    #[test]
    fn cold_then_warm_data() {
        let mut m = mem();
        let a = m.data_access(0x2000_0000, 8, false);
        assert!(a.l1d_miss && a.l2_miss && a.dtlb0_miss && a.dtlb_miss);
        let b = m.data_access(0x2000_0000, 8, false);
        assert_eq!(b, DataOutcome::default());
    }

    #[test]
    fn misaligned_and_split_detection() {
        let mut m = mem();
        // 8-byte access at offset 61 of a 64-byte line: misaligned and split.
        let o = m.data_access(0x2000_0000 + 61, 8, false);
        assert!(o.misaligned && o.split);
        // Misaligned but within the line.
        let o = m.data_access(0x2000_0000 + 12 + 1, 4, false);
        assert!(o.misaligned && !o.split);
        // Aligned.
        let o = m.data_access(0x2000_0000 + 64, 8, false);
        assert!(!o.misaligned && !o.split);
    }

    #[test]
    fn split_access_loads_both_lines() {
        let mut m = mem();
        let line = 64u64;
        // Split access at the end of line 0 pulls in line 1 too.
        m.data_access(0x2000_0000 + line - 4, 8, false);
        let second_line = m.data_access(0x2000_0000 + line, 8, false);
        assert!(!second_line.l1d_miss, "second line must be resident");
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = mem();
        let base = 0x2000_0000u64;
        m.data_access(base, 8, false);
        // Evict from the tiny 1 KiB L1 (16 lines) by touching 64 other lines
        // that still fit in the 8 KiB L2 (128 lines).
        for i in 1..=64u64 {
            m.data_access(base + i * 64, 8, false);
        }
        let back = m.data_access(base, 8, false);
        assert!(back.l1d_miss, "must have left L1");
        assert!(!back.l2_miss, "must still be in L2");
    }

    #[test]
    fn dtlb_hierarchy_l0_miss_big_hit() {
        let mut m = mem();
        // Touch 6 pages: overflows the 4-entry L0 but fits the 8-entry DTLB1.
        for p in 0..6u64 {
            m.data_access(0x2000_0000 + p * 4096, 8, false);
        }
        // Second sweep: L0 thrashes, DTLB1 holds.
        let mut dtlb0_misses = 0;
        let mut dtlb_misses = 0;
        for p in 0..6u64 {
            let o = m.data_access(0x2000_0000 + p * 4096, 8, false);
            dtlb0_misses += o.dtlb0_miss as u32;
            dtlb_misses += o.dtlb_miss as u32;
        }
        assert!(dtlb0_misses > 0);
        assert_eq!(dtlb_misses, 0);
    }

    #[test]
    fn fetch_outcomes() {
        let mut m = mem();
        let f = m.fetch_access(0x4000_0000);
        assert!(f.l1i_miss && f.l2_miss && f.itlb_miss);
        let f = m.fetch_access(0x4000_0004);
        assert_eq!(f, FetchOutcome::default());
    }

    #[test]
    fn stream_prefetch_reduces_l2_misses_on_sequential_walk() {
        let cfg = MachineConfig::tiny();
        let mut with = MemoryHierarchy::new(&cfg);
        let mut without = {
            let mut c = cfg.clone();
            c.prefetcher = crate::config::PrefetcherKind::Off;
            MemoryHierarchy::new(&c)
        };
        // Sequential walk over 256 lines (16 KiB), far beyond the 8 KiB L2.
        let mut misses_with = 0;
        let mut misses_without = 0;
        for i in 0..256u64 {
            let addr = 0x3000_0000 + i * 64;
            misses_with += with.data_access(addr, 8, false).l2_miss as u32;
            misses_without += without.data_access(addr, 8, false).l2_miss as u32;
        }
        assert!(
            misses_with * 2 <= misses_without,
            "prefetch: {misses_with}, no prefetch: {misses_without}"
        );
    }

    #[test]
    fn stride_prefetcher_catches_strided_sweeps_nextline_does_not() {
        let base_cfg = MachineConfig::tiny();
        let mut stride_cfg = base_cfg.clone();
        stride_cfg.prefetcher = crate::config::PrefetcherKind::Stride;
        let mut next = MemoryHierarchy::new(&base_cfg);
        let mut strided = MemoryHierarchy::new(&stride_cfg);
        // 2-line stride sweep (128-byte step) over 512 lines.
        let mut misses_next = 0;
        let mut misses_stride = 0;
        for i in 0..256u64 {
            let addr = 0x5000_0000 + i * 128;
            misses_next += next.data_access(addr, 8, false).l2_miss as u32;
            misses_stride += strided.data_access(addr, 8, false).l2_miss as u32;
        }
        assert!(
            misses_stride * 2 <= misses_next,
            "stride {misses_stride} vs next-line {misses_next}"
        );
    }

    #[test]
    fn off_prefetcher_never_installs() {
        let mut cfg = MachineConfig::tiny();
        cfg.prefetcher = crate::config::PrefetcherKind::Off;
        let mut with_off = MemoryHierarchy::new(&cfg);
        let mut with_on = MemoryHierarchy::new(&MachineConfig::tiny());
        let mut misses_off = 0;
        let mut misses_on = 0;
        for i in 0..256u64 {
            let addr = 0x6000_0000 + i * 64;
            misses_off += with_off.data_access(addr, 8, false).l2_miss as u32;
            misses_on += with_on.data_access(addr, 8, false).l2_miss as u32;
        }
        assert!(misses_off > misses_on, "off {misses_off} vs on {misses_on}");
    }

    #[test]
    fn speculative_touch_warms_tlb_without_retired_outcome() {
        let mut m = mem();
        let addr = 0x2000_0000u64;
        assert!(m.speculative_touch(addr), "cold speculative walk");
        // The retired access now finds the TLB warm.
        let o = m.data_access(addr, 8, false);
        assert!(!o.dtlb_miss);
    }
}
