//! Branch-direction predictor.
//!
//! A tournament predictor in the Alpha 21264 style: a *bimodal* table
//! (PC-indexed 2-bit counters) captures statically biased branches, a
//! *gshare* table (PC ⊕ global-history indexed) captures short repeating
//! patterns, and a PC-indexed *chooser* learns which component to trust per
//! branch. Statically biased sites are learned quickly, patterned sites are
//! captured by history, and data-dependent random branches stay near chance
//! — the behavior the workload generator relies on to produce controllable
//! `BrMisPr` rates.

use crate::config::PredictorConfig;

/// Prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Correctly predicted branches.
    pub correct: u64,
    /// Mispredicted branches.
    pub mispredicted: u64,
}

impl PredictorStats {
    /// Total predicted branches.
    pub fn branches(&self) -> u64 {
        self.correct + self.mispredicted
    }

    /// Misprediction ratio; 0.0 before any branch.
    pub fn mispredict_ratio(&self) -> f64 {
        let b = self.branches();
        if b == 0 {
            0.0
        } else {
            self.mispredicted as f64 / b as f64
        }
    }
}

/// Tournament branch predictor (bimodal + gshare + chooser).
///
/// The type keeps the historical `Gshare` name of its dominant component for
/// continuity with the configuration struct.
///
/// # Example
///
/// ```
/// use mtperf_sim::{GsharePredictor, PredictorConfig};
///
/// let mut p = GsharePredictor::new(PredictorConfig { history_bits: 10 });
/// // An always-taken branch is learned after a couple of occurrences.
/// for _ in 0..100 {
///     p.predict_and_update(0x400_000, true);
/// }
/// assert!(p.stats().mispredict_ratio() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    /// Chooser counters: >= 2 selects gshare, < 2 selects bimodal.
    chooser: Vec<u8>,
    mask: u64,
    history: u64,
    stats: PredictorStats,
}

impl GsharePredictor {
    /// Creates a predictor whose tables each hold `2^history_bits` two-bit
    /// counters, initialized to weakly-taken with a bimodal-leaning chooser.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is 0 or greater than 24.
    pub fn new(config: PredictorConfig) -> Self {
        assert!(
            (1..=24).contains(&config.history_bits),
            "history_bits must be in 1..=24"
        );
        let size = 1usize << config.history_bits;
        GsharePredictor {
            bimodal: vec![2; size],
            gshare: vec![2; size],
            chooser: vec![1; size], // weakly prefer bimodal
            mask: (size - 1) as u64,
            history: 0,
            stats: PredictorStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    fn pc_index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    fn gshare_index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }

    /// Predicts the direction of the branch at `pc`, then updates all
    /// component tables with the actual `taken` outcome. Returns `true` if
    /// the branch was **mispredicted**.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let bi = self.pc_index(pc);
        let gi = self.gshare_index(pc);
        let bimodal_taken = self.bimodal[bi] >= 2;
        let gshare_taken = self.gshare[gi] >= 2;
        let use_gshare = self.chooser[bi] >= 2;
        let predicted = if use_gshare {
            gshare_taken
        } else {
            bimodal_taken
        };
        let mispredicted = predicted != taken;

        // Chooser trains toward whichever component was right (only when
        // they disagree).
        let bimodal_right = bimodal_taken == taken;
        let gshare_right = gshare_taken == taken;
        if bimodal_right != gshare_right {
            self.chooser[bi] = if gshare_right {
                (self.chooser[bi] + 1).min(3)
            } else {
                self.chooser[bi].saturating_sub(1)
            };
        }

        // Component counters.
        self.bimodal[bi] = bump(self.bimodal[bi], taken);
        self.gshare[gi] = bump(self.gshare[gi], taken);

        self.history = ((self.history << 1) | u64::from(taken)) & self.mask;
        if mispredicted {
            self.stats.mispredicted += 1;
        } else {
            self.stats.correct += 1;
        }
        mispredicted
    }

    /// Clears learned state and statistics.
    pub fn reset(&mut self) {
        self.bimodal.fill(2);
        self.gshare.fill(2);
        self.chooser.fill(1);
        self.history = 0;
        self.stats = PredictorStats::default();
    }
}

/// 2-bit saturating counter update.
fn bump(counter: u8, taken: bool) -> u8 {
    if taken {
        (counter + 1).min(3)
    } else {
        counter.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> GsharePredictor {
        GsharePredictor::new(PredictorConfig { history_bits: 12 })
    }

    #[test]
    fn learns_always_taken() {
        let mut p = predictor();
        for _ in 0..200 {
            p.predict_and_update(0x1000, true);
        }
        assert!(p.stats().mispredict_ratio() < 0.05);
    }

    #[test]
    fn learns_always_not_taken() {
        let mut p = predictor();
        for _ in 0..200 {
            p.predict_and_update(0x2000, false);
        }
        // Initial weakly-taken counters cost a few mispredicts, then settle.
        assert!(p.stats().mispredict_ratio() < 0.1);
    }

    #[test]
    fn learns_biased_site_despite_noisy_history() {
        // Interleave a 90%-taken branch with random-direction branches at
        // other PCs: the bimodal component must still capture the bias.
        let mut p = predictor();
        let mut x: u64 = 0x243F6A8885A308D3;
        let mut target_mispredicts = 0u64;
        let rounds = 5000;
        for i in 0..rounds {
            // Noise branch with random direction.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.predict_and_update(0x9000 + (x % 64) * 4, (x >> 33) & 1 == 1);
            // Target branch: taken unless i % 10 == 0.
            let taken = i % 10 != 0;
            let before = p.stats().mispredicted;
            p.predict_and_update(0x1234, taken);
            target_mispredicts += p.stats().mispredicted - before;
        }
        let ratio = target_mispredicts as f64 / rounds as f64;
        assert!(ratio < 0.2, "target-site mispredict ratio = {ratio}");
    }

    #[test]
    fn learns_short_repeating_pattern() {
        // Pattern T,T,N repeating is capturable with global history.
        let mut p = predictor();
        let pattern = [true, true, false];
        for i in 0..3000 {
            p.predict_and_update(0x3000, pattern[i % 3]);
        }
        assert!(
            p.stats().mispredict_ratio() < 0.15,
            "ratio = {}",
            p.stats().mispredict_ratio()
        );
    }

    #[test]
    fn random_branches_near_chance() {
        // A deterministic pseudo-random direction stream: no predictor can
        // do much better than chance.
        let mut p = predictor();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 33) & 1 == 1;
            p.predict_and_update(0x4000, taken);
        }
        let r = p.stats().mispredict_ratio();
        assert!(r > 0.35 && r < 0.65, "ratio = {r}");
    }

    #[test]
    fn stats_identity() {
        let mut p = predictor();
        for i in 0..100u64 {
            p.predict_and_update(i * 4, i % 2 == 0);
        }
        assert_eq!(p.stats().branches(), 100);
    }

    #[test]
    fn reset_clears() {
        let mut p = predictor();
        p.predict_and_update(0, true);
        p.reset();
        assert_eq!(p.stats().branches(), 0);
    }

    #[test]
    #[should_panic(expected = "history_bits")]
    fn rejects_zero_history() {
        GsharePredictor::new(PredictorConfig { history_bits: 0 });
    }

    #[test]
    fn empty_ratio_is_zero() {
        assert_eq!(PredictorStats::default().mispredict_ratio(), 0.0);
    }
}
