//! Phase and workload specifications.

use serde::{Deserialize, Serialize};

/// Instruction-class mix of a phase, as fractions of the dynamic stream.
///
/// The remainder `1 - load - store - branch` is ALU/other instructions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstrMix {
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of branches.
    pub branch: f64,
}

impl InstrMix {
    /// Fraction of ALU/other instructions.
    pub fn other(&self) -> f64 {
        1.0 - self.load - self.store - self.branch
    }

    /// Validates that all fractions are in `[0, 1]` and sum to at most 1.
    pub fn is_valid(&self) -> bool {
        let parts = [self.load, self.store, self.branch];
        parts.iter().all(|p| (0.0..=1.0).contains(p)) && self.other() >= -1e-9
    }
}

/// Data-access pattern mix of a phase, as fractions of memory accesses.
///
/// The remainder `1 - sequential - chase` is random accesses uniformly
/// distributed over the working set.
///
/// * `sequential` accesses walk the working set with a fixed stride —
///   prefetch-friendly, high memory-level parallelism;
/// * `chase` accesses follow a pseudo-random dependent chain — each access
///   depends on the previous one (`dep_distance = 1`), defeating both the
///   prefetcher and memory-level parallelism, as in 429.mcf;
/// * `random` accesses are independent uniform accesses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessMix {
    /// Fraction of sequential (strided) accesses.
    pub sequential: f64,
    /// Fraction of dependent pointer-chase accesses.
    pub chase: f64,
    /// Stride in bytes for sequential accesses.
    pub stride: u64,
}

impl AccessMix {
    /// Fraction of independent random accesses.
    pub fn random(&self) -> f64 {
        1.0 - self.sequential - self.chase
    }

    /// Validates fractions.
    pub fn is_valid(&self) -> bool {
        (0.0..=1.0).contains(&self.sequential)
            && (0.0..=1.0).contains(&self.chase)
            && self.random() >= -1e-9
            && self.stride > 0
    }
}

/// Statistical specification of one execution phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Human-readable phase name (diagnostics only).
    pub name: String,
    /// Instruction-class mix.
    pub mix: InstrMix,
    /// Memory-access pattern mix.
    pub access: AccessMix,
    /// Fraction of memory accesses that go to a small "hot" region that
    /// always fits in the L1 (stack/locals traffic). The rest go to the main
    /// working set per [`AccessMix`].
    pub hot_fraction: f64,
    /// Main data working-set size in bytes.
    pub data_ws_bytes: u64,
    /// Static code footprint in bytes; instruction fetch walks this region.
    pub code_bytes: u64,
    /// Number of static branch sites.
    pub branch_sites: u32,
    /// Fraction of branch sites with data-dependent (unpredictable, p≈0.5)
    /// direction; the rest are strongly biased and learnable.
    pub random_branch_frac: f64,
    /// Fraction of taken branches that jump to the hot-target set (loop
    /// headers). Low values model large unrolled/straight-line code that
    /// sweeps its footprint — the instruction-cache stressor.
    pub code_locality: f64,
    /// Mean dependency distance (ILP proxy); larger = more latency hiding.
    pub ilp: f64,
    /// Fraction of loads that read an address recently stored to (provokes
    /// store-forwarding load blocks).
    pub store_reuse_frac: f64,
    /// Fraction of memory accesses that are misaligned.
    pub misalign_frac: f64,
    /// Fraction of ALU instructions whose encoding has a length-changing
    /// prefix (e.g. 16-bit immediate forms).
    pub lcp_frac: f64,
    /// Within-phase drift amplitude in `[0, 1]`. Real program phases are
    /// not stationary: miss rates, branch behavior and ILP wander as inputs
    /// flow through. The generator slowly random-walks the effective
    /// parameters around their spec values with this amplitude, which gives
    /// sections *within* one class the continuous variation that the
    /// paper's leaf linear models (LM8 and friends) capture.
    pub variability: f64,
}

impl PhaseSpec {
    /// A neutral compute-ish phase, useful as a starting point in tests.
    pub fn balanced(name: impl Into<String>) -> Self {
        PhaseSpec {
            name: name.into(),
            mix: InstrMix {
                load: 0.28,
                store: 0.12,
                branch: 0.15,
            },
            access: AccessMix {
                sequential: 0.5,
                chase: 0.0,
                stride: 64,
            },
            hot_fraction: 0.7,
            data_ws_bytes: 16 * 1024,
            code_bytes: 8 * 1024,
            branch_sites: 64,
            random_branch_frac: 0.05,
            code_locality: 0.85,
            ilp: 6.0,
            store_reuse_frac: 0.02,
            misalign_frac: 0.0,
            lcp_frac: 0.0,
            variability: 0.15,
        }
    }

    /// Validates all fractions and sizes.
    pub fn is_valid(&self) -> bool {
        self.mix.is_valid()
            && self.access.is_valid()
            && (0.0..=1.0).contains(&self.hot_fraction)
            && (0.0..=1.0).contains(&self.random_branch_frac)
            && (0.0..=1.0).contains(&self.code_locality)
            && (0.0..=1.0).contains(&self.store_reuse_frac)
            && (0.0..=1.0).contains(&self.misalign_frac)
            && (0.0..=1.0).contains(&self.lcp_frac)
            && (0.0..=1.0).contains(&self.variability)
            && self.data_ws_bytes >= 64
            && self.code_bytes >= 64
            && self.branch_sites > 0
            && self.ilp >= 1.0
    }
}

/// One phase together with how many instructions of it to execute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasePlan {
    /// The phase's statistical character.
    pub spec: PhaseSpec,
    /// Number of dynamic instructions this phase contributes per repetition.
    pub instructions: u64,
}

/// A complete workload: a named sequence of phases, optionally repeated.
///
/// # Example
///
/// ```
/// use mtperf_sim::workload::{PhasePlan, PhaseSpec, WorkloadSpec};
///
/// let w = WorkloadSpec::new("toy")
///     .phase(PhaseSpec::balanced("only"), 10_000)
///     .repeats(2);
/// assert_eq!(w.total_instructions(), 20_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name (labels every emitted section).
    pub name: String,
    /// The phase sequence.
    pub phases: Vec<PhasePlan>,
    /// How many times the phase sequence repeats.
    pub repeats: u32,
}

impl WorkloadSpec {
    /// Creates an empty workload with one repetition.
    pub fn new(name: impl Into<String>) -> Self {
        WorkloadSpec {
            name: name.into(),
            phases: Vec::new(),
            repeats: 1,
        }
    }

    /// Appends a phase executing `instructions` instructions.
    pub fn phase(mut self, spec: PhaseSpec, instructions: u64) -> Self {
        self.phases.push(PhasePlan { spec, instructions });
        self
    }

    /// Sets the repetition count of the whole phase sequence.
    pub fn repeats(mut self, n: u32) -> Self {
        self.repeats = n;
        self
    }

    /// Total dynamic instructions across all repetitions.
    pub fn total_instructions(&self) -> u64 {
        self.phases.iter().map(|p| p.instructions).sum::<u64>() * self.repeats as u64
    }

    /// Validates every phase spec.
    pub fn is_valid(&self) -> bool {
        !self.phases.is_empty()
            && self.repeats > 0
            && self
                .phases
                .iter()
                .all(|p| p.spec.is_valid() && p.instructions > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_other_and_validity() {
        let mix = InstrMix {
            load: 0.3,
            store: 0.1,
            branch: 0.2,
        };
        assert!((mix.other() - 0.4).abs() < 1e-12);
        assert!(mix.is_valid());
        let bad = InstrMix {
            load: 0.8,
            store: 0.3,
            branch: 0.2,
        };
        assert!(!bad.is_valid());
    }

    #[test]
    fn access_mix_validity() {
        let a = AccessMix {
            sequential: 0.5,
            chase: 0.3,
            stride: 8,
        };
        assert!((a.random() - 0.2).abs() < 1e-12);
        assert!(a.is_valid());
        assert!(!AccessMix {
            sequential: 0.9,
            chase: 0.3,
            stride: 8
        }
        .is_valid());
        assert!(!AccessMix {
            sequential: 0.1,
            chase: 0.1,
            stride: 0
        }
        .is_valid());
    }

    #[test]
    fn balanced_phase_is_valid() {
        assert!(PhaseSpec::balanced("p").is_valid());
    }

    #[test]
    fn phase_validity_guards() {
        let mut p = PhaseSpec::balanced("p");
        p.ilp = 0.5;
        assert!(!p.is_valid());
        let mut p = PhaseSpec::balanced("p");
        p.data_ws_bytes = 1;
        assert!(!p.is_valid());
        let mut p = PhaseSpec::balanced("p");
        p.lcp_frac = 1.5;
        assert!(!p.is_valid());
    }

    #[test]
    fn workload_builder_and_totals() {
        let w = WorkloadSpec::new("w")
            .phase(PhaseSpec::balanced("a"), 100)
            .phase(PhaseSpec::balanced("b"), 50)
            .repeats(3);
        assert_eq!(w.total_instructions(), 450);
        assert!(w.is_valid());
    }

    #[test]
    fn empty_workload_invalid() {
        assert!(!WorkloadSpec::new("w").is_valid());
        let w = WorkloadSpec::new("w")
            .phase(PhaseSpec::balanced("a"), 100)
            .repeats(0);
        assert!(!w.is_valid());
    }

    #[test]
    fn serde_roundtrip() {
        let w = WorkloadSpec::new("w").phase(PhaseSpec::balanced("a"), 10);
        let json = serde_json::to_string(&w).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);
    }
}
