//! Synthetic workload modeling.
//!
//! We do not have SPEC CPU2006 binaries; what the learning problem needs is
//! a population of workload *sections* spanning distinct performance classes.
//! A [`PhaseSpec`] parameterizes the statistical character of one execution
//! phase — instruction mix, data working set and access patterns, code
//! footprint, branch predictability, ILP, alignment discipline — and a
//! [`WorkloadSpec`] strings phases together the way real programs move
//! through phases (the paper leans on Sherwood-style phase behavior).
//!
//! [`profiles`] instantiates a suite of specs mimicking the published
//! bottleneck structure of SPEC CPU2006 members (mcf's pointer chasing,
//! cactusADM's combined instruction+data cache pressure, gcc's
//! length-changing prefixes, …).

mod gen;
pub mod profiles;
mod spec;

pub use gen::{InstrStream, CODE_BASE, DATA_BASE, HOT_BASE, HOT_BYTES};
pub use spec::{AccessMix, InstrMix, PhasePlan, PhaseSpec, WorkloadSpec};
