//! Synthetic profiles mimicking the bottleneck structure of SPEC CPU2006
//! benchmarks.
//!
//! Each profile is parameterized from the *published* performance character
//! of the benchmark it is named after — e.g. 429.mcf is dominated by
//! dependent pointer chasing over a working set far beyond any cache,
//! 436.cactusADM combines instruction-cache pressure with data-side L2
//! misses, 403.gcc mixes instruction-cache pressure with length-changing
//! prefixes — so the simulated suite spans the same performance *classes*
//! the paper's model tree discovers, even though the instruction streams are
//! synthetic.
//!
//! Use [`suite`] for the full set or [`toy_suite`] for a fast three-workload
//! set in tests.

use crate::workload::spec::{AccessMix, InstrMix, PhaseSpec, WorkloadSpec};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

fn phase(name: &str) -> PhaseSpec {
    PhaseSpec::balanced(name)
}

/// `400.perlbench`-like: branchy interpreter, moderate code footprint,
/// data mostly cache-resident.
pub fn perlbench_like(instructions: u64) -> WorkloadSpec {
    let mut interp = phase("interp");
    interp.mix = InstrMix {
        load: 0.30,
        store: 0.12,
        branch: 0.22,
    };
    interp.code_bytes = 96 * KIB;
    interp.data_ws_bytes = MIB;
    interp.hot_fraction = 0.75;
    interp.random_branch_frac = 0.12;
    interp.ilp = 4.0;

    let mut regex = phase("regex");
    regex.mix = InstrMix {
        load: 0.32,
        store: 0.08,
        branch: 0.20,
    };
    regex.code_bytes = 64 * KIB;
    regex.data_ws_bytes = 512 * KIB;
    regex.hot_fraction = 0.8;
    regex.random_branch_frac = 0.15;
    // Perl's regex engine carries some 16-bit-immediate encodings too.
    regex.lcp_frac = 0.04;
    regex.ilp = 5.0;

    WorkloadSpec::new("400.perlbench-like")
        .phase(interp, instructions * 6 / 10)
        .phase(regex, instructions * 4 / 10)
}

/// `401.bzip2`-like: alternating compress/decompress phases with moderate
/// random traffic in a few-MiB block.
pub fn bzip2_like(instructions: u64) -> WorkloadSpec {
    let mut compress = phase("compress");
    compress.mix = InstrMix {
        load: 0.26,
        store: 0.14,
        branch: 0.16,
    };
    compress.data_ws_bytes = 4 * MIB;
    compress.hot_fraction = 0.72;
    compress.access = AccessMix {
        sequential: 0.35,
        chase: 0.0,
        stride: 64,
    };
    compress.random_branch_frac = 0.30;
    compress.ilp = 5.0;

    let mut decompress = phase("decompress");
    decompress.mix = InstrMix {
        load: 0.28,
        store: 0.16,
        branch: 0.14,
    };
    decompress.data_ws_bytes = MIB;
    decompress.hot_fraction = 0.8;
    decompress.access = AccessMix {
        sequential: 0.6,
        chase: 0.0,
        stride: 64,
    };
    decompress.random_branch_frac = 0.2;
    decompress.ilp = 6.0;

    WorkloadSpec::new("401.bzip2-like")
        .phase(compress, instructions / 4)
        .phase(decompress, instructions / 4)
        .repeats(2)
}

/// `403.gcc`-like: large code footprint and the suite's signature
/// length-changing-prefix stalls, concentrated in a codegen phase.
pub fn gcc_like(instructions: u64) -> WorkloadSpec {
    let mut parse = phase("parse");
    parse.mix = InstrMix {
        load: 0.28,
        store: 0.12,
        branch: 0.22,
    };
    parse.code_bytes = 384 * KIB;
    parse.data_ws_bytes = 2 * MIB;
    parse.hot_fraction = 0.75;
    parse.random_branch_frac = 0.3;
    parse.code_locality = 0.7;
    parse.lcp_frac = 0.05;
    parse.ilp = 4.0;

    let mut optimize = phase("optimize");
    optimize.mix = InstrMix {
        load: 0.3,
        store: 0.12,
        branch: 0.18,
    };
    optimize.code_bytes = 512 * KIB;
    optimize.data_ws_bytes = 3 * MIB;
    optimize.hot_fraction = 0.75;
    optimize.random_branch_frac = 0.2;
    optimize.ilp = 4.5;

    let mut codegen = phase("codegen");
    codegen.mix = InstrMix {
        load: 0.26,
        store: 0.14,
        branch: 0.16,
    };
    codegen.code_bytes = 256 * KIB;
    codegen.data_ws_bytes = MIB;
    codegen.hot_fraction = 0.8;
    // The paper: ~20% of gcc sections suffer LCP stalls.
    codegen.lcp_frac = 0.12;
    codegen.ilp = 5.0;

    WorkloadSpec::new("403.gcc-like")
        .phase(parse, instructions * 4 / 10)
        .phase(optimize, instructions * 4 / 10)
        .phase(codegen, instructions * 2 / 10)
}

/// `429.mcf`-like: dependent pointer chasing across a working set far
/// beyond the L2 — the highest-CPI workload of the suite; most sections
/// land in the L2-miss-dominated leaf (LM17 in the paper).
pub fn mcf_like(instructions: u64) -> WorkloadSpec {
    let mut chase = phase("chase");
    chase.mix = InstrMix {
        load: 0.32,
        store: 0.08,
        branch: 0.18,
    };
    chase.data_ws_bytes = 48 * MIB;
    chase.hot_fraction = 0.88;
    chase.access = AccessMix {
        sequential: 0.0,
        chase: 0.75,
        stride: 64,
    };
    chase.random_branch_frac = 0.35;
    chase.ilp = 3.0;

    let mut relax = phase("relax");
    relax.mix = InstrMix {
        load: 0.3,
        store: 0.1,
        branch: 0.16,
    };
    relax.data_ws_bytes = 48 * MIB;
    relax.hot_fraction = 0.92;
    relax.access = AccessMix {
        sequential: 0.1,
        chase: 0.6,
        stride: 64,
    };
    relax.random_branch_frac = 0.3;
    relax.ilp = 3.5;

    WorkloadSpec::new("429.mcf-like")
        .phase(chase, instructions * 3 / 4)
        .phase(relax, instructions / 4)
}

/// `433.milc`-like: streaming lattice sweeps — large-footprint sequential
/// traffic with high memory-level parallelism and prefetch-friendly strides.
pub fn milc_like(instructions: u64) -> WorkloadSpec {
    let mut sweep = phase("sweep");
    sweep.mix = InstrMix {
        load: 0.32,
        store: 0.14,
        branch: 0.08,
    };
    sweep.data_ws_bytes = 24 * MIB;
    sweep.hot_fraction = 0.55;
    sweep.access = AccessMix {
        sequential: 0.9,
        chase: 0.0,
        stride: 64,
    };
    sweep.random_branch_frac = 0.05;
    sweep.ilp = 9.0;

    WorkloadSpec::new("433.milc-like").phase(sweep, instructions)
}

/// `436.cactusADM`-like: the paper's LM18 citizen — heavy L1 instruction
/// misses combined with data-side L2 misses saturate CPI.
pub fn cactus_like(instructions: u64) -> WorkloadSpec {
    let mut stencil = phase("stencil");
    stencil.mix = InstrMix {
        load: 0.34,
        store: 0.14,
        branch: 0.06,
    };
    stencil.code_bytes = 640 * KIB;
    stencil.data_ws_bytes = 16 * MIB;
    stencil.hot_fraction = 0.78;
    stencil.access = AccessMix {
        sequential: 0.45,
        chase: 0.0,
        stride: 192,
    };
    stencil.random_branch_frac = 0.05;
    stencil.code_locality = 0.15;
    stencil.ilp = 5.0;

    WorkloadSpec::new("436.cactusADM-like").phase(stencil, instructions)
}

/// `444.namd`-like: compute-dense molecular dynamics; high ILP, everything
/// cache-resident — the suite's CPI floor.
pub fn namd_like(instructions: u64) -> WorkloadSpec {
    let mut force = phase("force");
    force.mix = InstrMix {
        load: 0.24,
        store: 0.08,
        branch: 0.08,
    };
    force.data_ws_bytes = 512 * KIB;
    force.hot_fraction = 0.8;
    force.access = AccessMix {
        sequential: 0.7,
        chase: 0.0,
        stride: 32,
    };
    force.random_branch_frac = 0.04;
    force.ilp = 10.0;

    WorkloadSpec::new("444.namd-like").phase(force, instructions)
}

/// `445.gobmk`-like: game-tree search with data-dependent branches — the
/// branch-misprediction stressor.
pub fn gobmk_like(instructions: u64) -> WorkloadSpec {
    let mut search = phase("search");
    search.mix = InstrMix {
        load: 0.27,
        store: 0.1,
        branch: 0.24,
    };
    search.code_bytes = 256 * KIB;
    search.data_ws_bytes = MIB;
    search.hot_fraction = 0.78;
    search.random_branch_frac = 0.55;
    search.ilp = 3.5;

    let mut pattern = phase("pattern");
    pattern.mix = InstrMix {
        load: 0.3,
        store: 0.08,
        branch: 0.2,
    };
    pattern.code_bytes = 192 * KIB;
    pattern.data_ws_bytes = 2 * MIB;
    pattern.hot_fraction = 0.75;
    pattern.random_branch_frac = 0.4;
    pattern.ilp = 4.0;

    WorkloadSpec::new("445.gobmk-like")
        .phase(search, instructions * 6 / 10)
        .phase(pattern, instructions * 4 / 10)
}

/// `450.soplex`-like: sparse linear algebra whose working set fits the L2
/// but overflows the DTLB — the paper's DTLB-without-L2-miss class.
pub fn soplex_like(instructions: u64) -> WorkloadSpec {
    let mut factor = phase("factor");
    factor.mix = InstrMix {
        load: 0.34,
        store: 0.1,
        branch: 0.14,
    };
    factor.data_ws_bytes = 2560 * KIB; // 2.5 MiB: inside L2, beyond DTLB reach
    factor.hot_fraction = 0.5;
    factor.access = AccessMix {
        sequential: 0.15,
        chase: 0.0,
        stride: 64,
    };
    factor.random_branch_frac = 0.2;
    factor.ilp = 5.0;

    let mut price = phase("price");
    price.mix = InstrMix {
        load: 0.3,
        store: 0.12,
        branch: 0.16,
    };
    price.data_ws_bytes = 1536 * KIB;
    price.hot_fraction = 0.6;
    price.access = AccessMix {
        sequential: 0.4,
        chase: 0.0,
        stride: 64,
    };
    price.random_branch_frac = 0.18;
    price.ilp = 5.5;

    WorkloadSpec::new("450.soplex-like")
        .phase(factor, instructions * 6 / 10)
        .phase(price, instructions * 4 / 10)
}

/// `456.hmmer`-like: profile HMM scoring — store-heavy inner loop with
/// store-to-load forwarding hazards.
pub fn hmmer_like(instructions: u64) -> WorkloadSpec {
    let mut viterbi = phase("viterbi");
    viterbi.mix = InstrMix {
        load: 0.3,
        store: 0.2,
        branch: 0.1,
    };
    viterbi.data_ws_bytes = 256 * KIB;
    viterbi.hot_fraction = 0.8;
    viterbi.access = AccessMix {
        sequential: 0.8,
        chase: 0.0,
        stride: 16,
    };
    viterbi.store_reuse_frac = 0.18;
    viterbi.random_branch_frac = 0.05;
    viterbi.ilp = 8.0;

    WorkloadSpec::new("456.hmmer-like").phase(viterbi, instructions)
}

/// `458.sjeng`-like: chess search — branchy with a mid-size working set.
pub fn sjeng_like(instructions: u64) -> WorkloadSpec {
    let mut search = phase("search");
    search.mix = InstrMix {
        load: 0.26,
        store: 0.1,
        branch: 0.22,
    };
    search.code_bytes = 128 * KIB;
    search.data_ws_bytes = 768 * KIB;
    search.hot_fraction = 0.75;
    search.random_branch_frac = 0.38;
    search.ilp = 4.0;

    WorkloadSpec::new("458.sjeng-like").phase(search, instructions)
}

/// `462.libquantum`-like: long streaming sweeps over a huge array — many L2
/// misses, all prefetchable and deeply overlapped.
pub fn libquantum_like(instructions: u64) -> WorkloadSpec {
    let mut gate = phase("gate");
    gate.mix = InstrMix {
        load: 0.28,
        store: 0.12,
        branch: 0.12,
    };
    gate.data_ws_bytes = 32 * MIB;
    gate.hot_fraction = 0.45;
    gate.access = AccessMix {
        sequential: 0.95,
        chase: 0.0,
        stride: 16,
    };
    gate.random_branch_frac = 0.03;
    gate.ilp = 12.0;

    WorkloadSpec::new("462.libquantum-like").phase(gate, instructions)
}

/// `464.h264ref`-like: video coding — misaligned and line-split accesses
/// plus store-forwarding traffic.
pub fn h264_like(instructions: u64) -> WorkloadSpec {
    let mut motion = phase("motion");
    motion.mix = InstrMix {
        load: 0.33,
        store: 0.15,
        branch: 0.12,
    };
    motion.data_ws_bytes = 2 * MIB;
    motion.hot_fraction = 0.7;
    motion.access = AccessMix {
        sequential: 0.55,
        chase: 0.0,
        stride: 48,
    };
    motion.misalign_frac = 0.22;
    motion.store_reuse_frac = 0.12;
    motion.random_branch_frac = 0.15;
    motion.ilp = 6.0;

    WorkloadSpec::new("464.h264ref-like").phase(motion, instructions)
}

/// `471.omnetpp`-like: discrete-event simulation — pointer-rich heap traffic
/// plus unpredictable dispatch branches.
pub fn omnetpp_like(instructions: u64) -> WorkloadSpec {
    let mut events = phase("events");
    events.mix = InstrMix {
        load: 0.3,
        store: 0.12,
        branch: 0.2,
    };
    events.code_bytes = 320 * KIB;
    events.data_ws_bytes = 12 * MIB;
    events.hot_fraction = 0.93;
    events.access = AccessMix {
        sequential: 0.1,
        chase: 0.4,
        stride: 64,
    };
    events.random_branch_frac = 0.3;
    events.ilp = 3.5;

    WorkloadSpec::new("471.omnetpp-like").phase(events, instructions)
}

/// `473.astar`-like: path search whose graph fits the L2 but whose pages
/// overflow the DTLB; dependent walks without many L2 misses.
pub fn astar_like(instructions: u64) -> WorkloadSpec {
    let mut path = phase("path");
    path.mix = InstrMix {
        load: 0.3,
        store: 0.1,
        branch: 0.18,
    };
    path.data_ws_bytes = 3 * MIB;
    path.hot_fraction = 0.55;
    path.access = AccessMix {
        sequential: 0.05,
        chase: 0.45,
        stride: 64,
    };
    path.random_branch_frac = 0.35;
    path.ilp = 3.5;

    WorkloadSpec::new("473.astar-like").phase(path, instructions)
}

/// `483.xalancbmk`-like: XSLT processing — a code footprint beyond the ITLB
/// reach drives instruction-side misses of every flavor.
pub fn xalanc_like(instructions: u64) -> WorkloadSpec {
    let mut transform = phase("transform");
    transform.mix = InstrMix {
        load: 0.3,
        store: 0.12,
        branch: 0.2,
    };
    transform.code_bytes = 1536 * KIB;
    transform.data_ws_bytes = 4 * MIB;
    transform.hot_fraction = 0.78;
    transform.random_branch_frac = 0.18;
    transform.code_locality = 0.8;
    transform.ilp = 5.0;
    transform.ilp = 4.0;

    WorkloadSpec::new("483.xalancbmk-like").phase(transform, instructions)
}

/// The full synthetic suite, one entry per profile, each executing about
/// `instructions_per_workload` dynamic instructions.
///
/// # Example
///
/// ```
/// let suite = mtperf_sim::workload::profiles::suite(100_000);
/// assert_eq!(suite.len(), 15);
/// assert!(suite.iter().all(|w| w.is_valid()));
/// ```
pub fn suite(instructions_per_workload: u64) -> Vec<WorkloadSpec> {
    vec![
        perlbench_like(instructions_per_workload),
        bzip2_like(instructions_per_workload),
        gcc_like(instructions_per_workload),
        mcf_like(instructions_per_workload),
        milc_like(instructions_per_workload),
        cactus_like(instructions_per_workload),
        namd_like(instructions_per_workload),
        gobmk_like(instructions_per_workload),
        soplex_like(instructions_per_workload),
        hmmer_like(instructions_per_workload),
        sjeng_like(instructions_per_workload),
        libquantum_like(instructions_per_workload),
        h264_like(instructions_per_workload),
        omnetpp_like(instructions_per_workload),
        xalanc_like(instructions_per_workload),
    ]
}

/// A three-workload suite spanning low/medium/high CPI, for fast tests.
pub fn toy_suite(instructions_per_workload: u64) -> Vec<WorkloadSpec> {
    vec![
        namd_like(instructions_per_workload),
        soplex_like(instructions_per_workload),
        mcf_like(instructions_per_workload),
    ]
}

/// `410.bwaves`-like: blast-wave CFD — long unit-stride sweeps over a large
/// grid, deeply overlapped.
pub fn bwaves_like(instructions: u64) -> WorkloadSpec {
    let mut sweep = phase("sweep");
    sweep.mix = InstrMix {
        load: 0.34,
        store: 0.12,
        branch: 0.06,
    };
    sweep.data_ws_bytes = 28 * MIB;
    sweep.hot_fraction = 0.5;
    sweep.access = AccessMix {
        sequential: 0.92,
        chase: 0.0,
        stride: 64,
    };
    sweep.random_branch_frac = 0.03;
    sweep.ilp = 10.0;

    WorkloadSpec::new("410.bwaves-like").phase(sweep, instructions)
}

/// `416.gamess`-like: quantum chemistry — compute-dense, cache-resident.
pub fn gamess_like(instructions: u64) -> WorkloadSpec {
    let mut scf = phase("scf");
    scf.mix = InstrMix {
        load: 0.26,
        store: 0.08,
        branch: 0.07,
    };
    scf.data_ws_bytes = 768 * KIB;
    scf.hot_fraction = 0.78;
    scf.access = AccessMix {
        sequential: 0.6,
        chase: 0.0,
        stride: 32,
    };
    scf.random_branch_frac = 0.05;
    scf.ilp = 9.0;

    WorkloadSpec::new("416.gamess-like").phase(scf, instructions)
}

/// `434.zeusmp`-like: magnetohydrodynamics stencil with a multi-line stride
/// that defeats a next-line prefetcher.
pub fn zeusmp_like(instructions: u64) -> WorkloadSpec {
    let mut stencil = phase("stencil");
    stencil.mix = InstrMix {
        load: 0.33,
        store: 0.13,
        branch: 0.06,
    };
    stencil.data_ws_bytes = 20 * MIB;
    stencil.hot_fraction = 0.74;
    stencil.access = AccessMix {
        sequential: 0.8,
        chase: 0.0,
        stride: 160,
    };
    stencil.random_branch_frac = 0.04;
    stencil.ilp = 7.0;

    WorkloadSpec::new("434.zeusmp-like").phase(stencil, instructions)
}

/// `435.gromacs`-like: molecular dynamics — mostly compute with neighbor
/// list lookups.
pub fn gromacs_like(instructions: u64) -> WorkloadSpec {
    let mut force = phase("force");
    force.mix = InstrMix {
        load: 0.28,
        store: 0.1,
        branch: 0.1,
    };
    force.data_ws_bytes = 1536 * KIB;
    force.hot_fraction = 0.72;
    force.access = AccessMix {
        sequential: 0.45,
        chase: 0.0,
        stride: 48,
    };
    force.random_branch_frac = 0.08;
    force.ilp = 8.0;

    WorkloadSpec::new("435.gromacs-like").phase(force, instructions)
}

/// `447.dealII`-like: finite elements — templated C++ with moderate code
/// footprint and mixed access patterns.
pub fn dealii_like(instructions: u64) -> WorkloadSpec {
    let mut assemble = phase("assemble");
    assemble.mix = InstrMix {
        load: 0.3,
        store: 0.12,
        branch: 0.16,
    };
    assemble.code_bytes = 448 * KIB;
    assemble.data_ws_bytes = 3 * MIB;
    assemble.hot_fraction = 0.68;
    assemble.access = AccessMix {
        sequential: 0.35,
        chase: 0.1,
        stride: 64,
    };
    assemble.random_branch_frac = 0.15;
    assemble.ilp = 5.0;

    let mut solve = phase("solve");
    solve.mix = InstrMix {
        load: 0.34,
        store: 0.1,
        branch: 0.08,
    };
    solve.data_ws_bytes = 6 * MIB;
    solve.hot_fraction = 0.6;
    solve.access = AccessMix {
        sequential: 0.75,
        chase: 0.0,
        stride: 64,
    };
    solve.random_branch_frac = 0.05;
    solve.ilp = 7.0;

    WorkloadSpec::new("447.dealII-like")
        .phase(assemble, instructions / 2)
        .phase(solve, instructions / 2)
}

/// `453.povray`-like: ray tracing — branchy compute over a small scene.
pub fn povray_like(instructions: u64) -> WorkloadSpec {
    let mut trace = phase("trace");
    trace.mix = InstrMix {
        load: 0.27,
        store: 0.09,
        branch: 0.18,
    };
    trace.code_bytes = 192 * KIB;
    trace.data_ws_bytes = 512 * KIB;
    trace.hot_fraction = 0.8;
    trace.random_branch_frac = 0.25;
    trace.ilp = 5.0;

    WorkloadSpec::new("453.povray-like").phase(trace, instructions)
}

/// `459.GemsFDTD`-like: finite-difference time domain — giant grid sweeps,
/// strongly memory bound even with prefetching.
pub fn gemsfdtd_like(instructions: u64) -> WorkloadSpec {
    let mut update = phase("update");
    update.mix = InstrMix {
        load: 0.36,
        store: 0.16,
        branch: 0.04,
    };
    update.data_ws_bytes = 40 * MIB;
    update.hot_fraction = 0.42;
    update.access = AccessMix {
        sequential: 0.9,
        chase: 0.0,
        stride: 64,
    };
    update.random_branch_frac = 0.02;
    update.ilp = 9.0;

    WorkloadSpec::new("459.GemsFDTD-like").phase(update, instructions)
}

/// `465.tonto`-like: quantum crystallography — compute with periodic
/// matrix phases.
pub fn tonto_like(instructions: u64) -> WorkloadSpec {
    let mut integrals = phase("integrals");
    integrals.mix = InstrMix {
        load: 0.27,
        store: 0.1,
        branch: 0.09,
    };
    integrals.data_ws_bytes = MIB;
    integrals.hot_fraction = 0.75;
    integrals.access = AccessMix {
        sequential: 0.55,
        chase: 0.0,
        stride: 32,
    };
    integrals.random_branch_frac = 0.06;
    integrals.ilp = 8.0;

    let mut diag = phase("diag");
    diag.mix = InstrMix {
        load: 0.32,
        store: 0.12,
        branch: 0.06,
    };
    diag.data_ws_bytes = 2 * MIB;
    diag.hot_fraction = 0.62;
    diag.access = AccessMix {
        sequential: 0.85,
        chase: 0.0,
        stride: 64,
    };
    diag.random_branch_frac = 0.04;
    diag.ilp = 8.0;

    WorkloadSpec::new("465.tonto-like")
        .phase(integrals, instructions * 6 / 10)
        .phase(diag, instructions * 4 / 10)
}

/// `481.wrf`-like: weather simulation — large multi-phase stencil code with
/// a sizeable instruction footprint.
pub fn wrf_like(instructions: u64) -> WorkloadSpec {
    let mut physics = phase("physics");
    physics.mix = InstrMix {
        load: 0.31,
        store: 0.13,
        branch: 0.09,
    };
    physics.code_bytes = 768 * KIB;
    physics.data_ws_bytes = 10 * MIB;
    physics.hot_fraction = 0.66;
    physics.access = AccessMix {
        sequential: 0.7,
        chase: 0.0,
        stride: 96,
    };
    physics.random_branch_frac = 0.08;
    physics.code_locality = 0.5;
    physics.ilp = 6.0;

    WorkloadSpec::new("481.wrf-like").phase(physics, instructions)
}

/// `482.sphinx3`-like: speech recognition — streaming scoring with
/// data-dependent pruning branches.
pub fn sphinx_like(instructions: u64) -> WorkloadSpec {
    let mut score = phase("score");
    score.mix = InstrMix {
        load: 0.32,
        store: 0.08,
        branch: 0.14,
    };
    score.data_ws_bytes = 2 * MIB;
    score.hot_fraction = 0.6;
    score.access = AccessMix {
        sequential: 0.7,
        chase: 0.0,
        stride: 32,
    };
    score.random_branch_frac = 0.3;
    score.ilp = 6.0;

    WorkloadSpec::new("482.sphinx3-like").phase(score, instructions)
}

/// An extended suite: the base [`suite`] plus ten further CPU2006-like
/// profiles. The paper evaluated a *subset* of SPEC CPU2006, which `suite`
/// mirrors; the extended set is for studies that want broader class
/// coverage (at the cost of re-tuning any shape expectations).
pub fn extended_suite(instructions_per_workload: u64) -> Vec<WorkloadSpec> {
    let mut all = suite(instructions_per_workload);
    all.extend([
        bwaves_like(instructions_per_workload),
        gamess_like(instructions_per_workload),
        zeusmp_like(instructions_per_workload),
        gromacs_like(instructions_per_workload),
        dealii_like(instructions_per_workload),
        povray_like(instructions_per_workload),
        gemsfdtd_like(instructions_per_workload),
        tonto_like(instructions_per_workload),
        wrf_like(instructions_per_workload),
        sphinx_like(instructions_per_workload),
    ]);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_valid() {
        for w in suite(1_000_000) {
            assert!(w.is_valid(), "{} invalid", w.name);
            assert!(w.total_instructions() > 0);
        }
    }

    #[test]
    fn suite_names_unique() {
        let s = suite(1000);
        let mut names: Vec<&str> = s.iter().map(|w| w.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn instruction_budgets_approximately_honored() {
        for w in suite(1_000_000) {
            let total = w.total_instructions();
            assert!(
                (900_000..=1_100_000).contains(&total),
                "{}: {total}",
                w.name
            );
        }
    }

    #[test]
    fn toy_suite_is_subset_flavor() {
        let t = toy_suite(1000);
        assert_eq!(t.len(), 3);
        assert!(t.iter().all(|w| w.is_valid()));
    }

    #[test]
    fn soplex_ws_exceeds_dtlb_reach_but_fits_l2() {
        let w = soplex_like(1000);
        let machine = crate::config::MachineConfig::core2_duo();
        let reach = machine.dtlb1.entries as u64 * machine.page_bytes;
        for p in &w.phases {
            assert!(p.spec.data_ws_bytes > reach);
            assert!(p.spec.data_ws_bytes < machine.l2.size_bytes);
        }
    }

    #[test]
    fn mcf_ws_exceeds_l2() {
        let w = mcf_like(1000);
        let machine = crate::config::MachineConfig::core2_duo();
        for p in &w.phases {
            assert!(p.spec.data_ws_bytes > machine.l2.size_bytes);
            assert!(p.spec.access.chase > 0.5);
        }
    }

    #[test]
    fn xalanc_code_exceeds_itlb_reach() {
        let w = xalanc_like(1000);
        let machine = crate::config::MachineConfig::core2_duo();
        let reach = machine.itlb.entries as u64 * machine.page_bytes;
        assert!(w.phases[0].spec.code_bytes > reach);
    }

    #[test]
    fn extended_suite_is_valid_and_superset() {
        let base = suite(1000);
        let ext = extended_suite(1000);
        assert_eq!(ext.len(), base.len() + 10);
        let mut names: Vec<&str> = ext.iter().map(|w| w.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ext.len(), "extended names must be unique");
        assert!(ext.iter().all(|w| w.is_valid()));
        // The base suite is a prefix of the extended one.
        for (b, e) in base.iter().zip(ext.iter()) {
            assert_eq!(b.name, e.name);
        }
    }

    #[test]
    fn gemsfdtd_is_the_biggest_footprint() {
        let g = gemsfdtd_like(1000);
        let max_ws = extended_suite(1000)
            .iter()
            .flat_map(|w| w.phases.iter().map(|p| p.spec.data_ws_bytes))
            .max()
            .unwrap();
        assert!(g.phases[0].spec.data_ws_bytes >= max_ws * 8 / 10);
    }

    #[test]
    fn gcc_has_lcp_phase() {
        let w = gcc_like(1000);
        assert!(w.phases.iter().any(|p| p.spec.lcp_frac > 0.05));
    }
}
