//! Dynamic-instruction stream generator.
//!
//! [`InstrStream`] turns a [`PhaseSpec`] into an infinite, seeded,
//! deterministic stream of [`Instr`]s with the spec's statistical character.
//! The stream owns the program counter: instruction fetch walks the code
//! region sequentially and taken branches jump inside it, so instruction-side
//! cache and ITLB behavior emerge from the code footprint rather than being
//! injected directly.

use std::collections::VecDeque;

use mtperf_detsim::SimRng;
use rand::Rng;

use crate::instr::{Instr, InstrKind};
use crate::workload::spec::PhaseSpec;

/// Base virtual address of the small always-hot data region (stack/locals).
pub const HOT_BASE: u64 = 0x1000_0000;
/// Size of the hot region; comfortably inside any L1.
pub const HOT_BYTES: u64 = 4 * 1024;
/// Base virtual address of the main data working set.
pub const DATA_BASE: u64 = 0x2000_0000;
/// Base virtual address of the code region.
pub const CODE_BASE: u64 = 0x4000_0000;
/// How many recent store addresses the generator remembers for
/// store-forwarding reuse.
const STORE_MEMORY: usize = 8;

/// SplitMix64 — cheap stateless hash used to derive stable per-site branch
/// behavior from program-counter values.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// An infinite, deterministic stream of dynamic instructions following a
/// [`PhaseSpec`].
///
/// # Example
///
/// ```
/// use mtperf_sim::workload::{InstrStream, PhaseSpec};
///
/// let spec = PhaseSpec::balanced("demo");
/// let mut stream = InstrStream::new(&spec, 42);
/// let (pc, _instr) = stream.next_instr();
/// assert!(pc >= 0x4000_0000); // inside the code region
/// ```
/// How often (in instructions) the drift walks advance.
const DRIFT_PERIOD: u64 = 2048;

/// Slowly wandering walk states for the effective parameters (see
/// [`PhaseSpec::variability`]): locality, branches, alignment/LCP, ILP,
/// working-set size.
#[derive(Debug, Clone, Copy)]
struct Drift {
    walks: [f64; 5],
}

impl Drift {
    fn new() -> Self {
        Drift { walks: [0.0; 5] }
    }

    fn step(&mut self, rng: &mut SimRng) {
        for w in &mut self.walks {
            *w = (*w + rng.gen_range(-0.25..0.25)).clamp(-1.0, 1.0);
        }
    }
}

/// An infinite, deterministic stream of dynamic instructions following a
/// [`PhaseSpec`]; see the module docs and [`InstrStream::new`].
#[derive(Debug, Clone)]
pub struct InstrStream {
    spec: PhaseSpec,
    rng: SimRng,
    pc: u64,
    seq_pos: u64,
    chase_pos: u64,
    recent_stores: VecDeque<u64>,
    drift: Drift,
    /// Effective (drifted) parameters, refreshed every [`DRIFT_PERIOD`]
    /// instructions.
    eff_hot: f64,
    eff_random_branch: f64,
    eff_misalign: f64,
    eff_lcp: f64,
    eff_ilp: f64,
    eff_ws: u64,
    instr_count: u64,
    /// The hot branch-target set (loop headers, frequently called
    /// functions). Most taken branches land here; the set size grows with
    /// the code footprint, so instruction-side cache/TLB pressure emerges
    /// from large-code profiles while small-code profiles stay resident.
    hot_targets: Vec<u64>,
}

impl InstrStream {
    /// Creates a stream for `spec` seeded with `seed` (same seed, same
    /// stream).
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`PhaseSpec::is_valid`].
    pub fn new(spec: &PhaseSpec, seed: u64) -> Self {
        InstrStream::with_rng(spec, SimRng::seed_from_u64(seed), seed)
    }

    /// Creates a stream drawing from an externally-owned RNG — usually a
    /// [`SimRng::fork`] of a simulation's root seed, so the instruction
    /// stream replays with the run that scripted it. `layout_seed` fixes
    /// the data/code layout (hot branch targets, pointer-chase origin),
    /// which [`InstrStream::new`] derives from its single seed. The draw
    /// sequence is bit-identical to the `SmallRng` this module used before
    /// the workspace RNGs were unified.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`PhaseSpec::is_valid`].
    pub fn with_rng(spec: &PhaseSpec, rng: SimRng, layout_seed: u64) -> Self {
        assert!(spec.is_valid(), "invalid phase spec: {:?}", spec.name);
        let seed = layout_seed;
        // One hot target per KiB of code, clamped: tiny kernels have a
        // handful of loops, huge codes have hundreds of active regions.
        let n_hot = (spec.code_bytes / 1024).clamp(8, 1024);
        let hot_targets = (0..n_hot)
            .map(|i| CODE_BASE + (splitmix64(seed ^ (i << 17)) % (spec.code_bytes / 4)) * 4)
            .collect();
        InstrStream {
            spec: spec.clone(),
            rng,
            pc: CODE_BASE,
            seq_pos: 0,
            chase_pos: splitmix64(seed) % spec.data_ws_bytes,
            recent_stores: VecDeque::with_capacity(STORE_MEMORY),
            drift: Drift::new(),
            eff_hot: spec.hot_fraction,
            eff_random_branch: spec.random_branch_frac,
            eff_misalign: spec.misalign_frac,
            eff_lcp: spec.lcp_frac,
            eff_ilp: spec.ilp,
            eff_ws: spec.data_ws_bytes,
            instr_count: 0,
            hot_targets,
        }
    }

    /// Advances the within-phase drift and refreshes the effective
    /// parameters.
    fn refresh_drift(&mut self) {
        let v = self.spec.variability;
        if v == 0.0 {
            return;
        }
        self.drift.step(&mut self.rng);
        let [locality, branches, align, ilp, ws] = self.drift.walks;
        self.eff_hot = (self.spec.hot_fraction - 0.12 * v * locality).clamp(0.0, 0.99);
        self.eff_random_branch =
            (self.spec.random_branch_frac * (1.0 + v * branches)).clamp(0.0, 1.0);
        self.eff_misalign = (self.spec.misalign_frac * (1.0 + v * align)).clamp(0.0, 1.0);
        self.eff_lcp = (self.spec.lcp_frac * (1.0 + v * align)).clamp(0.0, 1.0);
        // ILP drift is invisible to every counter (the paper's error term);
        // keep its amplitude modest.
        self.eff_ilp = (self.spec.ilp * (1.0 + 0.10 * v * ilp)).max(1.0);
        // Working-set drift decorrelates the TLB from the caches: a working
        // set wandering around the DTLB reach (or the L2 capacity) moves
        // TLB (or L2) miss rates while barely moving L1 behavior.
        let scale = 1.0 + 0.3 * v * ws;
        self.eff_ws = ((self.spec.data_ws_bytes as f64 * scale) as u64).max(4096);
    }

    /// The phase this stream follows.
    pub fn spec(&self) -> &PhaseSpec {
        &self.spec
    }

    /// Produces the next dynamic instruction, returning its fetch address
    /// (program counter) and the instruction itself.
    ///
    /// Whether a PC holds a branch is a *static* property derived by hashing
    /// the PC (as in real code, where branch sites are fixed), so the
    /// predictor sees stable, trainable sites; the remaining instruction
    /// classes are drawn per dynamic instance.
    pub fn next_instr(&mut self) -> (u64, Instr) {
        if self.instr_count.is_multiple_of(DRIFT_PERIOD) {
            self.refresh_drift();
        }
        self.instr_count += 1;
        let pc = self.pc;
        let mix = self.spec.mix;
        // Branch sites are spaced deterministically: every `period` PCs hold
        // exactly one branch (at a per-block hashed offset). Uniform spacing
        // keeps the *dynamic* branch fraction near the spec even when
        // execution concentrates on a few hot loops — geometric placement
        // would let short branch-dense paths dominate.
        let is_branch_pc = if mix.branch > 0.0 {
            let idx = pc / 4;
            let period = (1.0 / mix.branch).round().max(1.0) as u64;
            let block = idx / period;
            idx % period == splitmix64(block ^ 0xB4A2_C0DE) % period
        } else {
            false
        };
        let instr = if is_branch_pc {
            self.gen_branch(pc)
        } else {
            // Renormalize the non-branch classes.
            let rest = (1.0 - mix.branch).max(1e-9);
            let roll: f64 = self.rng.gen::<f64>() * rest;
            if roll < mix.load {
                self.gen_load()
            } else if roll < mix.load + mix.store {
                self.gen_store()
            } else {
                self.gen_other()
            }
        };
        // Advance the PC: taken branches redirect, everything else falls
        // through; wrap inside the code footprint.
        self.pc = match instr.kind {
            InstrKind::Branch {
                taken: true,
                target,
            } => target,
            _ => {
                let next = pc + 4;
                if next >= CODE_BASE + self.spec.code_bytes {
                    CODE_BASE
                } else {
                    next
                }
            }
        };
        (pc, instr)
    }

    /// Samples a dependency distance around the phase's (drifted) mean ILP.
    fn dep_distance(&mut self) -> u32 {
        let ilp = self.eff_ilp;
        let lo = (ilp * 0.75).max(1.0);
        let hi = (ilp * 1.25).max(lo + 1.0);
        self.rng.gen_range(lo..hi).round().max(1.0) as u32
    }

    /// Generates a data address together with its dependence character.
    /// Returns `(addr, dep_distance)`.
    fn data_addr(&mut self) -> (u64, u32) {
        // Hot-region traffic first: always-resident locals.
        if self.rng.gen::<f64>() < self.eff_hot {
            let off = self.rng.gen_range(0..HOT_BYTES / 8) * 8;
            return (HOT_BASE + off, self.dep_distance());
        }
        let ws = self.eff_ws;
        let roll: f64 = self.rng.gen();
        let access = self.spec.access;
        if roll < access.sequential {
            self.seq_pos = (self.seq_pos + access.stride) % ws;
            (DATA_BASE + self.seq_pos, self.dep_distance())
        } else if roll < access.sequential + access.chase {
            // Dependent chain: an LCG walk is as cache-hostile as a real
            // pointer chase, and the dep_distance of 1 encodes the
            // serialization that defeats memory-level parallelism.
            self.chase_pos = self
                .chase_pos
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407)
                % ws;
            ((DATA_BASE + self.chase_pos) & !7, 1)
        } else {
            let off = self.rng.gen_range(0..ws / 8) * 8;
            (DATA_BASE + off, self.dep_distance())
        }
    }

    /// Applies the phase's misalignment discipline to an address.
    fn maybe_misalign(&mut self, addr: u64) -> u64 {
        if self.eff_misalign > 0.0 && self.rng.gen::<f64>() < self.eff_misalign {
            // Odd offsets up to 7 bytes produce misaligned (and, near a line
            // end, line-split) accesses.
            addr + self.rng.gen_range(1..8u64)
        } else {
            addr
        }
    }

    fn gen_load(&mut self) -> Instr {
        // Store-forwarding reuse: read back a recently stored address.
        if !self.recent_stores.is_empty() && self.rng.gen::<f64>() < self.spec.store_reuse_frac {
            let idx = self.rng.gen_range(0..self.recent_stores.len());
            let base = self.recent_stores[idx];
            // Mostly exact-address reads, sometimes partial overlaps.
            let addr = if self.rng.gen::<f64>() < 0.3 {
                base + 2
            } else {
                base
            };
            return Instr {
                kind: InstrKind::Load { addr, size: 8 },
                dep_distance: self.dep_distance(),
            };
        }
        let (addr, dep) = self.data_addr();
        let addr = self.maybe_misalign(addr);
        Instr {
            kind: InstrKind::Load { addr, size: 8 },
            dep_distance: dep,
        }
    }

    fn gen_store(&mut self) -> Instr {
        let (addr, dep) = self.data_addr();
        let addr = self.maybe_misalign(addr);
        if self.recent_stores.len() == STORE_MEMORY {
            self.recent_stores.pop_front();
        }
        self.recent_stores.push_back(addr);
        Instr {
            kind: InstrKind::Store { addr, size: 8 },
            dep_distance: dep,
        }
    }

    fn gen_branch(&mut self, pc: u64) -> Instr {
        // Quantize the PC onto `branch_sites` stable predictor-visible
        // sites; the site hash then fixes the site's direction bias, so the
        // predictor can learn it (or not, for the data-dependent sites).
        let sites = self.spec.branch_sites as u64;
        let site = splitmix64(pc) % sites;
        let h = splitmix64(site.wrapping_mul(0x5851_F42D_4C95_7F2D));
        // Deterministic split of sites into unpredictable vs biased: the
        // first `random_branch_frac` of site indices are data-dependent, so
        // the realized fraction tracks the spec instead of hash luck.
        let unpredictable = (site as f64 + 0.5) / (sites as f64) < self.eff_random_branch;
        let bias = if unpredictable {
            0.5
        } else if h & (1 << 40) != 0 {
            0.97
        } else {
            0.03
        };
        let taken = self.rng.gen::<f64>() < bias;
        // Direct branches have a fixed, site-determined target drawn from
        // the hot set; a minority are indirect/far jumps landing anywhere in
        // the code region.
        let hot_jump = ((h >> 20) % 10_000) as f64 / 10_000.0 < self.spec.code_locality;
        let target = if hot_jump {
            let idx = (splitmix64(site ^ 0xB10C_0FF5) as usize) % self.hot_targets.len();
            self.hot_targets[idx]
        } else {
            CODE_BASE + self.rng.gen_range(0..self.spec.code_bytes / 4) * 4
        };
        Instr {
            kind: InstrKind::Branch { taken, target },
            dep_distance: self.dep_distance(),
        }
    }

    fn gen_other(&mut self) -> Instr {
        let lcp = self.eff_lcp > 0.0 && self.rng.gen::<f64>() < self.eff_lcp;
        Instr {
            kind: InstrKind::Other { lcp },
            dep_distance: self.dep_distance(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::spec::{AccessMix, InstrMix};

    fn count_kinds(spec: &PhaseSpec, n: usize, seed: u64) -> (usize, usize, usize, usize) {
        let mut s = InstrStream::new(spec, seed);
        let (mut ld, mut st, mut br, mut ot) = (0, 0, 0, 0);
        for _ in 0..n {
            let (_, i) = s.next_instr();
            match i.kind {
                InstrKind::Load { .. } => ld += 1,
                InstrKind::Store { .. } => st += 1,
                InstrKind::Branch { .. } => br += 1,
                InstrKind::Other { .. } => ot += 1,
            }
        }
        (ld, st, br, ot)
    }

    #[test]
    fn mix_fractions_are_respected() {
        let spec = PhaseSpec::balanced("p");
        let n = 100_000;
        let (ld, st, br, ot) = count_kinds(&spec, n, 7);
        let f = |c: usize| c as f64 / n as f64;
        // Branch-ness is a static property of PCs with hot-loop
        // concentration, so the realized dynamic branch fraction carries
        // extra variance; allow a wider margin there (and on the classes
        // renormalized against it).
        assert!((f(br) - spec.mix.branch).abs() < 0.08, "br = {}", f(br));
        assert!((f(ld) - spec.mix.load).abs() < 0.05, "ld = {}", f(ld));
        assert!((f(st) - spec.mix.store).abs() < 0.05, "st = {}", f(st));
        assert!((f(ot) - spec.mix.other()).abs() < 0.08, "ot = {}", f(ot));
    }

    #[test]
    fn same_seed_same_stream() {
        let spec = PhaseSpec::balanced("p");
        let mut a = InstrStream::new(&spec, 99);
        let mut b = InstrStream::new(&spec, 99);
        for _ in 0..1000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let spec = PhaseSpec::balanced("p");
        let mut a = InstrStream::new(&spec, 1);
        let mut b = InstrStream::new(&spec, 2);
        let mut same = 0;
        for _ in 0..100 {
            if a.next_instr() == b.next_instr() {
                same += 1;
            }
        }
        assert!(same < 90);
    }

    #[test]
    fn chase_loads_have_dep_distance_one() {
        let mut spec = PhaseSpec::balanced("p");
        spec.hot_fraction = 0.0;
        spec.variability = 0.0;
        spec.access = AccessMix {
            sequential: 0.0,
            chase: 1.0,
            stride: 64,
        };
        spec.store_reuse_frac = 0.0;
        spec.misalign_frac = 0.0;
        let mut s = InstrStream::new(&spec, 5);
        for _ in 0..10_000 {
            let (_, i) = s.next_instr();
            if i.is_load() {
                assert_eq!(i.dep_distance, 1);
            }
        }
    }

    #[test]
    fn addresses_stay_inside_regions() {
        let spec = PhaseSpec::balanced("p");
        let ws = spec.data_ws_bytes;
        let code = spec.code_bytes;
        let mut s = InstrStream::new(&spec, 3);
        for _ in 0..50_000 {
            let (pc, i) = s.next_instr();
            assert!(pc >= CODE_BASE && pc < CODE_BASE + code, "pc {pc:#x}");
            if let Some((addr, size, _)) = i.mem_access() {
                let hot = addr >= HOT_BASE && addr + size as u64 <= HOT_BASE + HOT_BYTES + 16;
                // Working-set drift can stretch the region by up to
                // 1 + 0.5 * variability.
                let limit = (ws as f64 * 1.2) as u64 + 16;
                let data = addr >= DATA_BASE && addr < DATA_BASE + limit;
                assert!(hot || data, "addr {addr:#x}");
            }
        }
    }

    #[test]
    fn misalign_fraction_approximate() {
        let mut spec = PhaseSpec::balanced("p");
        spec.misalign_frac = 0.5;
        spec.variability = 0.0;
        spec.store_reuse_frac = 0.0;
        let mut s = InstrStream::new(&spec, 11);
        let mut mem = 0usize;
        let mut misaligned = 0usize;
        for _ in 0..100_000 {
            let (_, i) = s.next_instr();
            if let Some((addr, _, _)) = i.mem_access() {
                mem += 1;
                if addr % 8 != 0 {
                    misaligned += 1;
                }
            }
        }
        let frac = misaligned as f64 / mem as f64;
        assert!((frac - 0.5).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn lcp_fraction_applies_to_other_instructions() {
        let mut spec = PhaseSpec::balanced("p");
        spec.lcp_frac = 0.4;
        spec.variability = 0.0;
        let mut s = InstrStream::new(&spec, 13);
        let mut other = 0usize;
        let mut lcp = 0usize;
        for _ in 0..100_000 {
            let (_, i) = s.next_instr();
            if let InstrKind::Other { lcp: l } = i.kind {
                other += 1;
                if l {
                    lcp += 1;
                }
            }
        }
        let frac = lcp as f64 / other as f64;
        assert!((frac - 0.4).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn store_reuse_produces_overlapping_loads() {
        let mut spec = PhaseSpec::balanced("p");
        spec.store_reuse_frac = 1.0;
        spec.mix = InstrMix {
            load: 0.4,
            store: 0.4,
            branch: 0.1,
        };
        let mut s = InstrStream::new(&spec, 17);
        let mut stores: Vec<u64> = Vec::new();
        let mut reused = 0usize;
        let mut loads = 0usize;
        for _ in 0..10_000 {
            let (_, i) = s.next_instr();
            match i.kind {
                InstrKind::Store { addr, .. } => stores.push(addr),
                InstrKind::Load { addr, .. } => {
                    loads += 1;
                    if stores
                        .iter()
                        .rev()
                        .take(16)
                        .any(|&sa| addr == sa || addr == sa + 2)
                    {
                        reused += 1;
                    }
                }
                _ => {}
            }
        }
        assert!(reused as f64 / loads as f64 > 0.8);
    }

    #[test]
    #[should_panic(expected = "invalid phase spec")]
    fn rejects_invalid_spec() {
        let mut spec = PhaseSpec::balanced("bad");
        spec.ilp = 0.0;
        let _ = InstrStream::new(&spec, 0);
    }
}
