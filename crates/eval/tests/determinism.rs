//! Determinism under parallelism: every thread budget must produce
//! bit-identical models and metrics. These are the tentpole guarantees the
//! `--threads` flag documents — parallelism changes wall time, never results.

use mtperf_eval::{cross_validate_with, repeated_cv_with};
use mtperf_linalg::Parallelism;
use mtperf_mtree::{Dataset, M5Learner, M5Params, ModelTree};

/// A two-regime dataset large enough to force real splits and leaf models.
fn dataset() -> Dataset {
    let names: Vec<String> = (0..6).map(|j| format!("e{j}")).collect();
    let mut data = Dataset::new(names).unwrap();
    let mut state = 0xD1CE_5EEDu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..400 {
        let row: Vec<f64> = (0..6).map(|_| next() * 4.0).collect();
        let y = if row[0] <= 2.0 {
            0.5 + 0.8 * row[1] + 0.1 * row[3]
        } else {
            6.0 - 0.5 * row[2]
        } + (next() - 0.5) * 0.05;
        data.push_row(&row, y).unwrap();
    }
    data
}

#[test]
fn tree_render_is_identical_at_any_thread_count() {
    let data = dataset();
    let base = M5Params::default().with_min_instances(15);
    let serial = ModelTree::fit(&data, &base.clone().with_parallelism(Parallelism::Off))
        .unwrap()
        .render("CPI");
    for par in [
        Parallelism::Fixed(1),
        Parallelism::Fixed(4),
        Parallelism::Auto,
    ] {
        let tree = ModelTree::fit(&data, &base.clone().with_parallelism(par)).unwrap();
        assert_eq!(tree.render("CPI"), serial, "parallelism = {par}");
    }
}

#[test]
fn cv_metrics_are_identical_at_any_thread_count() {
    let data = dataset();
    let learner = M5Learner::new(M5Params::default().with_min_instances(15));
    let serial = cross_validate_with(&learner, &data, 10, 2007, Parallelism::Off).unwrap();
    for threads in [1, 2, 4, 8] {
        let par =
            cross_validate_with(&learner, &data, 10, 2007, Parallelism::Fixed(threads)).unwrap();
        assert_eq!(par.aggregate, serial.aggregate, "threads = {threads}");
        assert_eq!(par.pooled, serial.pooled, "threads = {threads}");
        assert_eq!(par.scatter(), serial.scatter(), "threads = {threads}");
    }
    let auto = cross_validate_with(&learner, &data, 10, 2007, Parallelism::Auto).unwrap();
    assert_eq!(auto.pooled, serial.pooled);
}

#[test]
fn repeated_cv_is_identical_at_any_thread_count() {
    let data = dataset();
    let learner = M5Learner::new(M5Params::default().with_min_instances(25));
    let serial = repeated_cv_with(&learner, &data, 5, 3, 11, Parallelism::Off).unwrap();
    let par = repeated_cv_with(&learner, &data, 5, 3, 11, Parallelism::Fixed(4)).unwrap();
    assert_eq!(par.repeats, serial.repeats);
    assert_eq!(par.correlation, serial.correlation);
    assert_eq!(par.mae, serial.mae);
    assert_eq!(par.rae_percent, serial.rae_percent);
}

#[test]
fn fully_parallel_stack_matches_fully_serial_stack() {
    // Parallel split scan inside parallel folds: the nested case.
    let data = dataset();
    let serial_learner = M5Learner::new(
        M5Params::default()
            .with_min_instances(15)
            .with_parallelism(Parallelism::Off),
    );
    let par_learner = M5Learner::new(
        M5Params::default()
            .with_min_instances(15)
            .with_parallelism(Parallelism::Fixed(4)),
    );
    let serial = cross_validate_with(&serial_learner, &data, 6, 3, Parallelism::Off).unwrap();
    let par = cross_validate_with(&par_learner, &data, 6, 3, Parallelism::Fixed(3)).unwrap();
    assert_eq!(par.pooled, serial.pooled);
    for (a, b) in par.folds.iter().zip(serial.folds.iter()) {
        assert_eq!(a.predicted, b.predicted);
    }
}
