//! Text report formatting for comparisons and figure data.

use std::fmt::Write as _;

use crate::Metrics;

/// Formats a learner-comparison table (the shape of the paper's §V.B
/// comparison against ANN and SVM).
///
/// # Example
///
/// ```
/// use mtperf_eval::{comparison_table, Metrics};
///
/// let m = Metrics::compute(&[1.0, 2.0], &[1.0, 2.0]).unwrap();
/// let table = comparison_table(&[("M5'".to_string(), m)]);
/// assert!(table.contains("M5'"));
/// assert!(table.contains("Correlation"));
/// ```
pub fn comparison_table(rows: &[(String, Metrics)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "Algorithm", "Correlation", "MAE", "RAE %", "RMSE", "RRSE %"
    );
    let _ = writeln!(out, "{}", "-".repeat(90));
    for (name, m) in rows {
        let _ = writeln!(
            out,
            "{:<34} {:>12.4} {:>10.4} {:>10.2} {:>10.4} {:>10.2}",
            name, m.correlation, m.mae, m.rae_percent, m.rmse, m.rrse_percent
        );
    }
    out
}

/// Formats `(actual, predicted)` pairs as a two-column CSV — the data series
/// behind the paper's Figure 3 scatter.
pub fn scatter_csv(pairs: &[(f64, f64)]) -> String {
    let mut out = String::from("actual,predicted\n");
    for (a, p) in pairs {
        let _ = writeln!(out, "{a},{p}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_all_rows() {
        let m = Metrics::compute(&[1.0, 2.0, 3.0], &[1.1, 2.1, 2.9]).unwrap();
        let t = comparison_table(&[("A".to_string(), m), ("B with long name".to_string(), m)]);
        assert!(t.contains("A "));
        assert!(t.contains("B with long name"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn scatter_csv_format() {
        let csv = scatter_csv(&[(1.0, 1.5), (2.0, 1.9)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "actual,predicted");
        assert_eq!(lines[1], "1,1.5");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn empty_scatter_has_header_only() {
        assert_eq!(scatter_csv(&[]), "actual,predicted\n");
    }
}
