//! Per-label error breakdown: which workloads the model predicts well and
//! which it struggles on — the diagnostic behind Figure 3's outliers.

use std::collections::BTreeMap;

use mtperf_mtree::{Dataset, Predictor};

use crate::Metrics;

/// Computes metrics separately for each label (e.g. workload name).
///
/// Labels with fewer than 2 instances are still included (their correlation
/// is reported as 0 when undefined).
///
/// # Panics
///
/// Panics if `labels.len() != data.n_rows()`.
pub fn per_label_metrics(
    model: &dyn Predictor,
    data: &Dataset,
    labels: &[String],
) -> BTreeMap<String, Metrics> {
    assert_eq!(labels.len(), data.n_rows(), "one label per row");
    // One batch prediction over the whole dataset (compiled path for model
    // trees), then group by label.
    let predicted = model.predict_batch(&data.to_matrix());
    let mut groups: BTreeMap<&str, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for (i, label) in labels.iter().enumerate() {
        let entry = groups.entry(label.as_str()).or_default();
        entry.0.push(data.target(i));
        entry.1.push(predicted[i]);
    }
    groups
        .into_iter()
        .map(|(label, (actual, predicted))| {
            let m = Metrics::compute(&actual, &predicted)
                .expect("every label group holds at least the row that created it");
            (label.to_string(), m)
        })
        .collect()
}

/// Formats a per-label breakdown table, worst RAE first.
pub fn breakdown_table(breakdown: &BTreeMap<String, Metrics>) -> String {
    use std::fmt::Write as _;
    let mut rows: Vec<(&String, &Metrics)> = breakdown.iter().collect();
    // total_cmp: an undefined RAE (degenerate group) sorts deterministically
    // instead of panicking the report.
    rows.sort_by(|a, b| b.1.rae_percent.total_cmp(&a.1.rae_percent));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<26} {:>6} {:>10} {:>10} {:>8}",
        "label", "n", "C", "MAE", "RAE %"
    );
    let _ = writeln!(out, "{}", "-".repeat(64));
    for (label, m) in rows {
        let _ = writeln!(
            out,
            "{:<26} {:>6} {:>10.4} {:>10.4} {:>8.2}",
            label, m.n, m.correlation, m.mae, m.rae_percent
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtperf_mtree::{Learner, M5Learner, M5Params};

    fn fixture() -> (Dataset, Vec<String>) {
        let mut rows: Vec<[f64; 1]> = Vec::new();
        let mut ys = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            rows.push([i as f64]);
            ys.push(2.0 * i as f64);
            labels.push(if i % 2 == 0 {
                "even".into()
            } else {
                "odd".into()
            });
        }
        (
            Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap(),
            labels,
        )
    }

    #[test]
    fn groups_and_counts() {
        let (d, labels) = fixture();
        let model = M5Learner::new(M5Params::default()).fit(&d).unwrap();
        let breakdown = per_label_metrics(model.as_ref(), &d, &labels);
        assert_eq!(breakdown.len(), 2);
        assert_eq!(breakdown["even"].n, 30);
        assert_eq!(breakdown["odd"].n, 30);
        assert!(breakdown["even"].correlation > 0.99);
    }

    #[test]
    fn table_sorts_worst_first() {
        let (d, labels) = fixture();
        let model = M5Learner::new(M5Params::default()).fit(&d).unwrap();
        let breakdown = per_label_metrics(model.as_ref(), &d, &labels);
        let table = breakdown_table(&breakdown);
        assert!(table.contains("even"));
        assert!(table.contains("odd"));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn label_length_checked() {
        let (d, _) = fixture();
        let model = M5Learner::new(M5Params::default()).fit(&d).unwrap();
        per_label_metrics(model.as_ref(), &d, &[]);
    }
}
