//! Repeated cross validation: n independent k-fold runs with different
//! shuffles, reporting the spread of the aggregate metrics. A single 10-fold
//! number (the paper's protocol) carries shuffle luck; the repeat spread
//! quantifies it.

use serde::{Deserialize, Serialize};

use mtperf_linalg::parallel::{self, try_par_map, Parallelism};
use mtperf_linalg::stats;
use mtperf_mtree::{Dataset, Learner, MtreeError};

use crate::{cross_validate_with, Metrics};

/// Mean and standard deviation of a metric over repeated CV runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spread {
    /// Mean over repeats.
    pub mean: f64,
    /// Sample standard deviation over repeats.
    pub sd: f64,
}

impl Spread {
    fn of(values: &[f64]) -> Spread {
        Spread {
            mean: stats::mean(values),
            sd: stats::sample_variance(values).sqrt(),
        }
    }
}

/// Result of repeated cross validation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepeatedCv {
    /// The pooled metrics of every repeat.
    pub repeats: Vec<Metrics>,
    /// Total folds skipped (degenerate data) across every repeat; 0 on
    /// healthy data.
    pub skipped_folds: usize,
    /// Spread of the correlation coefficient.
    pub correlation: Spread,
    /// Spread of the MAE.
    pub mae: Spread,
    /// Spread of the RAE (percent).
    pub rae_percent: Spread,
}

/// Runs `repeats` independent k-fold cross validations (seeds
/// `seed, seed+1, …`) and summarizes the spread. Each repeat scores its
/// held-out folds through the compiled batch path (bit-identical to the
/// per-row walk), so repeated CV inherits the fast path for free.
///
/// # Errors
///
/// Returns [`MtreeError::BadParams`] when `repeats == 0` and propagates
/// [`cross_validate`] errors.
pub fn repeated_cv(
    learner: &dyn Learner,
    data: &Dataset,
    k: usize,
    repeats: usize,
    seed: u64,
) -> Result<RepeatedCv, MtreeError> {
    repeated_cv_with(learner, data, k, repeats, seed, parallel::global())
}

/// [`repeated_cv`] with an explicit thread budget.
///
/// Repeats run concurrently (each an independent seeded shuffle) and merge
/// in seed order; any inner parallel section runs serially inside a worker,
/// so results are bit-identical to the serial run at any setting.
///
/// # Errors
///
/// Same as [`repeated_cv`].
pub fn repeated_cv_with(
    learner: &dyn Learner,
    data: &Dataset,
    k: usize,
    repeats: usize,
    seed: u64,
    par: Parallelism,
) -> Result<RepeatedCv, MtreeError> {
    if repeats == 0 {
        return Err(MtreeError::BadParams("repeats must be >= 1".into()));
    }
    let seeds: Vec<u64> = (0..repeats).map(|r| seed + r as u64).collect();
    let runs = try_par_map(par, &seeds, 1, |&s| {
        let mut repeat_span = mtperf_obs::span_idx("repeat", (s - seed) as usize);
        let run =
            cross_validate_with(learner, data, k, s, par).map(|cv| (cv.pooled, cv.skipped.len()));
        if let Ok((_, skipped)) = &run {
            repeat_span.add("folds_skipped", *skipped as u64);
        }
        run
    })
    .map_err(MtreeError::from)?
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    let skipped_folds = runs.iter().map(|(_, s)| s).sum();
    let metrics: Vec<Metrics> = runs.into_iter().map(|(m, _)| m).collect();
    let corr: Vec<f64> = metrics.iter().map(|m| m.correlation).collect();
    let mae: Vec<f64> = metrics.iter().map(|m| m.mae).collect();
    let rae: Vec<f64> = metrics.iter().map(|m| m.rae_percent).collect();
    Ok(RepeatedCv {
        correlation: Spread::of(&corr),
        mae: Spread::of(&mae),
        rae_percent: Spread::of(&rae),
        skipped_folds,
        repeats: metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtperf_mtree::{M5Learner, M5Params};

    fn data() -> Dataset {
        let rows: Vec<[f64; 1]> = (0..150).map(|i| [i as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 1.0).collect();
        Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap()
    }

    #[test]
    fn runs_all_repeats() {
        let learner = M5Learner::new(M5Params::default());
        let r = repeated_cv(&learner, &data(), 5, 3, 7).unwrap();
        assert_eq!(r.repeats.len(), 3);
        assert!(r.correlation.mean > 0.99);
        assert!(r.correlation.sd >= 0.0);
        assert!(r.rae_percent.mean < 5.0);
    }

    #[test]
    fn parallel_repeats_match_serial_bit_for_bit() {
        let learner = M5Learner::new(M5Params::default());
        let serial = repeated_cv_with(&learner, &data(), 5, 4, 7, Parallelism::Off).unwrap();
        for threads in [2, 4, 8] {
            let par =
                repeated_cv_with(&learner, &data(), 5, 4, 7, Parallelism::Fixed(threads)).unwrap();
            assert_eq!(par.repeats, serial.repeats, "threads = {threads}");
            assert_eq!(par.correlation, serial.correlation);
            assert_eq!(par.mae, serial.mae);
            assert_eq!(par.rae_percent, serial.rae_percent);
        }
    }

    #[test]
    fn zero_repeats_rejected() {
        let learner = M5Learner::new(M5Params::default());
        assert!(repeated_cv(&learner, &data(), 5, 0, 7).is_err());
    }

    #[test]
    fn single_repeat_has_zero_sd() {
        let learner = M5Learner::new(M5Params::default());
        let r = repeated_cv(&learner, &data(), 5, 1, 7).unwrap();
        assert_eq!(r.mae.sd, 0.0);
    }
}
