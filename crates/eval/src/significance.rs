//! Paired significance testing for learner comparisons.
//!
//! "A beats B by 0.3 % RAE" means little without knowing the fold-to-fold
//! spread. [`paired_t_test`] runs both learners on identical folds and tests
//! the per-fold MAE differences with a paired Student's t — the standard
//! check the paper's comparison table leaves implicit.

use serde::{Deserialize, Serialize};

use mtperf_linalg::stats;
use mtperf_mtree::{Dataset, Learner, MtreeError};

use crate::cross_validate;

/// Result of a paired t-test between two learners over shared CV folds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairedTTest {
    /// Number of folds (pairs).
    pub n: usize,
    /// Mean per-fold MAE difference (A − B); negative favors A.
    pub mean_difference: f64,
    /// The t statistic (0.0 when the differences have no variance).
    pub t_statistic: f64,
    /// Two-sided significance at the 5 % level (|t| exceeds the critical
    /// value for n−1 degrees of freedom).
    pub significant_at_5pct: bool,
}

/// Two-sided 5 % critical values of Student's t for 1..=30 degrees of
/// freedom (standard table values).
const T_CRIT_5PCT: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

fn t_critical(df: usize) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        T_CRIT_5PCT[df - 1]
    } else {
        1.96 // normal approximation
    }
}

/// Cross-validates both learners on identical folds and t-tests the
/// per-fold MAE differences.
///
/// # Errors
///
/// Propagates [`cross_validate`] errors.
pub fn paired_t_test(
    a: &dyn Learner,
    b: &dyn Learner,
    data: &Dataset,
    k: usize,
    seed: u64,
) -> Result<PairedTTest, MtreeError> {
    let cv_a = cross_validate(a, data, k, seed)?;
    let cv_b = cross_validate(b, data, k, seed)?;
    let diffs: Vec<f64> = cv_a
        .folds
        .iter()
        .zip(&cv_b.folds)
        .map(|(fa, fb)| fa.metrics.mae - fb.metrics.mae)
        .collect();
    let n = diffs.len();
    let mean = stats::mean(&diffs);
    let sd = stats::sample_variance(&diffs).sqrt();
    let t = if sd > 0.0 {
        mean / (sd / (n as f64).sqrt())
    } else {
        0.0
    };
    Ok(PairedTTest {
        n,
        mean_difference: mean,
        t_statistic: t,
        significant_at_5pct: t.abs() > t_critical(n.saturating_sub(1)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtperf_mtree::{M5Learner, M5Params, Predictor};

    /// A deliberately bad learner: always predicts 0.
    struct Zero;
    struct ZeroModel;
    impl Predictor for ZeroModel {
        fn predict(&self, _row: &[f64]) -> f64 {
            0.0
        }
    }
    impl Learner for Zero {
        fn fit(&self, _data: &Dataset) -> Result<Box<dyn Predictor>, MtreeError> {
            Ok(Box::new(ZeroModel))
        }
        fn name(&self) -> &str {
            "zero"
        }
    }

    fn data() -> Dataset {
        let rows: Vec<[f64; 1]> = (0..200).map(|i| [i as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 5.0).collect();
        Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap()
    }

    #[test]
    fn detects_a_clear_winner() {
        let m5 = M5Learner::new(M5Params::default());
        let t = paired_t_test(&m5, &Zero, &data(), 10, 3).unwrap();
        assert_eq!(t.n, 10);
        assert!(t.mean_difference < 0.0, "M5 must have lower MAE");
        assert!(t.significant_at_5pct, "{t:?}");
    }

    #[test]
    fn identical_learners_are_not_significant() {
        let m5 = M5Learner::new(M5Params::default());
        let t = paired_t_test(&m5, &m5, &data(), 10, 3).unwrap();
        assert_eq!(t.mean_difference, 0.0);
        assert!(!t.significant_at_5pct);
        assert_eq!(t.t_statistic, 0.0);
    }

    #[test]
    fn critical_values_monotone() {
        assert!(t_critical(1) > t_critical(2));
        assert!(t_critical(30) > t_critical(31));
        assert_eq!(t_critical(100), 1.96);
        assert!(t_critical(0).is_infinite());
    }
}
