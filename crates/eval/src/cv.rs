//! Seeded k-fold cross validation and train/test splitting.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use mtperf_linalg::parallel::{self, try_par_map, Parallelism};
use mtperf_mtree::{Dataset, Learner, MtreeError};

use crate::Metrics;

/// Result of evaluating one fold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FoldResult {
    /// Fold number (0-based).
    pub fold: usize,
    /// Metrics on the held-out instances.
    pub metrics: Metrics,
    /// Held-out actual values.
    pub actual: Vec<f64>,
    /// Predictions for the held-out instances.
    pub predicted: Vec<f64>,
}

/// A fold that could not be scored (degenerate training data or an empty
/// evaluation set) and was recorded instead of aborting the run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkippedFold {
    /// Fold number (0-based).
    pub fold: usize,
    /// Why the fold was skipped.
    pub reason: String,
}

/// Result of a full k-fold cross validation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CvResult {
    /// Per-fold results (scored folds only; see [`CvResult::skipped`]).
    pub folds: Vec<FoldResult>,
    /// Folds that produced no metrics, with the reason for each. Empty on
    /// healthy data; the run aborts only when *every* fold is skipped.
    pub skipped: Vec<SkippedFold>,
    /// Number of scored folds whose correlation was undefined (constant
    /// actuals or predictions) and therefore excluded from the aggregate
    /// correlation mean.
    pub undefined_correlation_folds: usize,
    /// Instance-weighted aggregate metrics (the numbers the paper reports).
    pub aggregate: Metrics,
    /// Metrics computed over the pooled out-of-fold predictions — exactly
    /// the population plotted in the paper's Figure 3.
    pub pooled: Metrics,
}

impl CvResult {
    /// All out-of-fold `(actual, predicted)` pairs, pooled — the series of
    /// the paper's predicted-vs-actual scatter (Figure 3).
    pub fn scatter(&self) -> Vec<(f64, f64)> {
        self.folds
            .iter()
            .flat_map(|f| f.actual.iter().copied().zip(f.predicted.iter().copied()))
            .collect()
    }
}

/// Per-fold worker verdict: scored, or recorded as skipped.
enum FoldOutcome {
    Scored(FoldResult),
    Skipped(SkippedFold),
}

/// Seeded Fisher–Yates shuffle of `0..n`.
fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// k-fold cross validation: shuffle once (seeded), cut into `k` near-equal
/// folds, train on `k−1`, evaluate on the held-out fold, and aggregate —
/// the paper's 10-fold protocol (its reference \[24\]).
///
/// # Errors
///
/// Returns [`MtreeError::BadParams`] when `k < 2` or `k > n`, and
/// propagates learner failures.
pub fn cross_validate(
    learner: &dyn Learner,
    data: &Dataset,
    k: usize,
    seed: u64,
) -> Result<CvResult, MtreeError> {
    cross_validate_with(learner, data, k, seed, parallel::global())
}

/// [`cross_validate`] with an explicit thread budget.
///
/// Folds train concurrently (each on its own training subset) and results
/// merge in fold order, so the returned [`CvResult`] is bit-identical to the
/// serial run at any [`Parallelism`] setting. Fold workers are
/// panic-isolated: a learner that panics on some fold surfaces as
/// [`MtreeError::Linalg`] (worker panic) instead of unwinding through the
/// caller or aborting sibling folds.
///
/// # Errors
///
/// Same as [`cross_validate`], plus a structured error when a fold worker
/// panics.
pub fn cross_validate_with(
    learner: &dyn Learner,
    data: &Dataset,
    k: usize,
    seed: u64,
    par: Parallelism,
) -> Result<CvResult, MtreeError> {
    let n = data.n_rows();
    if k < 2 || k > n {
        return Err(MtreeError::BadParams(format!(
            "k must be in 2..=n (k={k}, n={n})"
        )));
    }
    let mut cv_span = mtperf_obs::span("cv");
    cv_span.annotate_num("k", k as f64);
    cv_span.annotate_num("rows", n as f64);
    let order = shuffled_indices(n, seed);
    let fold_ids: Vec<usize> = (0..k).collect();
    let outcomes = try_par_map(
        par,
        &fold_ids,
        1,
        |&fold| -> Result<FoldOutcome, MtreeError> {
            let mut fold_span = mtperf_obs::span_idx("fold", fold);
            // Fold f takes every k-th element: near-equal sizes, one pass.
            let test_idx: Vec<usize> = order.iter().copied().skip(fold).step_by(k).collect();
            let train_idx: Vec<usize> = order
                .iter()
                .copied()
                .enumerate()
                .filter(|(pos, _)| pos % k != fold)
                .map(|(_, i)| i)
                .collect();
            fold_span.add("train_rows", train_idx.len() as u64);
            fold_span.add("test_rows", test_idx.len() as u64);
            let train = data.subset(&train_idx);
            // A fold whose training subset is degenerate is recorded and
            // skipped; any other learner failure still aborts the run.
            let model = match learner.fit(&train) {
                Ok(m) => m,
                Err(MtreeError::DegenerateData(msg)) => {
                    fold_span.annotate("skipped", &msg);
                    return Ok(FoldOutcome::Skipped(SkippedFold {
                        fold,
                        reason: format!("degenerate training data: {msg}"),
                    }));
                }
                Err(e) => return Err(e),
            };
            let actual: Vec<f64> = test_idx.iter().map(|&i| data.target(i)).collect();
            // Batch scoring through the compiled path (bit-identical to the
            // per-row walk); nested parallel calls self-serialize, so fold
            // results stay deterministic.
            let predicted = model.predict_batch(&data.matrix_of(&test_idx));
            // An unscorable evaluation set (e.g. empty after quarantine) is
            // likewise a skip, not an abort.
            match Metrics::compute(&actual, &predicted) {
                Ok(metrics) => Ok(FoldOutcome::Scored(FoldResult {
                    fold,
                    metrics,
                    actual,
                    predicted,
                })),
                Err(e) => {
                    let reason = e.to_string();
                    fold_span.annotate("skipped", &reason);
                    Ok(FoldOutcome::Skipped(SkippedFold { fold, reason }))
                }
            }
        },
    )
    .map_err(MtreeError::from)?;
    let mut folds = Vec::with_capacity(k);
    let mut skipped = Vec::new();
    for outcome in outcomes {
        match outcome? {
            FoldOutcome::Scored(f) => folds.push(f),
            FoldOutcome::Skipped(s) => skipped.push(s),
        }
    }
    if folds.is_empty() {
        return Err(MtreeError::DegenerateData(format!(
            "all {k} folds were skipped (first: fold {}: {})",
            skipped[0].fold, skipped[0].reason
        )));
    }
    let fold_metrics: Vec<Metrics> = folds.iter().map(|f| f.metrics).collect();
    let undefined_correlation_folds = fold_metrics
        .iter()
        .filter(|m| !m.correlation_defined)
        .count();
    let aggregate =
        Metrics::aggregate(&fold_metrics).expect("at least one scored fold is guaranteed above");
    let (all_a, all_p): (Vec<f64>, Vec<f64>) = folds
        .iter()
        .flat_map(|f| f.actual.iter().copied().zip(f.predicted.iter().copied()))
        .unzip();
    let pooled = Metrics::compute(&all_a, &all_p)?;
    cv_span.add("folds_scored", folds.len() as u64);
    cv_span.add("folds_skipped", skipped.len() as u64);
    drop(cv_span);
    Ok(CvResult {
        folds,
        skipped,
        undefined_correlation_folds,
        aggregate,
        pooled,
    })
}

/// Seeded random train/test split; `test_fraction` of instances go to the
/// test set (at least one instance in each side).
///
/// # Errors
///
/// Returns [`MtreeError::BadParams`] for fractions outside `(0, 1)` or
/// datasets with fewer than 2 rows.
pub fn train_test_split(
    data: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset), MtreeError> {
    let n = data.n_rows();
    if n < 2 {
        return Err(MtreeError::BadParams("need at least 2 rows".into()));
    }
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
        return Err(MtreeError::BadParams(
            "test_fraction must be in (0, 1)".into(),
        ));
    }
    let order = shuffled_indices(n, seed);
    let n_test = ((n as f64 * test_fraction).round() as usize).clamp(1, n - 1);
    let test = data.subset(&order[..n_test]);
    let train = data.subset(&order[n_test..]);
    Ok((train, test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtperf_mtree::{M5Learner, M5Params};

    fn data(n: usize) -> Dataset {
        let rows: Vec<[f64; 1]> = (0..n).map(|i| [i as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] + 1.0).collect();
        Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap()
    }

    #[test]
    fn folds_partition_data() {
        let d = data(53);
        let learner = M5Learner::new(M5Params::default());
        let cv = cross_validate(&learner, &d, 10, 7).unwrap();
        assert_eq!(cv.folds.len(), 10);
        let total: usize = cv.folds.iter().map(|f| f.actual.len()).sum();
        assert_eq!(total, 53);
        // Near-equal fold sizes.
        for f in &cv.folds {
            assert!((5..=6).contains(&f.actual.len()));
        }
        assert_eq!(cv.aggregate.n, 53);
        assert_eq!(cv.pooled.n, 53);
        assert_eq!(cv.scatter().len(), 53);
    }

    #[test]
    fn linear_data_cross_validates_perfectly() {
        let d = data(100);
        let learner = M5Learner::new(M5Params::default());
        let cv = cross_validate(&learner, &d, 10, 1).unwrap();
        assert!(cv.aggregate.correlation > 0.999);
        assert!(cv.aggregate.rae_percent < 1.0);
        assert!(cv.pooled.correlation > 0.999);
    }

    #[test]
    fn deterministic_under_seed() {
        let d = data(40);
        let learner = M5Learner::new(M5Params::default());
        let a = cross_validate(&learner, &d, 5, 9).unwrap();
        let b = cross_validate(&learner, &d, 5, 9).unwrap();
        assert_eq!(a.aggregate, b.aggregate);
        let c = cross_validate(&learner, &d, 5, 10).unwrap();
        // Different shuffles -> (almost surely) different fold contents.
        assert_ne!(
            a.folds[0].actual, c.folds[0].actual,
            "different seeds should shuffle differently"
        );
    }

    #[test]
    fn parallel_folds_match_serial_bit_for_bit() {
        let d = data(60);
        let learner = M5Learner::new(M5Params::default().with_min_instances(5));
        let serial = cross_validate_with(&learner, &d, 6, 11, Parallelism::Off).unwrap();
        for threads in [1, 2, 3, 6, 8] {
            let par =
                cross_validate_with(&learner, &d, 6, 11, Parallelism::Fixed(threads)).unwrap();
            assert_eq!(par.aggregate, serial.aggregate, "threads = {threads}");
            assert_eq!(par.pooled, serial.pooled, "threads = {threads}");
            for (a, b) in par.folds.iter().zip(serial.folds.iter()) {
                assert_eq!(a.fold, b.fold);
                assert_eq!(a.actual, b.actual);
                assert_eq!(a.predicted, b.predicted);
            }
        }
    }

    /// Predicts a constant; used to exercise degenerate-fold handling.
    struct ConstPredictor(f64);

    impl mtperf_mtree::Predictor for ConstPredictor {
        fn predict(&self, _row: &[f64]) -> f64 {
            self.0
        }
    }

    /// Fails with [`MtreeError::DegenerateData`] whenever the training
    /// subset contains the poison value in its first attribute.
    struct FragileLearner {
        poison: f64,
    }

    impl Learner for FragileLearner {
        fn fit(&self, data: &Dataset) -> Result<Box<dyn mtperf_mtree::Predictor>, MtreeError> {
            if data.column(0).contains(&self.poison) {
                return Err(MtreeError::DegenerateData("poisoned subset".into()));
            }
            Ok(Box::new(ConstPredictor(0.0)))
        }

        fn name(&self) -> &str {
            "fragile"
        }
    }

    use mtperf_mtree::Learner;

    #[test]
    fn degenerate_folds_are_recorded_not_fatal() {
        // Regression: a fold whose training data is degenerate used to abort
        // the whole cross validation. The poison value lands in exactly one
        // fold's test set; every other fold trains on it and fails, so k-1
        // folds are skipped and the run still reports the one scored fold.
        let d = data(20);
        let learner = FragileLearner { poison: 7.0 };
        let cv = cross_validate(&learner, &d, 5, 3).unwrap();
        assert_eq!(cv.folds.len(), 1);
        assert_eq!(cv.skipped.len(), 4);
        assert!(cv.skipped[0].reason.contains("poisoned subset"));
        assert_eq!(cv.aggregate.n, 4);
        // The surviving fold predicts a constant: its correlation is
        // undefined and must be flagged, not silently zero.
        assert_eq!(cv.undefined_correlation_folds, 1);
        assert!(!cv.aggregate.correlation_defined);
    }

    #[test]
    fn all_folds_skipped_is_an_error() {
        let d = data(20);
        struct AlwaysFails;
        impl Learner for AlwaysFails {
            fn fit(&self, _data: &Dataset) -> Result<Box<dyn mtperf_mtree::Predictor>, MtreeError> {
                Err(MtreeError::DegenerateData("nothing to fit".into()))
            }
            fn name(&self) -> &str {
                "always-fails"
            }
        }
        let err = cross_validate(&AlwaysFails, &d, 5, 3).unwrap_err();
        match err {
            MtreeError::DegenerateData(msg) => {
                assert!(msg.contains("all 5 folds"), "{msg}");
                assert!(msg.contains("nothing to fit"), "{msg}");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn healthy_data_has_no_skips() {
        let d = data(53);
        let learner = M5Learner::new(M5Params::default());
        let cv = cross_validate(&learner, &d, 10, 7).unwrap();
        assert!(cv.skipped.is_empty());
        assert_eq!(cv.undefined_correlation_folds, 0);
        assert!(cv.aggregate.correlation_defined);
    }

    #[test]
    fn rejects_bad_k() {
        let d = data(10);
        let learner = M5Learner::new(M5Params::default());
        assert!(cross_validate(&learner, &d, 1, 0).is_err());
        assert!(cross_validate(&learner, &d, 11, 0).is_err());
        assert!(cross_validate(&learner, &d, 10, 0).is_ok());
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let d = data(100);
        let (train, test) = train_test_split(&d, 0.25, 3).unwrap();
        assert_eq!(test.n_rows(), 25);
        assert_eq!(train.n_rows(), 75);
        // Disjoint: x values are unique, so check no overlap.
        let train_x: std::collections::HashSet<u64> =
            train.column(0).iter().map(|v| v.to_bits()).collect();
        assert!(test
            .column(0)
            .iter()
            .all(|v| !train_x.contains(&v.to_bits())));
    }

    #[test]
    fn split_rejects_bad_fraction() {
        let d = data(10);
        assert!(train_test_split(&d, 0.0, 0).is_err());
        assert!(train_test_split(&d, 1.0, 0).is_err());
        let one = Dataset::from_rows(vec!["x".into()], &[[1.0]], &[1.0]).unwrap();
        assert!(train_test_split(&one, 0.5, 0).is_err());
    }
}
