//! Learning curves: accuracy as a function of training-set size.
//!
//! Useful for judging whether the paper-scale dataset is large enough for
//! its 430-instance pre-pruning — the curve flattens where extra sections
//! stop buying accuracy.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use mtperf_mtree::{Dataset, Learner, MtreeError};

use crate::Metrics;

/// One point of a learning curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Training-set size used.
    pub train_size: usize,
    /// Metrics on the fixed held-out test set.
    pub metrics: Metrics,
}

/// Computes a learning curve: hold out `test_fraction` of the data once,
/// then train on growing nested prefixes of the remainder and evaluate each
/// model on the same held-out set.
///
/// `sizes` are requested training sizes; sizes exceeding the available
/// training pool are clamped (and deduplicated).
///
/// # Errors
///
/// Returns [`MtreeError::BadParams`] for an invalid `test_fraction` or
/// empty `sizes`, and propagates learner failures.
pub fn learning_curve(
    learner: &dyn Learner,
    data: &Dataset,
    sizes: &[usize],
    test_fraction: f64,
    seed: u64,
) -> Result<Vec<CurvePoint>, MtreeError> {
    if sizes.is_empty() {
        return Err(MtreeError::BadParams("sizes must be non-empty".into()));
    }
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
        return Err(MtreeError::BadParams(
            "test_fraction must be in (0, 1)".into(),
        ));
    }
    let n = data.n_rows();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let n_test = ((n as f64 * test_fraction).round() as usize).clamp(1, n - 1);
    let (test_idx, pool) = order.split_at(n_test);
    let test = data.subset(test_idx);
    let actual: Vec<f64> = test.targets().to_vec();

    let mut clamped: Vec<usize> = sizes.iter().map(|&s| s.clamp(1, pool.len())).collect();
    clamped.sort_unstable();
    clamped.dedup();

    let mut out = Vec::with_capacity(clamped.len());
    for &size in &clamped {
        let train = data.subset(&pool[..size]);
        let model = learner.fit(&train)?;
        let predicted: Vec<f64> = (0..test.n_rows())
            .map(|i| model.predict(&test.row(i)))
            .collect();
        out.push(CurvePoint {
            train_size: size,
            metrics: Metrics::compute(&actual, &predicted)?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtperf_mtree::{M5Learner, M5Params};

    fn data(n: usize) -> Dataset {
        let rows: Vec<[f64; 1]> = (0..n).map(|i| [(i % 97) as f64]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] <= 48.0 { r[0] } else { 100.0 - r[0] })
            .collect();
        Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap()
    }

    #[test]
    fn curve_improves_with_more_data() {
        let d = data(600);
        let learner = M5Learner::new(M5Params::default().with_min_instances(8));
        let curve = learning_curve(&learner, &d, &[20, 100, 400], 0.25, 3).unwrap();
        assert_eq!(curve.len(), 3);
        assert!(curve[0].train_size < curve[2].train_size);
        // More data must not be (much) worse.
        assert!(
            curve[2].metrics.mae <= curve[0].metrics.mae * 1.5 + 1e-9,
            "{:?}",
            curve
        );
    }

    #[test]
    fn sizes_are_clamped_and_deduped() {
        let d = data(100);
        let learner = M5Learner::new(M5Params::default());
        let curve = learning_curve(&learner, &d, &[50, 1_000_000, 999_999], 0.2, 1).unwrap();
        // 1e6 and 999999 both clamp to the pool size (80) -> dedup to one.
        assert_eq!(curve.len(), 2);
        assert_eq!(curve.last().unwrap().train_size, 80);
    }

    #[test]
    fn rejects_bad_inputs() {
        let d = data(50);
        let learner = M5Learner::new(M5Params::default());
        assert!(learning_curve(&learner, &d, &[], 0.2, 0).is_err());
        assert!(learning_curve(&learner, &d, &[10], 0.0, 0).is_err());
        assert!(learning_curve(&learner, &d, &[10], 1.0, 0).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let d = data(200);
        let learner = M5Learner::new(M5Params::default().with_min_instances(8));
        let a = learning_curve(&learner, &d, &[50], 0.25, 9).unwrap();
        let b = learning_curve(&learner, &d, &[50], 0.25, 9).unwrap();
        assert_eq!(a[0].metrics, b[0].metrics);
    }
}
