//! Evaluation harness for `mtperf`.
//!
//! Provides the three accuracy metrics the paper reports — the correlation
//! coefficient *C*, the mean absolute error *MAE* and the relative absolute
//! error *RAE* — plus RMSE/RRSE, stratification-free seeded k-fold cross
//! validation (the paper's 10-fold protocol), and text report formatting
//! for learner comparisons.
//!
//! # Example
//!
//! ```
//! use mtperf_eval::{cross_validate, Metrics};
//! use mtperf_mtree::{Dataset, M5Learner, M5Params};
//!
//! let rows: Vec<[f64; 1]> = (0..100).map(|i| [i as f64]).collect();
//! let ys: Vec<f64> = rows.iter().map(|r| 2.0 * r[0]).collect();
//! let data = Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap();
//! let learner = M5Learner::new(M5Params::default());
//! let cv = cross_validate(&learner, &data, 10, 42).unwrap();
//! assert!(cv.aggregate.correlation > 0.99);
//! assert!(cv.aggregate.rae_percent < 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breakdown;
mod curve;
mod cv;
mod metrics;
mod repeat;
mod report;
mod significance;

pub use breakdown::{breakdown_table, per_label_metrics};
pub use curve::{learning_curve, CurvePoint};
pub use cv::{
    cross_validate, cross_validate_with, train_test_split, CvResult, FoldResult, SkippedFold,
};
pub use metrics::{Metrics, MetricsError};
pub use repeat::{repeated_cv, repeated_cv_with, RepeatedCv, Spread};
pub use report::{comparison_table, scatter_csv};
pub use significance::{paired_t_test, PairedTTest};
