//! Prediction-accuracy metrics.

use serde::{Deserialize, Serialize};

use mtperf_linalg::stats;

/// The accuracy metrics of one evaluation, matching the paper's §V.B:
/// correlation coefficient, mean absolute error and relative absolute error,
/// plus RMSE/RRSE for completeness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Number of evaluated instances.
    pub n: usize,
    /// Pearson correlation between actual and predicted values (`C`);
    /// 0.0 when undefined (constant actuals or predictions).
    pub correlation: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Relative absolute error in percent:
    /// `100 · Σ|ŷ−y| / Σ|ȳ−y|` (absolute error relative to the
    /// mean-predictor's absolute error).
    pub rae_percent: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Root relative squared error in percent (RMSE relative to the
    /// mean-predictor's RMSE).
    pub rrse_percent: f64,
}

impl Metrics {
    /// Computes all metrics from actual/predicted pairs.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or are empty.
    pub fn compute(actual: &[f64], predicted: &[f64]) -> Metrics {
        assert_eq!(actual.len(), predicted.len(), "length mismatch");
        assert!(!actual.is_empty(), "empty evaluation");
        let n = actual.len();
        let nf = n as f64;
        let mean_actual = stats::mean(actual);

        let mut abs_err = 0.0;
        let mut abs_base = 0.0;
        let mut sq_err = 0.0;
        let mut sq_base = 0.0;
        for (&y, &p) in actual.iter().zip(predicted) {
            abs_err += (p - y).abs();
            abs_base += (mean_actual - y).abs();
            sq_err += (p - y) * (p - y);
            sq_base += (mean_actual - y) * (mean_actual - y);
        }
        let mae = abs_err / nf;
        let rmse = (sq_err / nf).sqrt();
        let rae_percent = if abs_base > 0.0 {
            100.0 * abs_err / abs_base
        } else {
            0.0
        };
        let rrse_percent = if sq_base > 0.0 {
            100.0 * (sq_err / sq_base).sqrt()
        } else {
            0.0
        };
        Metrics {
            n,
            correlation: stats::correlation(actual, predicted).unwrap_or(0.0),
            mae,
            rae_percent,
            rmse,
            rrse_percent,
        }
    }

    /// Instance-weighted average of several fold metrics (correlation is
    /// weighted by fold size, as WEKA reports it).
    ///
    /// # Panics
    ///
    /// Panics if `folds` is empty.
    pub fn aggregate(folds: &[Metrics]) -> Metrics {
        assert!(!folds.is_empty(), "no folds to aggregate");
        let total: usize = folds.iter().map(|m| m.n).sum();
        let tf = total as f64;
        let w = |f: fn(&Metrics) -> f64| -> f64 {
            folds.iter().map(|m| f(m) * m.n as f64).sum::<f64>() / tf
        };
        Metrics {
            n: total,
            correlation: w(|m| m.correlation),
            mae: w(|m| m.mae),
            rae_percent: w(|m| m.rae_percent),
            rmse: w(|m| m.rmse),
            rrse_percent: w(|m| m.rrse_percent),
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} C={:.4} MAE={:.4} RAE={:.2}% RMSE={:.4} RRSE={:.2}%",
            self.n, self.correlation, self.mae, self.rae_percent, self.rmse, self.rrse_percent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let m = Metrics::compute(&y, &y);
        assert_eq!(m.n, 4);
        assert!((m.correlation - 1.0).abs() < 1e-12);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.rae_percent, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.rrse_percent, 0.0);
    }

    #[test]
    fn mean_predictor_has_100_percent_rae() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let mean = 2.5;
        let p = [mean; 4];
        let m = Metrics::compute(&y, &p);
        assert!((m.rae_percent - 100.0).abs() < 1e-9);
        assert!((m.rrse_percent - 100.0).abs() < 1e-9);
        assert_eq!(m.correlation, 0.0, "constant predictions: undefined -> 0");
    }

    #[test]
    fn known_values() {
        let y = [0.0, 2.0];
        let p = [1.0, 3.0]; // off by one everywhere
        let m = Metrics::compute(&y, &p);
        assert!((m.mae - 1.0).abs() < 1e-12);
        assert!((m.rmse - 1.0).abs() < 1e-12);
        // Baseline absolute error: |1-0| + |1-2| = 2 -> RAE = 2/2 = 100%.
        assert!((m.rae_percent - 100.0).abs() < 1e-9);
        assert!((m.correlation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_weights_by_size() {
        let a = Metrics {
            n: 1,
            correlation: 1.0,
            mae: 0.0,
            rae_percent: 0.0,
            rmse: 0.0,
            rrse_percent: 0.0,
        };
        let b = Metrics {
            n: 3,
            correlation: 0.0,
            mae: 4.0,
            rae_percent: 100.0,
            rmse: 4.0,
            rrse_percent: 100.0,
        };
        let agg = Metrics::aggregate(&[a, b]);
        assert_eq!(agg.n, 4);
        assert!((agg.correlation - 0.25).abs() < 1e-12);
        assert!((agg.mae - 3.0).abs() < 1e-12);
        assert!((agg.rae_percent - 75.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        Metrics::compute(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty() {
        Metrics::compute(&[], &[]);
    }

    #[test]
    fn display_contains_fields() {
        let y = [1.0, 2.0];
        let m = Metrics::compute(&y, &y);
        let s = m.to_string();
        assert!(s.contains("C=1.0000"));
        assert!(s.contains("RAE=0.00%"));
    }
}
