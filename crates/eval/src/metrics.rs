//! Prediction-accuracy metrics.

use serde::{Deserialize, Serialize};

use mtperf_linalg::stats;
use mtperf_mtree::MtreeError;

/// Why a metrics computation could not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// No instances to evaluate (e.g. a fully-quarantined fold under a
    /// skip policy).
    Empty,
    /// Actual and predicted slices have different lengths.
    LengthMismatch {
        /// Number of actual values.
        actual: usize,
        /// Number of predicted values.
        predicted: usize,
    },
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsError::Empty => write!(f, "empty evaluation: no instances to score"),
            MetricsError::LengthMismatch { actual, predicted } => write!(
                f,
                "length mismatch: {actual} actual values vs {predicted} predictions"
            ),
        }
    }
}

impl std::error::Error for MetricsError {}

impl From<MetricsError> for MtreeError {
    fn from(e: MetricsError) -> Self {
        MtreeError::DegenerateData(e.to_string())
    }
}

/// The accuracy metrics of one evaluation, matching the paper's §V.B:
/// correlation coefficient, mean absolute error and relative absolute error,
/// plus RMSE/RRSE for completeness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Number of evaluated instances.
    pub n: usize,
    /// Pearson correlation between actual and predicted values (`C`);
    /// 0.0 when undefined — see [`Metrics::correlation_defined`].
    pub correlation: f64,
    /// Whether [`Metrics::correlation`] is mathematically defined. Constant
    /// actuals or predictions have zero variance, so Pearson correlation
    /// does not exist for them; such folds carry `correlation: 0.0` as a
    /// placeholder and must be excluded from correlation averages
    /// (which [`Metrics::aggregate`] does).
    pub correlation_defined: bool,
    /// Mean absolute error.
    pub mae: f64,
    /// Relative absolute error in percent:
    /// `100 · Σ|ŷ−y| / Σ|ȳ−y|` (absolute error relative to the
    /// mean-predictor's absolute error).
    pub rae_percent: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Root relative squared error in percent (RMSE relative to the
    /// mean-predictor's RMSE).
    pub rrse_percent: f64,
}

impl Metrics {
    /// Computes all metrics from actual/predicted pairs.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::Empty`] for empty slices and
    /// [`MetricsError::LengthMismatch`] when the slices disagree in length —
    /// both are data conditions (a fully-quarantined fold, a truncated
    /// prediction stream), not programming errors, so they are values, not
    /// panics.
    pub fn compute(actual: &[f64], predicted: &[f64]) -> Result<Metrics, MetricsError> {
        if actual.len() != predicted.len() {
            return Err(MetricsError::LengthMismatch {
                actual: actual.len(),
                predicted: predicted.len(),
            });
        }
        if actual.is_empty() {
            return Err(MetricsError::Empty);
        }
        let n = actual.len();
        let nf = n as f64;
        let mean_actual = stats::mean(actual);

        let mut abs_err = 0.0;
        let mut abs_base = 0.0;
        let mut sq_err = 0.0;
        let mut sq_base = 0.0;
        for (&y, &p) in actual.iter().zip(predicted) {
            abs_err += (p - y).abs();
            abs_base += (mean_actual - y).abs();
            sq_err += (p - y) * (p - y);
            sq_base += (mean_actual - y) * (mean_actual - y);
        }
        let mae = abs_err / nf;
        let rmse = (sq_err / nf).sqrt();
        let rae_percent = if abs_base > 0.0 {
            100.0 * abs_err / abs_base
        } else {
            0.0
        };
        let rrse_percent = if sq_base > 0.0 {
            100.0 * (sq_err / sq_base).sqrt()
        } else {
            0.0
        };
        let correlation = stats::correlation(actual, predicted);
        Ok(Metrics {
            n,
            correlation: correlation.unwrap_or(0.0),
            correlation_defined: correlation.is_some(),
            mae,
            rae_percent,
            rmse,
            rrse_percent,
        })
    }

    /// Instance-weighted average of several fold metrics (weighted by fold
    /// size, as WEKA reports it). Folds whose correlation is undefined
    /// (see [`Metrics::correlation_defined`]) are excluded from the
    /// correlation mean — averaging their `0.0` placeholders in would bias
    /// the reported `C` toward zero; error metrics still average over every
    /// fold. Returns `None` when `folds` is empty.
    pub fn aggregate(folds: &[Metrics]) -> Option<Metrics> {
        if folds.is_empty() {
            return None;
        }
        let total: usize = folds.iter().map(|m| m.n).sum();
        let tf = total as f64;
        let w = |f: fn(&Metrics) -> f64| -> f64 {
            folds.iter().map(|m| f(m) * m.n as f64).sum::<f64>() / tf
        };
        // Correlation averages over defined folds only, with their own
        // weight normalization.
        let corr_weight: f64 = folds
            .iter()
            .filter(|m| m.correlation_defined)
            .map(|m| m.n as f64)
            .sum();
        let (correlation, correlation_defined) = if corr_weight > 0.0 {
            let c = folds
                .iter()
                .filter(|m| m.correlation_defined)
                .map(|m| m.correlation * m.n as f64)
                .sum::<f64>()
                / corr_weight;
            (c, true)
        } else {
            (0.0, false)
        };
        Some(Metrics {
            n: total,
            correlation,
            correlation_defined,
            mae: w(|m| m.mae),
            rae_percent: w(|m| m.rae_percent),
            rmse: w(|m| m.rmse),
            rrse_percent: w(|m| m.rrse_percent),
        })
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} C={:.4}{} MAE={:.4} RAE={:.2}% RMSE={:.4} RRSE={:.2}%",
            self.n,
            self.correlation,
            if self.correlation_defined {
                ""
            } else {
                " (undefined)"
            },
            self.mae,
            self.rae_percent,
            self.rmse,
            self.rrse_percent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let m = Metrics::compute(&y, &y).unwrap();
        assert_eq!(m.n, 4);
        assert!((m.correlation - 1.0).abs() < 1e-12);
        assert!(m.correlation_defined);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.rae_percent, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.rrse_percent, 0.0);
    }

    #[test]
    fn mean_predictor_has_100_percent_rae() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let mean = 2.5;
        let p = [mean; 4];
        let m = Metrics::compute(&y, &p).unwrap();
        assert!((m.rae_percent - 100.0).abs() < 1e-9);
        assert!((m.rrse_percent - 100.0).abs() < 1e-9);
        assert_eq!(m.correlation, 0.0, "constant predictions: placeholder 0");
        assert!(!m.correlation_defined, "constant predictions: C undefined");
    }

    #[test]
    fn known_values() {
        let y = [0.0, 2.0];
        let p = [1.0, 3.0]; // off by one everywhere
        let m = Metrics::compute(&y, &p).unwrap();
        assert!((m.mae - 1.0).abs() < 1e-12);
        assert!((m.rmse - 1.0).abs() < 1e-12);
        // Baseline absolute error: |1-0| + |1-2| = 2 -> RAE = 2/2 = 100%.
        assert!((m.rae_percent - 100.0).abs() < 1e-9);
        assert!((m.correlation - 1.0).abs() < 1e-12);
    }

    fn fold(n: usize, correlation: f64, defined: bool, err: f64) -> Metrics {
        Metrics {
            n,
            correlation,
            correlation_defined: defined,
            mae: err,
            rae_percent: err * 25.0,
            rmse: err,
            rrse_percent: err * 25.0,
        }
    }

    #[test]
    fn aggregate_weights_by_size() {
        let a = fold(1, 1.0, true, 0.0);
        let b = fold(3, 0.0, true, 4.0);
        let agg = Metrics::aggregate(&[a, b]).unwrap();
        assert_eq!(agg.n, 4);
        assert!((agg.correlation - 0.25).abs() < 1e-12);
        assert!(agg.correlation_defined);
        assert!((agg.mae - 3.0).abs() < 1e-12);
        assert!((agg.rae_percent - 75.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_excludes_undefined_correlation_folds() {
        // Regression: fold b's correlation is the 0.0 placeholder for an
        // undefined value (constant actuals). It must not drag the weighted
        // mean down; error metrics still average over both folds.
        let a = fold(2, 0.9, true, 1.0);
        let b = fold(2, 0.0, false, 3.0);
        let agg = Metrics::aggregate(&[a, b]).unwrap();
        assert!((agg.correlation - 0.9).abs() < 1e-12, "{}", agg.correlation);
        assert!(agg.correlation_defined);
        assert!((agg.mae - 2.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_of_all_undefined_is_undefined() {
        let a = fold(2, 0.0, false, 1.0);
        let b = fold(2, 0.0, false, 3.0);
        let agg = Metrics::aggregate(&[a, b]).unwrap();
        assert_eq!(agg.correlation, 0.0);
        assert!(!agg.correlation_defined);
        assert!((agg.mae - 2.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_of_empty_is_none() {
        assert!(Metrics::aggregate(&[]).is_none());
    }

    #[test]
    fn rejects_mismatched_lengths() {
        // Regression: these were panics; data-shaped failures must be values.
        let err = Metrics::compute(&[1.0], &[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            MetricsError::LengthMismatch {
                actual: 1,
                predicted: 2
            }
        );
        assert!(err.to_string().contains("1 actual"));
    }

    #[test]
    fn rejects_empty() {
        let err = Metrics::compute(&[], &[]).unwrap_err();
        assert_eq!(err, MetricsError::Empty);
        let mtree_err: mtperf_mtree::MtreeError = err.into();
        assert!(mtree_err.to_string().contains("empty evaluation"));
    }

    #[test]
    fn display_contains_fields() {
        let y = [1.0, 2.0];
        let m = Metrics::compute(&y, &y).unwrap();
        let s = m.to_string();
        assert!(s.contains("C=1.0000"));
        assert!(s.contains("RAE=0.00%"));
        assert!(!s.contains("undefined"));
        let u = Metrics::compute(&y, &[5.0, 5.0]).unwrap();
        assert!(u.to_string().contains("C=0.0000 (undefined)"));
    }
}
