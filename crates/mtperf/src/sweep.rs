//! Design-space sweeps: score thousands of hypothetical machine
//! configurations through a trained model without re-simulating.
//!
//! A [`SweepSpec`] names a base machine and per-axis value lists (cache
//! size/associativity, TLB reach, predictor budget). The sweep enumerates
//! the full cross product in a canonical odometer order, transplants every
//! measured counter row onto each configuration via the documented power
//! laws ([`crate::analytic::scale_factors`]), recomputes the analytical
//! feature columns for machines that were trained with them, and pushes one
//! large row-block per configuration chunk through the compiled tree's
//! parallel batch engine. Per configuration it reports the predicted CPI
//! distribution and the counters the tree blames on the median section
//! (reusing [`mtperf_mtree::analysis::contributions`] and
//! [`mtperf_mtree::analysis::what_if`]).
//!
//! Everything here is deterministic: enumeration order is fixed, chunking
//! never changes per-row arithmetic, and blame ties break by row index —
//! which is what lets `tests/golden/sweep.json` pin the whole report.

use std::collections::BTreeMap;

use serde::{de, Deserialize, Serialize, Value};

use mtperf_counters::{Event, SampleSet, N_EVENTS};
use mtperf_linalg::{Matrix, Parallelism};
use mtperf_mtree::{analysis, ModelTree, MtreeError};
use mtperf_sim::MachineConfig;

use crate::analytic::{scale_factors, transplant_rates, AnalyticModel, ANALYTIC_NAMES, N_ANALYTIC};

/// Schema tag stamped into every sweep report.
pub const SCHEMA: &str = "mtperf-sweep-v1";

/// Hard ceiling on the enumerated grid; a spec whose cross product exceeds
/// this is almost certainly a typo, and refusing it beats an OOM.
pub const MAX_CONFIGS: usize = 200_000;

/// Rows per batch pushed through the parallel engine: configurations are
/// chunked so each batch stays around this many rows — large enough to
/// clear the engine's parallel cutover, small enough to bound memory.
const TARGET_BATCH_ROWS: usize = 65_536;

/// The sweep axes, in canonical (odometer) order. Each axis is a list of
/// values to try; an empty list means "keep the base machine's value".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepAxes {
    /// L1 data cache capacities, KiB.
    pub l1d_kb: Vec<u64>,
    /// L1 data cache associativities.
    pub l1d_ways: Vec<u32>,
    /// L1 instruction cache capacities, KiB.
    pub l1i_kb: Vec<u64>,
    /// Unified L2 capacities, KiB.
    pub l2_kb: Vec<u64>,
    /// Unified L2 associativities.
    pub l2_ways: Vec<u32>,
    /// Last-level DTLB entry counts.
    pub dtlb1_entries: Vec<u32>,
    /// ITLB entry counts.
    pub itlb_entries: Vec<u32>,
    /// Branch-predictor global-history lengths, bits.
    pub history_bits: Vec<u32>,
}

/// The spellable axis names, for the unknown-field check and docs.
pub const AXIS_NAMES: [&str; 8] = [
    "l1d_kb",
    "l1d_ways",
    "l1i_kb",
    "l2_kb",
    "l2_ways",
    "dtlb1_entries",
    "itlb_entries",
    "history_bits",
];

impl Serialize for SweepAxes {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("l1d_kb".to_string(), self.l1d_kb.serialize()),
            ("l1d_ways".to_string(), self.l1d_ways.serialize()),
            ("l1i_kb".to_string(), self.l1i_kb.serialize()),
            ("l2_kb".to_string(), self.l2_kb.serialize()),
            ("l2_ways".to_string(), self.l2_ways.serialize()),
            ("dtlb1_entries".to_string(), self.dtlb1_entries.serialize()),
            ("itlb_entries".to_string(), self.itlb_entries.serialize()),
            ("history_bits".to_string(), self.history_bits.serialize()),
        ])
    }
}

impl Deserialize for SweepAxes {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| de::Error::mismatch("object", value).context("SweepAxes"))?;
        // A misspelled axis silently sweeping nothing would be a nasty way
        // to lose an experiment; reject unknown names outright.
        for (key, _) in entries {
            if !AXIS_NAMES.contains(&key.as_str()) {
                return Err(de::Error::custom(format!(
                    "unknown sweep axis '{key}' (expected one of {})",
                    AXIS_NAMES.join(", ")
                ))
                .context("SweepAxes"));
            }
        }
        fn axis<T: Deserialize>(value: &Value, name: &str) -> Result<Vec<T>, de::Error> {
            match value.get_field(name) {
                None | Some(Value::Null) => Ok(Vec::new()),
                Some(v) => Vec::<T>::deserialize(v).map_err(|e| e.context(name)),
            }
        }
        Ok(SweepAxes {
            l1d_kb: axis(value, "l1d_kb")?,
            l1d_ways: axis(value, "l1d_ways")?,
            l1i_kb: axis(value, "l1i_kb")?,
            l2_kb: axis(value, "l2_kb")?,
            l2_ways: axis(value, "l2_ways")?,
            dtlb1_entries: axis(value, "dtlb1_entries")?,
            itlb_entries: axis(value, "itlb_entries")?,
            history_bits: axis(value, "history_bits")?,
        })
    }
}

/// A design-space sweep specification (the JSON file `mtperf sweep` reads).
/// Missing fields default: `base_machine` to `core2_duo`, `axes` to
/// all-empty (a one-config sweep of the base machine), `top_blame` to 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Base machine the counters were measured on: `core2_duo`,
    /// `netburst_like`, or `tiny`.
    pub base_machine: String,
    /// The axes to sweep.
    pub axes: SweepAxes,
    /// How many blamed counters to report per configuration.
    pub top_blame: usize,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            base_machine: "core2_duo".to_string(),
            axes: SweepAxes::default(),
            top_blame: 3,
        }
    }
}

impl Serialize for SweepSpec {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("base_machine".to_string(), self.base_machine.serialize()),
            ("axes".to_string(), self.axes.serialize()),
            ("top_blame".to_string(), self.top_blame.serialize()),
        ])
    }
}

impl Deserialize for SweepSpec {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| de::Error::mismatch("object", value).context("SweepSpec"))?;
        for (key, _) in entries {
            if !["base_machine", "axes", "top_blame"].contains(&key.as_str()) {
                return Err(
                    de::Error::custom(format!("unknown field '{key}'")).context("SweepSpec")
                );
            }
        }
        let defaults = SweepSpec::default();
        let base_machine = match value.get_field("base_machine") {
            None | Some(Value::Null) => defaults.base_machine,
            Some(v) => String::deserialize(v).map_err(|e| e.context("base_machine"))?,
        };
        let axes = match value.get_field("axes") {
            None | Some(Value::Null) => SweepAxes::default(),
            Some(v) => SweepAxes::deserialize(v).map_err(|e| e.context("axes"))?,
        };
        let top_blame = match value.get_field("top_blame") {
            None | Some(Value::Null) => defaults.top_blame,
            Some(v) => usize::deserialize(v).map_err(|e| e.context("top_blame"))?,
        };
        Ok(SweepSpec {
            base_machine,
            axes,
            top_blame,
        })
    }
}

impl SweepSpec {
    /// Resolves the named base machine.
    ///
    /// # Errors
    ///
    /// [`MtreeError::BadParams`] for an unknown machine name.
    pub fn base(&self) -> Result<MachineConfig, MtreeError> {
        machine_by_name(&self.base_machine)
    }

    /// The canonical axis list as `(name, values)` pairs, empty axes
    /// replaced by the base machine's own value so the odometer always has
    /// one setting per axis.
    fn resolved_axes(&self, base: &MachineConfig) -> Vec<(&'static str, Vec<u64>)> {
        let or_base = |vs: &[u64], b: u64| {
            if vs.is_empty() {
                vec![b]
            } else {
                vs.to_vec()
            }
        };
        let a = &self.axes;
        vec![
            ("l1d_kb", or_base(&a.l1d_kb, base.l1d.size_bytes / 1024)),
            (
                "l1d_ways",
                or_base(
                    &a.l1d_ways.iter().map(|&w| u64::from(w)).collect::<Vec<_>>(),
                    u64::from(base.l1d.ways),
                ),
            ),
            ("l1i_kb", or_base(&a.l1i_kb, base.l1i.size_bytes / 1024)),
            ("l2_kb", or_base(&a.l2_kb, base.l2.size_bytes / 1024)),
            (
                "l2_ways",
                or_base(
                    &a.l2_ways.iter().map(|&w| u64::from(w)).collect::<Vec<_>>(),
                    u64::from(base.l2.ways),
                ),
            ),
            (
                "dtlb1_entries",
                or_base(
                    &a.dtlb1_entries
                        .iter()
                        .map(|&e| u64::from(e))
                        .collect::<Vec<_>>(),
                    u64::from(base.dtlb1.entries),
                ),
            ),
            (
                "itlb_entries",
                or_base(
                    &a.itlb_entries
                        .iter()
                        .map(|&e| u64::from(e))
                        .collect::<Vec<_>>(),
                    u64::from(base.itlb.entries),
                ),
            ),
            (
                "history_bits",
                or_base(
                    &a.history_bits
                        .iter()
                        .map(|&b| u64::from(b))
                        .collect::<Vec<_>>(),
                    u64::from(base.predictor.history_bits),
                ),
            ),
        ]
    }

    /// Enumerates the full cross product as concrete machine
    /// configurations, odometer order (last axis fastest).
    ///
    /// # Errors
    ///
    /// [`MtreeError::BadParams`] for an unknown base machine, a zero axis
    /// value, a cache geometry that does not divide into 64-byte lines and
    /// its ways, a TLB whose entries do not divide into its ways, or a grid
    /// larger than [`MAX_CONFIGS`].
    pub fn enumerate(&self) -> Result<Vec<SweepPoint>, MtreeError> {
        let base = self.base()?;
        let axes = self.resolved_axes(&base);
        let mut total: usize = 1;
        for (name, values) in &axes {
            if values.contains(&0) {
                return Err(MtreeError::BadParams(format!(
                    "axis {name} contains a zero value"
                )));
            }
            total = total.saturating_mul(values.len());
        }
        if total > MAX_CONFIGS {
            return Err(MtreeError::BadParams(format!(
                "sweep grid has {total} configurations (limit {MAX_CONFIGS})"
            )));
        }

        let mut points = Vec::with_capacity(total);
        let mut idx = vec![0usize; axes.len()];
        for id in 0..total {
            let mut settings = BTreeMap::new();
            for (axis, &i) in axes.iter().zip(&idx) {
                settings.insert(axis.0.to_string(), axis.1[i]);
            }
            let machine = apply_settings(&base, &settings)?;
            points.push(SweepPoint {
                id,
                settings,
                machine,
            });
            // Odometer increment, last axis fastest.
            for pos in (0..axes.len()).rev() {
                idx[pos] += 1;
                if idx[pos] < axes[pos].1.len() {
                    break;
                }
                idx[pos] = 0;
            }
        }
        Ok(points)
    }
}

/// Resolves a machine configuration by its spec name (`core2_duo`,
/// `netburst_like`, or `tiny`).
///
/// # Errors
///
/// [`MtreeError::BadParams`] for an unknown name.
pub fn machine_by_name(name: &str) -> Result<MachineConfig, MtreeError> {
    match name {
        "core2_duo" => Ok(MachineConfig::core2_duo()),
        "netburst_like" => Ok(MachineConfig::netburst_like()),
        "tiny" => Ok(MachineConfig::tiny()),
        other => Err(MtreeError::BadParams(format!(
            "unknown machine '{other}' (expected core2_duo, netburst_like, or tiny)"
        ))),
    }
}

/// One enumerated configuration: its odometer id, the axis settings that
/// produced it, and the concrete machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Position in the canonical enumeration order.
    pub id: usize,
    /// Axis name → chosen value.
    pub settings: BTreeMap<String, u64>,
    /// The concrete machine configuration.
    pub machine: MachineConfig,
}

fn apply_settings(
    base: &MachineConfig,
    settings: &BTreeMap<String, u64>,
) -> Result<MachineConfig, MtreeError> {
    let mut m = base.clone();
    let get = |name: &str| settings[name];
    m.l1d.size_bytes = get("l1d_kb") * 1024;
    m.l1d.ways = narrow(get("l1d_ways"), "l1d_ways")?;
    m.l1i.size_bytes = get("l1i_kb") * 1024;
    m.l2.size_bytes = get("l2_kb") * 1024;
    m.l2.ways = narrow(get("l2_ways"), "l2_ways")?;
    m.dtlb1.entries = narrow(get("dtlb1_entries"), "dtlb1_entries")?;
    m.itlb.entries = narrow(get("itlb_entries"), "itlb_entries")?;
    m.predictor.history_bits = narrow(get("history_bits"), "history_bits")?;

    for (name, cache) in [("l1d", &m.l1d), ("l1i", &m.l1i), ("l2", &m.l2)] {
        let span = cache.line_bytes * u64::from(cache.ways);
        if span == 0 || !cache.size_bytes.is_multiple_of(span) {
            return Err(MtreeError::BadParams(format!(
                "{name} geometry {} B / {}-way does not divide into {}-byte lines",
                cache.size_bytes, cache.ways, cache.line_bytes
            )));
        }
    }
    for (name, tlb) in [("dtlb1", &m.dtlb1), ("itlb", &m.itlb)] {
        if tlb.ways == 0 || !tlb.entries.is_multiple_of(tlb.ways) {
            return Err(MtreeError::BadParams(format!(
                "{name} entries {} do not divide into {} ways",
                tlb.entries, tlb.ways
            )));
        }
    }
    if m.predictor.history_bits > 24 {
        return Err(MtreeError::BadParams(format!(
            "history_bits {} exceeds the 24-bit pattern-table limit",
            m.predictor.history_bits
        )));
    }
    Ok(m)
}

fn narrow(v: u64, axis: &str) -> Result<u32, MtreeError> {
    u32::try_from(v)
        .map_err(|_| MtreeError::BadParams(format!("axis {axis} value {v} out of range")))
}

/// One blamed counter on a configuration's median section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Blame {
    /// Feature name (a Table-I metric, or a derived analytic column).
    pub feature: String,
    /// Absolute CPI contribution `coefficient · value` at the median row.
    pub amount: f64,
}

/// The sweep result for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigResult {
    /// Position in the canonical enumeration order.
    pub id: usize,
    /// Axis name → chosen value.
    pub settings: BTreeMap<String, u64>,
    /// Mean predicted CPI over every transplanted section.
    pub mean_cpi: f64,
    /// Lowest predicted section CPI.
    pub min_cpi: f64,
    /// Highest predicted section CPI.
    pub max_cpi: f64,
    /// Top counters the tree blames on the median section, best first.
    pub blame: Vec<Blame>,
    /// Predicted median-section CPI if the top blamed counter were driven
    /// to zero ([`mtperf_mtree::analysis::what_if`]); `null` when the leaf
    /// model is constant.
    pub zero_top_blame_cpi: Option<f64>,
}

impl Serialize for ConfigResult {
    fn serialize(&self) -> Value {
        let settings = self
            .settings
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        Value::Object(vec![
            ("id".to_string(), self.id.serialize()),
            ("settings".to_string(), Value::Object(settings)),
            ("mean_cpi".to_string(), self.mean_cpi.serialize()),
            ("min_cpi".to_string(), self.min_cpi.serialize()),
            ("max_cpi".to_string(), self.max_cpi.serialize()),
            ("blame".to_string(), self.blame.serialize()),
            (
                "zero_top_blame_cpi".to_string(),
                self.zero_top_blame_cpi.serialize(),
            ),
        ])
    }
}

impl Deserialize for ConfigResult {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, de::Error> {
            T::deserialize(value.get_field(name).unwrap_or(&Value::Null))
                .map_err(|e| e.context(name).context("ConfigResult"))
        }
        let raw_settings = value
            .get_field("settings")
            .and_then(Value::as_object)
            .ok_or_else(|| de::Error::custom("missing settings object").context("ConfigResult"))?;
        let mut settings = BTreeMap::new();
        for (k, v) in raw_settings {
            settings.insert(
                k.clone(),
                u64::deserialize(v).map_err(|e| e.context(k).context("settings"))?,
            );
        }
        Ok(ConfigResult {
            id: field(value, "id")?,
            settings,
            mean_cpi: field(value, "mean_cpi")?,
            min_cpi: field(value, "min_cpi")?,
            max_cpi: field(value, "max_cpi")?,
            blame: field(value, "blame")?,
            zero_top_blame_cpi: field(value, "zero_top_blame_cpi")?,
        })
    }
}

/// A full sweep report (the JSON `mtperf sweep` emits).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Schema tag, [`SCHEMA`].
    pub schema: String,
    /// Name of the base machine the counters were measured on.
    pub base_machine: String,
    /// Whether predictions were reconstructed residually (`tree + AnCpi`).
    pub residual: bool,
    /// Number of configurations explored.
    pub n_configs: usize,
    /// Number of measured sections transplanted onto each configuration.
    pub n_sections: usize,
    /// Per-configuration results, enumeration order.
    pub configs: Vec<ConfigResult>,
    /// Configuration ids sorted by ascending mean CPI (ties by id).
    pub ranking: Vec<usize>,
}

impl SweepReport {
    /// The best (lowest mean-CPI) configuration.
    pub fn best(&self) -> &ConfigResult {
        &self.configs[self.ranking[0]]
    }

    /// The worst (highest mean-CPI) configuration.
    pub fn worst(&self) -> &ConfigResult {
        &self.configs[*self.ranking.last().expect("non-empty sweep")]
    }
}

/// Feature name for attribute index `attr` of the (possibly analytic-
/// augmented) learning problem.
fn feature_name(attr: usize) -> String {
    if attr < N_EVENTS {
        Event::ALL[attr].metric_name().to_string()
    } else if attr < N_EVENTS + N_ANALYTIC {
        ANALYTIC_NAMES[attr - N_EVENTS].to_string()
    } else {
        format!("attr{attr}")
    }
}

/// Runs the sweep: enumerate `spec`, transplant every section in `samples`
/// onto each configuration, predict through the compiled parallel engine,
/// and blame the median section of every configuration.
///
/// `residual` selects residual reconstruction (`tree(row) + AnCpi`); it
/// requires an analytic-augmented model. A model trained on the plain 20
/// counters sweeps fine — it just cannot see latency-parameter effects,
/// only the miss-rate power laws.
///
/// # Errors
///
/// Spec validation errors ([`MtreeError::BadParams`]), an empty sample set
/// ([`MtreeError::EmptyDataset`]), a model whose attribute count is neither
/// the 20 counters nor counters+analytic, and engine failures from
/// [`mtperf_mtree::CompiledTree::try_predict_batch_with`].
pub fn run(
    spec: &SweepSpec,
    tree: &ModelTree,
    samples: &SampleSet,
    residual: bool,
    par: Parallelism,
) -> Result<SweepReport, MtreeError> {
    if samples.is_empty() {
        return Err(MtreeError::EmptyDataset);
    }
    let base = spec.base()?;
    let points = spec.enumerate()?;
    let compiled = tree.compile();
    let analytic = match compiled.n_attrs() {
        n if n == N_EVENTS => false,
        n if n == N_EVENTS + N_ANALYTIC => true,
        n => {
            return Err(MtreeError::BadParams(format!(
                "model expects {n} attributes; sweep supports {N_EVENTS} (counters) or {} (counters + analytic)",
                N_EVENTS + N_ANALYTIC
            )))
        }
    };
    if residual && !analytic {
        return Err(MtreeError::BadParams(
            "residual sweep needs a model trained with --features analytic".to_string(),
        ));
    }

    let rows: Vec<&[f64]> = samples.iter().map(|s| s.as_row()).collect();
    let n_sections = rows.len();
    let cols = compiled.n_attrs();
    let ancpi = N_EVENTS + N_ANALYTIC - 1;

    // Chunk configurations so each batch matrix stays near the target row
    // count; per-row arithmetic is independent of batch composition, so
    // chunking cannot change a single bit of the predictions.
    let configs_per_chunk = (TARGET_BATCH_ROWS / n_sections).max(1);
    let mut results = Vec::with_capacity(points.len());
    for chunk in points.chunks(configs_per_chunk) {
        // Build the chunk's row block: per config, every section
        // transplanted onto that machine (+ recomputed analytic columns).
        let mut block = Matrix::zeros(chunk.len() * n_sections, cols);
        for (c, point) in chunk.iter().enumerate() {
            let factors = scale_factors(&base, &point.machine);
            let model = analytic.then(|| AnalyticModel::new(point.machine.clone()));
            for (r, rates) in rows.iter().enumerate() {
                let moved = transplant_rates(rates, &factors);
                let out = block.row_mut(c * n_sections + r);
                out[..N_EVENTS].copy_from_slice(&moved);
                if let Some(model) = &model {
                    out[N_EVENTS..].copy_from_slice(&model.features(&moved));
                }
            }
        }
        let mut preds = compiled.try_predict_batch_with(&block, par)?;
        if residual {
            for (r, p) in preds.iter_mut().enumerate() {
                *p += block.row(r)[ancpi];
            }
        }

        for (c, point) in chunk.iter().enumerate() {
            let preds = &preds[c * n_sections..(c + 1) * n_sections];
            let mut sum = 0.0;
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &p in preds {
                sum += p;
                lo = lo.min(p);
                hi = hi.max(p);
            }
            // Median by predicted CPI, ties broken by row index so the
            // report is deterministic.
            let mut order: Vec<usize> = (0..n_sections).collect();
            order.sort_by(|&a, &b| {
                preds[a]
                    .partial_cmp(&preds[b])
                    .expect("finite predictions")
                    .then(a.cmp(&b))
            });
            let median_row = order[(n_sections - 1) / 2];
            let row = block.row(c * n_sections + median_row);

            let mut contribs = analysis::contributions(tree, row)?;
            contribs.sort_by(|a, b| {
                b.amount
                    .abs()
                    .partial_cmp(&a.amount.abs())
                    .expect("finite contributions")
                    .then(a.attr.cmp(&b.attr))
            });
            let blame: Vec<Blame> = contribs
                .iter()
                .take(spec.top_blame)
                .map(|c| Blame {
                    feature: feature_name(c.attr),
                    amount: c.amount,
                })
                .collect();
            let zero_top_blame_cpi = match contribs.first() {
                Some(top) => {
                    let mut p = analysis::what_if(tree, row, top.attr, 0.0)?;
                    if residual {
                        p += row[ancpi];
                    }
                    Some(p)
                }
                None => None,
            };

            results.push(ConfigResult {
                id: point.id,
                settings: point.settings.clone(),
                mean_cpi: sum / n_sections as f64,
                min_cpi: lo,
                max_cpi: hi,
                blame,
                zero_top_blame_cpi,
            });
        }
    }

    let mut ranking: Vec<usize> = (0..results.len()).collect();
    ranking.sort_by(|&a, &b| {
        results[a]
            .mean_cpi
            .partial_cmp(&results[b].mean_cpi)
            .expect("finite mean CPI")
            .then(a.cmp(&b))
    });

    Ok(SweepReport {
        schema: SCHEMA.to_string(),
        base_machine: spec.base_machine.clone(),
        residual,
        n_configs: results.len(),
        n_sections,
        configs: results,
        ranking,
    })
}

/// Renders the top `limit` configurations (by mean CPI) as a fixed-width
/// table, best first.
pub fn format_table(report: &SweepReport, limit: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "sweep over {} configs x {} sections (base {}{})\n",
        report.n_configs,
        report.n_sections,
        report.base_machine,
        if report.residual { ", residual" } else { "" }
    ));
    out.push_str(&format!(
        "{:>5}  {:>9}  {:>9}  {:>9}  {:<28}  settings\n",
        "rank", "mean CPI", "min", "max", "top blame"
    ));
    for (rank, &id) in report.ranking.iter().take(limit).enumerate() {
        let c = &report.configs[id];
        let blame = c
            .blame
            .first()
            .map(|b| format!("{} ({:+.4})", b.feature, b.amount))
            .unwrap_or_else(|| "-".to_string());
        let settings = c
            .settings
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!(
            "{:>5}  {:>9.4}  {:>9.4}  {:>9.4}  {:<28}  {}\n",
            rank + 1,
            c.mean_cpi,
            c.min_cpi,
            c.max_cpi,
            blame,
            settings
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtperf_counters::SectionSample;
    use mtperf_mtree::M5Params;

    fn spec_json(axes: &str) -> SweepSpec {
        serde_json::from_str(&format!(r#"{{"axes": {axes}}}"#)).unwrap()
    }

    fn tiny_samples(n: usize) -> SampleSet {
        let mut set = SampleSet::new();
        for i in 0..n {
            let mut rates = [0.0; N_EVENTS];
            rates[Event::InstLd.index()] = 0.3;
            rates[Event::L1dm.index()] = 0.01 + 0.001 * (i % 7) as f64;
            rates[Event::L2m.index()] = 0.002 + 0.0015 * (i % 5) as f64;
            rates[Event::BrMisPr.index()] = 0.004 + 0.0005 * (i % 3) as f64;
            let cpi = 0.5
                + 160.0 * rates[Event::L2m.index()] / 4.0
                + 15.0 * rates[Event::BrMisPr.index()];
            set.push(SectionSample::new("w", i, cpi, rates));
        }
        set
    }

    fn fitted_tree(samples: &SampleSet) -> ModelTree {
        let data = crate::dataset_from_samples(samples).unwrap();
        ModelTree::fit(&data, &M5Params::default().with_min_instances(10)).unwrap()
    }

    #[test]
    fn enumeration_is_odometer_ordered() {
        let spec = spec_json(r#"{"l2_kb": [1024, 4096], "history_bits": [8, 12]}"#);
        let points = spec.enumerate().unwrap();
        assert_eq!(points.len(), 4);
        // history_bits (later axis) spins fastest.
        assert_eq!(points[0].settings["l2_kb"], 1024);
        assert_eq!(points[0].settings["history_bits"], 8);
        assert_eq!(points[1].settings["l2_kb"], 1024);
        assert_eq!(points[1].settings["history_bits"], 12);
        assert_eq!(points[3].settings["l2_kb"], 4096);
        // Un-swept axes pin to the base machine.
        assert_eq!(points[0].settings["l1d_kb"], 32);
        assert_eq!(points[0].machine.l2.size_bytes, 1024 * 1024);
        assert_eq!(points[3].machine.predictor.history_bits, 12);
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        let zero = spec_json(r#"{"l2_kb": [0]}"#);
        assert!(matches!(
            zero.enumerate().unwrap_err(),
            MtreeError::BadParams(_)
        ));
        let indivisible = spec_json(r#"{"l1d_kb": [1], "l1d_ways": [64]}"#);
        assert!(matches!(
            indivisible.enumerate().unwrap_err(),
            MtreeError::BadParams(_)
        ));
        let bad_tlb = spec_json(r#"{"dtlb1_entries": [6]}"#);
        assert!(matches!(
            bad_tlb.enumerate().unwrap_err(),
            MtreeError::BadParams(_)
        ));
        let huge = spec_json(
            r#"{"l1d_kb": [1,2,4,8,16,32,64,128,256,512],
                "l2_kb": [1,2,4,8,16,32,64,128,256,512],
                "l2_ways": [1,2,4,8],
                "dtlb1_entries": [4,8,16,32,64,128,256,512],
                "itlb_entries": [4,8,16,32,64,128,256,512],
                "history_bits": [1,2,3,4,5,6,7,8]}"#,
        );
        assert!(matches!(
            huge.enumerate().unwrap_err(),
            MtreeError::BadParams(msg) if msg.contains("limit")
        ));
        let unknown: Result<SweepSpec, _> =
            serde_json::from_str(r#"{"base_machine": "core2_duo", "axes": {"l3_kb": [1]}}"#);
        assert!(unknown.is_err());
        let bad_machine = SweepSpec {
            base_machine: "z80".into(),
            axes: SweepAxes::default(),
            top_blame: 3,
        };
        assert!(bad_machine.base().is_err());
    }

    #[test]
    fn sweep_prefers_bigger_l2_and_ranks_deterministically() {
        let samples = tiny_samples(80);
        let tree = fitted_tree(&samples);
        let spec = spec_json(r#"{"l2_kb": [512, 4096], "history_bits": [8, 12]}"#);
        let report = run(&spec, &tree, &samples, false, Parallelism::Off).unwrap();
        assert_eq!(report.schema, SCHEMA);
        assert_eq!(report.n_configs, 4);
        assert_eq!(report.n_sections, 80);
        // The learned tree maps L2 misses to CPI, and the power law says a
        // smaller L2 misses more: the 512 KiB configs must predict worse.
        let mean = |id: usize| report.configs[id].mean_cpi;
        assert!(mean(0) > mean(2), "{} vs {}", mean(0), mean(2));
        assert!(mean(1) > mean(3), "{} vs {}", mean(1), mean(3));
        assert_eq!(report.best().settings["l2_kb"], 4096);
        assert_eq!(report.worst().settings["l2_kb"], 512);
        // Deterministic re-run, bit for bit.
        let again = run(&spec, &tree, &samples, false, Parallelism::Fixed(3)).unwrap();
        assert_eq!(report, again);
        // Blame names a real feature with a finite amount.
        let b = &report.best().blame;
        assert!(!b.is_empty());
        assert!(b[0].amount.is_finite());
        let table = format_table(&report, 2);
        assert!(table.contains("l2_kb=4096"), "{table}");
    }

    #[test]
    fn residual_sweep_requires_analytic_model_and_reconstructs() {
        let samples = tiny_samples(80);
        let plain = fitted_tree(&samples);
        let spec = spec_json(r#"{"l2_kb": [2048, 4096]}"#);
        assert!(matches!(
            run(&spec, &plain, &samples, true, Parallelism::Off).unwrap_err(),
            MtreeError::BadParams(_)
        ));

        let machine = MachineConfig::core2_duo();
        let data = crate::analytic::dataset_with_analytic(&samples, &machine).unwrap();
        let aug = ModelTree::fit(&data, &M5Params::default().with_min_instances(10)).unwrap();
        let report = run(&spec, &aug, &samples, true, Parallelism::Off).unwrap();
        assert_eq!(report.n_configs, 2);
        assert!(report.residual);
        assert!(report.configs.iter().all(|c| c.mean_cpi.is_finite()));
    }

    #[test]
    fn serde_roundtrip_of_report() {
        let samples = tiny_samples(40);
        let tree = fitted_tree(&samples);
        let spec = spec_json(r#"{"history_bits": [8, 16]}"#);
        let report = run(&spec, &tree, &samples, false, Parallelism::Off).unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
