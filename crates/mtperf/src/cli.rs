//! Implementation of the `mtperf` command-line tool.
//!
//! The binary (`src/bin/mtperf.rs`) is a thin wrapper over these functions,
//! which keeps every code path unit-testable. Argument handling is a small
//! hand-rolled parser: flags are `--key value` pairs after a subcommand.

use std::collections::BTreeMap;
use std::fs::File;
use std::path::Path;

use mtperf_counters::{IngestPolicy, SampleSet};
use mtperf_eval::{breakdown_table, comparison_table, cross_validate, per_label_metrics, Metrics};
use mtperf_linalg::parallel::{self, Parallelism};
use mtperf_mtree::{
    analysis, residual_dataset, Dataset, Learner, M5Learner, M5Params, ModelTree, ResidualLearner,
    RuleSet,
};
use mtperf_sim::MachineConfig;
use serde::Serialize;

use crate::analytic;
use crate::errors::CliError;
use crate::sweep;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand name.
    pub command: String,
    /// `--key value` options (keys without the dashes).
    pub options: BTreeMap<String, String>,
    /// Bare `--flag` switches.
    pub flags: Vec<String>,
}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a message when no subcommand is given or an option is
    /// missing its value.
    pub fn parse(raw: &[String]) -> Result<Args, String> {
        let mut iter = raw.iter().peekable();
        let command = iter
            .next()
            .ok_or_else(|| "missing subcommand".to_string())?
            .clone();
        let mut options = BTreeMap::new();
        let mut flags = Vec::new();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {arg:?}"));
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    options.insert(key.to_string(), iter.next().expect("peeked").clone());
                }
                _ => flags.push(key.to_string()),
            }
        }
        Ok(Args {
            command,
            options,
            flags,
        })
    }

    /// Fetches a required option.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Fetches an optional numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn numeric<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key} has invalid value {v:?}")),
        }
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

/// The usage text.
pub const USAGE: &str = "\
mtperf — model-tree performance analysis

USAGE: mtperf <command> [options]

COMMANDS
  simulate   --out <csv> [--arff <arff>] [--instructions N] [--section-len N] [--seed N]
             Simulate the SPEC-like suite on the Core 2 Duo model and write sections.
  train      --data <csv> --out <model.json> [--min-instances N] [--no-smoothing]
             Train an M5' model tree on a section CSV.
  show       --model <model.json> [--rules]
             Print a trained tree (or its ordered rule list).
  evaluate   --data <csv> [--k N] [--min-instances N]
             10-fold cross validation with per-workload breakdown. With
             --features analytic, also reports residual-fusion vs direct vs
             analytic-alone on the same folds.
  analyze    --model <model.json> --data <csv> [--top N]
             Classify each workload's median section and rank its
             optimization opportunities (the paper's what/how-much report).
             Pass the --features/--machine the model was trained with.
  predict    --model <model.json> --data <csv> [--out <file>] [--format csv|json]
             Batch-predict CPI for every section of a counter CSV through
             the compiled tree (bit-identical to per-row prediction) and
             emit workload, section, measured and predicted CPI.
  sweep      --spec <spec.json> --model <model.json> --data <csv>
             [--out <report.json>] [--format table|json] [--top N] [--residual]
             Design-space exploration: enumerate the spec's machine grid
             (cache size/ways, TLB entries, predictor budget), transplant
             every measured section onto each configuration via documented
             miss-rate power laws, score the whole grid through the
             compiled parallel engine, and report per-config predicted CPI
             with the counters the tree blames (schema mtperf-sweep-v1).
  serve      --model <model.json> [--socket <path>] [--tcp <addr>] [--stdio]
             [--registry <manifest.json>] [--workers N] [--queue-depth N]
             [--tenant-quota N] [--cache-size N] [--deadline-ms N]
             [--keep-versions N]
             Long-running multi-tenant prediction daemon speaking
             newline-delimited JSON (schema mtperf-serve-v2, a strict
             superset of v1) over stdin/stdout, a Unix socket, and/or a
             TCP listener: ops predict, health/ready, reload, load,
             promote, rollback, list, save, shutdown. Named model registry
             (many models x versions, last-known-good on poisoned
             promote, optional manifest persistence via --registry),
             per-tenant admission quotas with fair round-robin dispatch,
             prediction cache for repeated sections, per-request
             deadlines, degraded fallback, atomic (kill-safe) saves,
             SIGTERM drain-then-exit. --socket/--tcp alone disable the
             stdio session; add --stdio to serve it alongside.
             --keep-versions N bounds each model's rollback history:
             promotes garbage-collect versions beyond the newest N and
             delete artifacts no resident version references (the active
             version and rollback targets are never collected).
  serve --fleet --replicas <ep,ep,...> [--socket <path>] [--tcp <addr>]
             [--stdio] [--hedge-ms N] [--retry-attempts N]
             [--retry-base-ms N]
             Fault-tolerant replica router: speaks mtperf-serve-v2 to
             clients unchanged while multiplexing over the given replica
             endpoints (host:port, or socket paths containing '/').
             Consecutive failures open a per-replica circuit breaker with
             probed half-open recovery; dispatch is power-of-two-choices
             on in-flight counts; idempotent ops (predict, health, ready,
             list) fail over under a deadline-aware retry budget with
             decorrelated-jitter backoff; predicts slower than --hedge-ms
             (default 50) are hedged once to a second replica, first
             well-formed answer wins. Mutating ops broadcast fleet-wide;
             health merges per-replica reports. When every replica is
             down the client gets a typed `unavailable` error, never a
             hang.
  dst        [--seed N] [--seeds N] [--sessions N] [--trace-dir <dir>]
             Deterministic simulation of the serving stack: drives randomized
             client sessions (faulty transports, interleaved multi-connection
             accept loops, registry promote/rollback races, poisoned reloads,
             deadline races, per-tenant overload, cache-consistency probes,
             crash/restart) under seeded virtual time and checks the serving
             invariants. One seed fully determines a run; a failing seed
             replays bit-identically with --seed <N> (or MTPERF_SIM_SEED).
             --seeds sweeps N consecutive seeds, aggregates coverage across
             the sweep, and fails if the aggregate misses its coverage
             floors; --trace-dir writes one replay trace file per seed.
             Each seed additionally runs a fleet simulation (2-4 replica
             engines behind the --fleet router under virtual time, with
             scripted replica kills/restarts, partition-heal cycles,
             latency spikes, transport drops, and poisoned promotes on
             replica subsets) checking the fleet invariants: exactly-once
             answers despite hedging, no request lost across a replica
             kill, circuit-open replicas receive only probes, replies
             route to the issuing connection.

GLOBAL OPTIONS
  --features <counters|analytic>
             Feature set for --data ingest (train/evaluate/analyze/predict;
             default counters). `analytic` appends six derived columns —
             closed-form per-component CPI estimates (AnBase, AnFront,
             AnMem, AnTlb, AnBr) and their sum AnCpi — priced from the
             --machine parameters. With `counters` the ingest path is
             bit-identical to previous releases.
  --machine <core2_duo|netburst_like|tiny>
             Machine whose parameters price the analytic columns
             (default core2_duo).
  --residual Train on (or reconstruct from) the residual CPI − AnCpi
             instead of raw CPI. Needs --features analytic; pass the same
             flags at train and use time. Reconstruction adds AnCpi back
             identically on scalar and batch paths, so predictions stay
             bit-identical across thread budgets.
  --threads <auto|off|N>
             Thread budget for training, cross validation, batch prediction,
             and serving (default auto). Work runs on a persistent worker
             pool; under `auto`, small prediction batches stay serial until
             the measured cutover where fan-out pays for its dispatch.
             Results are bit-identical at any setting; only wall time
             changes.
  --policy <strict|skip|repair>
             Ingest policy for --data CSVs (default strict). `strict` rejects
             the file on the first malformed row; `skip` quarantines bad rows
             and trains on the rest; `repair` additionally imputes missing
             rates and winsorizes extreme outliers. Skip/repair print an
             ingest report to stderr.
  --trace    Collect spans and counters (ingest, split search, CV folds,
             batch prediction) and print a summary table to stderr at exit.
             Predictions and metrics are bit-identical with tracing on or off.
  --trace-out <path>
             Stream every span/counter event as JSON lines (schema
             mtperf-trace-v1) to <path>. Implies event collection.
  --metrics <table|json>
             Dump the end-of-run counter/gauge registry to stderr in the
             given format. Command output on stdout is unaffected.

EXIT CODES
  0 success, 2 usage error, 65 bad input data, 69 service unavailable
  (serve could not start), 74 i/o error, 1 other failure.
";

/// Builds the observability configuration from the `--trace`,
/// `--trace-out`, and `--metrics` options (all off by default).
pub fn obs_config(args: &Args) -> Result<mtperf_obs::ObsConfig, CliError> {
    let metrics = match args.options.get("metrics") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|e| CliError::Usage(format!("option --metrics: {e}")))?,
        ),
    };
    Ok(mtperf_obs::ObsConfig {
        trace: args.flag("trace"),
        trace_out: args.options.get("trace-out").map(std::path::PathBuf::from),
        metrics,
    })
}

/// Renders the end-of-run observability report to stderr, keeping stdout
/// for command payloads.
pub fn emit_obs_report(report: &mtperf_obs::Report) {
    if report.summarize {
        eprint!("{}", report.summary());
    } else if let Some(e) = &report.io_error {
        eprintln!("trace sink error (stream truncated): {e}");
    }
    match report.metrics {
        Some(mtperf_obs::MetricsFormat::Table) => eprint!("{}", report.metrics_table()),
        Some(mtperf_obs::MetricsFormat::Json) => eprintln!("{}", report.metrics_json()),
        None => {}
    }
}

/// Parses the `--policy` option (default strict).
fn ingest_policy(args: &Args) -> Result<IngestPolicy, CliError> {
    match args.options.get("policy") {
        None => Ok(IngestPolicy::Strict),
        Some(v) => v
            .parse()
            .map_err(|e| CliError::Usage(format!("option --policy: {e}"))),
    }
}

/// Loads a section CSV into a sample set under the given ingest policy.
///
/// Under skip/repair the ingest report (with quarantine and repair
/// diagnostics) goes to stderr, keeping stdout for command output.
///
/// The read goes through [`mtperf_obs::fsio::read`], so transient I/O
/// faults (EINTR-class) are retried with jittered backoff, persistent
/// ones surface as a typed I/O error (exit 74), and the whole path is
/// drivable from the deterministic-simulation fs-fault seam.
fn load_samples(path: &str, policy: IngestPolicy) -> Result<SampleSet, CliError> {
    let bytes = mtperf_obs::fsio::read(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    let (samples, report) = mtperf_counters::read_csv_with_policy(&bytes[..], policy)?;
    if policy != IngestPolicy::Strict {
        eprintln!("{report}");
    }
    Ok(samples)
}

/// Parses `--features counters|analytic`; `true` means the analytic columns
/// are appended at ingest.
fn analytic_features(args: &Args) -> Result<bool, CliError> {
    match args.options.get("features").map(String::as_str) {
        None | Some("counters") => Ok(false),
        Some("analytic") => Ok(true),
        Some(other) => Err(CliError::Usage(format!(
            "option --features: unknown feature set {other:?} (expected counters or analytic)"
        ))),
    }
}

/// Parses `--machine` (default `core2_duo`), the machine whose parameters
/// price the analytic columns.
fn machine_from(args: &Args) -> Result<MachineConfig, CliError> {
    match args.options.get("machine") {
        None => Ok(MachineConfig::core2_duo()),
        Some(name) => sweep::machine_by_name(name)
            .map_err(|e| CliError::Usage(format!("option --machine: {e}"))),
    }
}

/// Loads the learning problem honoring `--features`/`--machine`. The
/// `counters` path is
/// byte-for-byte the historical ingest — the analytic module is not even
/// consulted — which keeps baseline training bit-identical with the flag
/// off.
fn to_dataset_mode(
    samples: &SampleSet,
    args: &Args,
) -> Result<(Dataset, Vec<String>, bool), CliError> {
    let analytic = analytic_features(args)?;
    let labels = crate::labels_from_samples(samples);
    let data = if analytic {
        analytic::dataset_with_analytic(samples, &machine_from(args)?)?
    } else {
        crate::dataset_from_samples(samples)?
    };
    Ok((data, labels, analytic))
}

/// Validates `--residual` against the feature mode and resolves the
/// baseline (`AnCpi`) column.
fn residual_baseline(
    args: &Args,
    data: &Dataset,
    analytic: bool,
) -> Result<Option<usize>, CliError> {
    if !args.flag("residual") {
        return Ok(None);
    }
    if !analytic {
        return Err(CliError::Usage(
            "--residual needs --features analytic (the AnCpi baseline column)".to_string(),
        ));
    }
    Ok(Some(analytic::ancpi_index(data)?))
}

/// `mtperf simulate`.
pub fn cmd_simulate(args: &Args) -> Result<(), CliError> {
    let out = args.require("out")?;
    let instructions: u64 = args.numeric("instructions", 2_000_000)?;
    let section_len: u64 = args.numeric("section-len", 10_000)?;
    let seed: u64 = args.numeric("seed", 2007)?;
    eprintln!("simulating {instructions} instructions/workload (seed {seed})...");
    let samples = crate::sim::simulate_suite(instructions, section_len, seed);
    let mut file = File::create(out)?;
    mtperf_counters::write_csv(&samples, &mut file)?;
    println!("{} sections -> {out}", samples.len());
    if let Some(arff) = args.options.get("arff") {
        let mut file = File::create(arff)?;
        mtperf_counters::write_arff(&samples, &mut file)?;
        println!("ARFF (WEKA) copy -> {arff}");
    }
    Ok(())
}

fn params_from(args: &Args, n_rows: usize) -> Result<M5Params, String> {
    let default_min = (n_rows / 30).max(8);
    let min: usize = args.numeric("min-instances", default_min)?;
    Ok(M5Params::default()
        .with_min_instances(min)
        .with_smoothing(!args.flag("no-smoothing"))
        .with_parallelism(parallel::global()))
}

/// `mtperf train`.
///
/// With `--features analytic` the dataset carries the derived analytical
/// columns; adding `--residual` retargets training at `CPI − AnCpi` so the
/// tree learns only the analytical model's error. A residual model file is
/// indistinguishable from a direct one — pass `--residual` again at
/// predict/evaluate/sweep time to reconstruct.
pub fn cmd_train(args: &Args) -> Result<(), CliError> {
    let data_path = args.require("data")?;
    let out = args.require("out")?;
    let samples = load_samples(data_path, ingest_policy(args)?)?;
    let (data, _, analytic) = to_dataset_mode(&samples, args)?;
    let data = match residual_baseline(args, &data, analytic)? {
        Some(baseline) => residual_dataset(&data, baseline)?,
        None => data,
    };
    let params = params_from(args, data.n_rows())?;
    let tree = ModelTree::fit(&data, &params)?;
    tree.save(out)?;
    println!(
        "trained on {} sections ({} features{}): {} classes, depth {} -> {out}",
        data.n_rows(),
        data.n_attrs(),
        if args.flag("residual") {
            ", residual target"
        } else {
            ""
        },
        tree.n_leaves(),
        tree.depth()
    );
    Ok(())
}

/// `mtperf show`.
pub fn cmd_show(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let tree = ModelTree::load(args.require("model")?)?;
    if args.flag("rules") {
        write!(out, "{}", RuleSet::from_tree(&tree).render("CPI"))?;
    } else {
        write!(out, "{}", tree.render("CPI"))?;
    }
    Ok(())
}

/// `mtperf evaluate`.
///
/// With `--features analytic` the report additionally compares direct CV
/// against residual-reconstruction CV and the closed-form analytical model
/// alone, so the compositional-fusion gain is a measured number rather than
/// an assumption.
pub fn cmd_evaluate(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let samples = load_samples(args.require("data")?, ingest_policy(args)?)?;
    let (data, labels, analytic) = to_dataset_mode(&samples, args)?;
    // --residual here only selects which model renders the per-workload
    // breakdown; the analytic comparison below always reports both CVs.
    let breakdown_residual = residual_baseline(args, &data, analytic)?;
    let k: usize = args.numeric("k", 10)?;
    let params = params_from(args, data.n_rows())?;
    let learner = M5Learner::new(params.clone());
    let cv = cross_validate(&learner, &data, k, 7)?;
    writeln!(out, "{k}-fold CV: {}", cv.pooled)?;
    if !cv.skipped.is_empty() {
        writeln!(
            out,
            "note: {} of {k} folds skipped (degenerate data):",
            cv.skipped.len()
        )?;
        for s in &cv.skipped {
            writeln!(out, "  fold {}: {}", s.fold, s.reason)?;
        }
    }
    if cv.undefined_correlation_folds > 0 {
        writeln!(
            out,
            "note: correlation excludes {} fold(s) with constant actuals",
            cv.undefined_correlation_folds
        )?;
    }
    if analytic {
        let baseline = analytic::ancpi_index(&data)?;
        let residual_learner = ResidualLearner::new(M5Learner::new(params.clone()), baseline);
        let residual_cv = cross_validate(&residual_learner, &data, k, 7)?;
        let analytic_alone = Metrics::compute(data.targets(), data.column(baseline))
            .map_err(|e| CliError::Data(e.to_string()))?;
        writeln!(
            out,
            "\nresidual fusion vs direct ({k}-fold CV, same folds):"
        )?;
        let rows = vec![
            ("M5' direct".to_string(), cv.pooled),
            ("M5' on analytic residual".to_string(), residual_cv.pooled),
            ("analytic model alone".to_string(), analytic_alone),
        ];
        write!(out, "{}", comparison_table(&rows))?;
    }
    writeln!(out, "\nper-workload breakdown (training-set fit):")?;
    let breakdown = match breakdown_residual {
        Some(baseline) => {
            let model = ResidualLearner::new(M5Learner::new(params), baseline).fit(&data)?;
            per_label_metrics(&*model, &data, &labels)
        }
        None => {
            let model = ModelTree::fit(&data, &params)?;
            per_label_metrics(&model, &data, &labels)
        }
    };
    write!(out, "{}", breakdown_table(&breakdown))?;
    Ok(())
}

/// `mtperf analyze`.
///
/// Use the same `--features` (and `--machine`) the model was trained with:
/// the attribute widths must agree, and a mismatch is a typed data error
/// (exit 65), not a panic.
pub fn cmd_analyze(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let tree = ModelTree::load(args.require("model")?)?;
    let samples = load_samples(args.require("data")?, ingest_policy(args)?)?;
    let (data, labels, _) = to_dataset_mode(&samples, args)?;
    let top: usize = args.numeric("top", 3)?;

    // The model remembers how many attributes it was trained on; a counter
    // CSV ingested under the wrong --features cannot be classified.
    let expected = tree.compile().n_attrs();
    if data.n_attrs() < expected {
        return Err(CliError::Data(format!(
            "model expects {expected} attributes but the data has {}; \
             re-run with the --features the model was trained with",
            data.n_attrs()
        )));
    }

    let mut by_workload: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, label) in labels.iter().enumerate() {
        by_workload.entry(label.as_str()).or_default().push(i);
    }
    for (workload, mut indices) in by_workload {
        indices.sort_by(|&a, &b| data.target(a).total_cmp(&data.target(b)));
        let median = indices[indices.len() / 2];
        let row = data.row(median);
        let class = tree.try_classify(&row)?;
        writeln!(
            out,
            "{workload}: median CPI {:.2}, class {}",
            data.target(median),
            class.leaf
        )?;
        let ops = analysis::rank_opportunities(&tree, &row)?;
        if ops.is_empty() {
            let levers: Vec<&str> = class
                .high_side_attrs()
                .into_iter()
                .map(|a| data.attr_name(a))
                .collect();
            writeln!(out, "  constant class; split-variable levers: {levers:?}")?;
        }
        for c in ops.iter().take(top) {
            writeln!(
                out,
                "  eliminate {:<10} -> up to {:.1}% faster",
                data.attr_name(c.attr),
                100.0 * c.fraction
            )?;
        }
    }
    Ok(())
}

/// One emitted prediction row of `mtperf predict`.
#[derive(Serialize)]
struct Prediction {
    workload: String,
    section_index: usize,
    cpi: f64,
    predicted_cpi: f64,
}

/// `mtperf predict`: batch CPI prediction over a counter CSV.
///
/// Loads the model, streams the CSV through the ingest policy, scores every
/// section through the compiled tree ([`ModelTree::compile`]) at the global
/// thread budget, and emits one record per section (measured and predicted
/// CPI) as CSV (default) or JSON, to `--out` or stdout.
pub fn cmd_predict(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let tree = ModelTree::load(args.require("model")?)?;
    let samples = load_samples(args.require("data")?, ingest_policy(args)?)?;
    let (data, _, analytic) = to_dataset_mode(&samples, args)?;
    let residual = residual_baseline(args, &data, analytic)?;
    let format = args
        .options
        .get("format")
        .map(String::as_str)
        .unwrap_or("csv");
    // Warm the worker pool before the timed work: batch scoring is the
    // latency-sensitive command, and lazy pool start-up plus overhead
    // calibration would otherwise land inside the first prediction.
    parallel::warm_up();
    let matrix = data.to_matrix();
    let mut predicted = tree
        .compile()
        .try_predict_batch_with(&matrix, parallel::global())?;
    if let Some(baseline) = residual {
        // Residual reconstruction: one `+` per row in row order, the same
        // operation ResidualPredictor appends on both its paths, so the
        // output stays bit-identical to scalar residual prediction.
        for (r, p) in predicted.iter_mut().enumerate() {
            *p += matrix.row(r)[baseline];
        }
    }
    let records: Vec<Prediction> = samples
        .iter()
        .zip(&predicted)
        .map(|(s, &p)| Prediction {
            workload: s.workload.clone(),
            section_index: s.section_index,
            cpi: s.cpi,
            predicted_cpi: p,
        })
        .collect();
    let rendered = match format {
        "csv" => {
            let mut text = String::from("workload,section_index,cpi,predicted_cpi\n");
            for r in &records {
                use std::fmt::Write as _;
                let _ = writeln!(
                    text,
                    "{},{},{},{}",
                    r.workload, r.section_index, r.cpi, r.predicted_cpi
                );
            }
            text
        }
        "json" => {
            let mut text = serde_json::to_string_pretty(&records)
                .map_err(|e| CliError::Other(e.to_string()))?;
            text.push('\n');
            text
        }
        other => {
            return Err(CliError::Usage(format!(
                "option --format: unknown format {other:?} (expected csv or json)"
            )))
        }
    };
    match args.options.get("out") {
        Some(path) => {
            // Atomic publication: a crash mid-write leaves either the old
            // file or nothing at the destination, never a torn report.
            mtperf_obs::fsio::atomic_write(path, rendered.as_bytes())
                .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            println!("{} predictions -> {path}", records.len());
        }
        None => write!(out, "{rendered}")?,
    }
    Ok(())
}

/// `mtperf sweep`: design-space exploration through a trained model.
///
/// Reads a [`sweep::SweepSpec`] JSON file, enumerates the configuration
/// grid, transplants every section of `--data` onto each configuration,
/// scores the whole grid through the compiled parallel engine, and prints
/// the best configurations with per-config counter blame. `--out` writes
/// the full `mtperf-sweep-v1` JSON report (atomically); `--format json`
/// prints it to stdout instead of the table.
///
/// # Errors
///
/// [`CliError::Usage`] for bad options or spec parameters (unknown machine,
/// zero axis values, oversized grids), [`CliError::Data`] for an unreadable
/// spec or a model/data width mismatch, [`CliError::Io`] for file errors.
pub fn cmd_sweep(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let spec_path = args.require("spec")?;
    let tree = ModelTree::load(args.require("model")?)?;
    let samples = load_samples(args.require("data")?, ingest_policy(args)?)?;
    let top: usize = args.numeric("top", 10)?;
    let format = args
        .options
        .get("format")
        .map(String::as_str)
        .unwrap_or("table");
    if !matches!(format, "table" | "json") {
        return Err(CliError::Usage(format!(
            "option --format: unknown format {format:?} (expected table or json)"
        )));
    }
    let text = std::fs::read_to_string(spec_path)
        .map_err(|e| CliError::Io(format!("{spec_path}: {e}")))?;
    let spec: sweep::SweepSpec =
        serde_json::from_str(&text).map_err(|e| CliError::Data(format!("{spec_path}: {e}")))?;
    parallel::warm_up();
    let report = sweep::run(
        &spec,
        &tree,
        &samples,
        args.flag("residual"),
        parallel::global(),
    )?;
    if let Some(path) = args.options.get("out") {
        let mut json =
            serde_json::to_string_pretty(&report).map_err(|e| CliError::Other(e.to_string()))?;
        json.push('\n');
        mtperf_obs::fsio::atomic_write(path, json.as_bytes())
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        eprintln!("{} configurations -> {path}", report.n_configs);
    }
    match format {
        "json" => {
            let mut json = serde_json::to_string_pretty(&report)
                .map_err(|e| CliError::Other(e.to_string()))?;
            json.push('\n');
            write!(out, "{json}")?;
        }
        _ => write!(out, "{}", sweep::format_table(&report, top))?,
    }
    Ok(())
}

/// Coverage a multi-seed sweep must reach in aggregate. A single seed may
/// legitimately roll few of some scenario; a sweep that *never* exercises
/// a surface is a silently weakened harness, so the sweep — not each seed
/// — owns the floor. Single-seed runs (replays of a failing seed) are
/// exempt.
struct SweepCoverage {
    requests: u64,
    responses: u64,
    typed_errors: u64,
    restarts: u64,
    faults: u64,
    multi_conn_sessions: u64,
    registry_ops: u64,
    cache_lookups: u64,
    fleet_kills: u64,
    fleet_circuit_opens: u64,
    fleet_hedged: u64,
    fleet_failovers: u64,
}

impl SweepCoverage {
    fn absorb(&mut self, r: &crate::serve::dst::SimReport) {
        self.requests += r.requests;
        self.responses += r.responses;
        self.typed_errors += r.typed_errors;
        self.restarts += r.restarts;
        self.faults += r.faults_injected;
        self.multi_conn_sessions += r.multi_conn_sessions;
        self.registry_ops += r.registry_ops;
        self.cache_lookups += r.cache_hits + r.cache_misses;
    }

    fn absorb_fleet(&mut self, r: &crate::serve::fleet::dst::FleetSimReport) {
        self.fleet_kills += r.replica_kills;
        self.fleet_circuit_opens += r.circuit_opens;
        self.fleet_hedged += r.hedged_predicts;
        self.fleet_failovers += r.failovers;
    }

    /// Floors every aggregate must clear; returns the list of misses.
    fn misses(&self) -> Vec<String> {
        let floors: [(&str, u64, u64); 12] = [
            ("requests", self.requests, 1),
            ("responses", self.responses, 1),
            ("typed_errors", self.typed_errors, 1),
            ("restarts", self.restarts, 1),
            ("fs_faults", self.faults, 1),
            ("multi_conn_sessions", self.multi_conn_sessions, 1),
            ("registry_ops", self.registry_ops, 1),
            ("cache_lookups", self.cache_lookups, 1),
            ("fleet_replica_kills", self.fleet_kills, 1),
            ("fleet_circuit_opens", self.fleet_circuit_opens, 1),
            ("fleet_hedged_predicts", self.fleet_hedged, 1),
            ("fleet_failovers", self.fleet_failovers, 1),
        ];
        floors
            .iter()
            .filter(|(_, got, floor)| got < floor)
            .map(|(name, got, floor)| format!("{name}={got} (floor {floor})"))
            .collect()
    }
}

/// `mtperf dst`: deterministic simulation sweep of the serving stack.
///
/// Runs `--seeds` consecutive seeds starting at `--seed` (default: the
/// `MTPERF_SIM_SEED` environment variable, else 1), each simulating
/// `--sessions` randomized client sessions under virtual time, and checks
/// the serving invariants. With `--trace-dir`, writes one replayable trace
/// file per seed. The first failing seed stops the sweep; replay it with
/// `mtperf dst --seed <N> --sessions <N>`.
///
/// A multi-seed sweep additionally aggregates coverage counters across
/// all seeds and fails when the aggregate misses a floor — every surface
/// the harness exists to exercise (typed errors, restarts, injected
/// faults, multi-connection sessions, registry ops, cache lookups) must
/// actually have been hit somewhere in the sweep.
///
/// # Errors
///
/// [`CliError::Usage`] for bad options, [`CliError::Other`] when a seed
/// violates an invariant (the seed and violations are printed first) or
/// when the sweep's aggregate coverage misses a floor.
pub fn cmd_dst(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let base_seed: u64 = match args.options.get("seed") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("option --seed has invalid value {v:?}")))?,
        None => match std::env::var("MTPERF_SIM_SEED") {
            Ok(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("MTPERF_SIM_SEED has invalid value {v:?}")))?,
            Err(_) => 1,
        },
    };
    let seeds: u64 = args.numeric("seeds", 1).map_err(CliError::Usage)?;
    let sessions: usize = args.numeric("sessions", 200).map_err(CliError::Usage)?;
    if seeds == 0 || sessions == 0 {
        return Err(CliError::Usage(
            "options --seeds and --sessions must be at least 1".to_string(),
        ));
    }
    let trace_dir = args.options.get("trace-dir").map(std::path::PathBuf::from);
    if let Some(dir) = &trace_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Io(format!("{}: {e}", dir.display())))?;
    }
    let mut coverage = SweepCoverage {
        requests: 0,
        responses: 0,
        typed_errors: 0,
        restarts: 0,
        faults: 0,
        multi_conn_sessions: 0,
        registry_ops: 0,
        cache_lookups: 0,
        fleet_kills: 0,
        fleet_circuit_opens: 0,
        fleet_hedged: 0,
        fleet_failovers: 0,
    };
    for seed in base_seed..base_seed.saturating_add(seeds) {
        let report = crate::serve::dst::run_sim(&crate::serve::dst::SimConfig { seed, sessions });
        coverage.absorb(&report);
        writeln!(
            out,
            "dst seed={seed} sessions={sessions} requests={} responses={} typed_errors={} \
             restarts={} fs_faults={} multi_conn={} registry_ops={} cache_hits={} \
             cache_misses={} quota_refusals={} trace_hash={:016x} verdict={}",
            report.requests,
            report.responses,
            report.typed_errors,
            report.restarts,
            report.faults_injected,
            report.multi_conn_sessions,
            report.registry_ops,
            report.cache_hits,
            report.cache_misses,
            report.quota_refusals,
            report.trace_hash(),
            if report.passed() { "pass" } else { "FAIL" },
        )?;
        if let Some(dir) = &trace_dir {
            let path = dir.join(format!("dst-{seed:016x}.trace"));
            report
                .write_trace(&path)
                .map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
        }
        if !report.passed() {
            for v in &report.violations {
                writeln!(out, "dst seed={seed} violation: {v}")?;
            }
            writeln!(
                out,
                "dst: replay with `mtperf dst --seed {seed} --sessions {sessions}`"
            )?;
            return Err(CliError::Other(format!(
                "dst: seed {seed} violated {} invariant(s)",
                report.violations.len()
            )));
        }
        let fleet_report =
            crate::serve::fleet::dst::run_fleet_sim(&crate::serve::fleet::dst::FleetSimConfig {
                seed,
                sessions,
            });
        coverage.absorb_fleet(&fleet_report);
        writeln!(
            out,
            "dst fleet seed={seed} sessions={sessions} requests={} responses={} \
             typed_errors={} kills={} restarts={} circuit_opens={} hedged={} failovers={} \
             unavailable={} broadcasts={} fs_faults={} trace_hash={:016x} verdict={}",
            fleet_report.requests,
            fleet_report.responses,
            fleet_report.typed_errors,
            fleet_report.replica_kills,
            fleet_report.replica_restarts,
            fleet_report.circuit_opens,
            fleet_report.hedged_predicts,
            fleet_report.failovers,
            fleet_report.unavailable,
            fleet_report.broadcasts,
            fleet_report.fs_faults,
            fleet_report.trace_hash(),
            if fleet_report.passed() {
                "pass"
            } else {
                "FAIL"
            },
        )?;
        if let Some(dir) = &trace_dir {
            let path = dir.join(format!("dst-fleet-{seed:016x}.trace"));
            fleet_report
                .write_trace(&path)
                .map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
        }
        if !fleet_report.passed() {
            for v in &fleet_report.violations {
                writeln!(out, "dst fleet seed={seed} violation: {v}")?;
            }
            writeln!(
                out,
                "dst: replay with `mtperf dst --seed {seed} --sessions {sessions}`"
            )?;
            return Err(CliError::Other(format!(
                "dst: fleet seed {seed} violated {} invariant(s)",
                fleet_report.violations.len()
            )));
        }
    }
    if seeds > 1 {
        writeln!(
            out,
            "dst sweep seeds={seeds} requests={} responses={} typed_errors={} restarts={} \
             fs_faults={} multi_conn={} registry_ops={} cache_lookups={}",
            coverage.requests,
            coverage.responses,
            coverage.typed_errors,
            coverage.restarts,
            coverage.faults,
            coverage.multi_conn_sessions,
            coverage.registry_ops,
            coverage.cache_lookups,
        )?;
        writeln!(
            out,
            "dst fleet sweep seeds={seeds} kills={} circuit_opens={} hedged={} failovers={}",
            coverage.fleet_kills,
            coverage.fleet_circuit_opens,
            coverage.fleet_hedged,
            coverage.fleet_failovers,
        )?;
        let misses = coverage.misses();
        if !misses.is_empty() {
            for m in &misses {
                writeln!(out, "dst sweep coverage floor missed: {m}")?;
            }
            return Err(CliError::Other(format!(
                "dst: sweep of {seeds} seeds missed {} aggregate coverage floor(s)",
                misses.len()
            )));
        }
    }
    Ok(())
}

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Propagates subcommand failures as [`CliError`]s; unknown commands return
/// a usage hint classified as [`CliError::Usage`].
pub fn dispatch(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    if let Some(threads) = args.options.get("threads") {
        let par: Parallelism = threads
            .parse()
            .map_err(|e| CliError::Usage(format!("option --threads: {e}")))?;
        parallel::set_global(par);
    }
    let obs = obs_config(args)?;
    if !obs.is_off() {
        // Explicit flags win over the MTPERF_* environment hooks; with no
        // flags the environment still decides lazily at the first span.
        mtperf_obs::init(obs).map_err(|e| CliError::Io(format!("--trace-out: {e}")))?;
    }
    let result = match args.command.as_str() {
        "simulate" => cmd_simulate(args),
        "train" => cmd_train(args),
        "show" => cmd_show(args, out),
        "evaluate" => cmd_evaluate(args, out),
        "analyze" => cmd_analyze(args, out),
        "predict" => cmd_predict(args, out),
        "sweep" => cmd_sweep(args, out),
        "serve" => crate::serve::cmd_serve(args),
        "dst" => cmd_dst(args, out),
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    };
    // Emitted even when the command failed: a partial trace of a failing run
    // is exactly when the diagnostics matter most.
    if let Some(report) = mtperf_obs::finish() {
        emit_obs_report(&report);
    }
    result
}

/// `true` if `path` exists (test helper for artifacts).
pub fn exists(path: impl AsRef<Path>) -> bool {
    path.as_ref().exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parse_command_options_flags() {
        let a = args(&[
            "train",
            "--data",
            "x.csv",
            "--no-smoothing",
            "--out",
            "m.json",
        ]);
        assert_eq!(a.command, "train");
        assert_eq!(a.require("data").unwrap(), "x.csv");
        assert_eq!(a.require("out").unwrap(), "m.json");
        assert!(a.flag("no-smoothing"));
        assert!(!a.flag("other"));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Args::parse(&[]).is_err());
        assert!(Args::parse(&["train".into(), "positional".into()]).is_err());
    }

    #[test]
    fn numeric_defaults_and_errors() {
        let a = args(&["simulate", "--seed", "42"]);
        assert_eq!(a.numeric::<u64>("seed", 0).unwrap(), 42);
        assert_eq!(a.numeric::<u64>("missing", 7).unwrap(), 7);
        let bad = args(&["simulate", "--seed", "xyz"]);
        assert!(bad.numeric::<u64>("seed", 0).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = args(&["train"]);
        let err = a.require("data").unwrap_err();
        assert!(err.contains("--data"));
    }

    #[test]
    fn unknown_command_mentions_usage() {
        let a = args(&["frobnicate"]);
        let mut out = Vec::new();
        let err = dispatch(&a, &mut out).unwrap_err();
        assert!(err.to_string().contains("USAGE"));
    }

    #[test]
    fn threads_flag_sets_global_parallelism() {
        let original = parallel::global();
        let a = args(&["frobnicate", "--threads", "3"]);
        let mut out = Vec::new();
        // Unknown command still errors, but the global is set first.
        assert!(dispatch(&a, &mut out).is_err());
        assert_eq!(parallel::global(), Parallelism::Fixed(3));
        parallel::set_global(original);
    }

    #[test]
    fn bad_threads_value_is_rejected() {
        let a = args(&["evaluate", "--threads", "zero"]);
        let mut out = Vec::new();
        let err = dispatch(&a, &mut out).unwrap_err();
        assert!(err.to_string().contains("--threads"), "{err}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn policy_option_parses_all_variants() {
        assert_eq!(
            ingest_policy(&args(&["train"])).unwrap(),
            IngestPolicy::Strict
        );
        for (text, want) in [
            ("strict", IngestPolicy::Strict),
            ("skip", IngestPolicy::Skip),
            ("repair", IngestPolicy::Repair),
        ] {
            let a = args(&["train", "--policy", text]);
            assert_eq!(ingest_policy(&a).unwrap(), want);
        }
        let err = ingest_policy(&args(&["train", "--policy", "lenient"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--policy"), "{err}");
    }

    #[test]
    fn error_classes_reach_the_cli_layer() {
        // Missing file -> i/o class.
        let err = load_samples("/nonexistent/mtperf.csv", IngestPolicy::Strict).unwrap_err();
        assert_eq!(err.exit_code(), 74);

        // Corrupt data under strict -> data class; under skip it loads.
        let dir = std::env::temp_dir().join("mtperf-cli-policy-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.csv");
        let set: mtperf_counters::SampleSet = (0..4)
            .map(|i| {
                mtperf_counters::SectionSample::new("w", i, 1.0, [0.1; mtperf_counters::N_EVENTS])
            })
            .collect();
        let mut buf = Vec::new();
        mtperf_counters::write_csv(&set, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("w,9,NaN");
        text.push('\n');
        std::fs::write(&path, &text).unwrap();

        let path = path.display().to_string();
        let err = load_samples(&path, IngestPolicy::Strict).unwrap_err();
        assert_eq!(err.exit_code(), 65);
        let loaded = load_samples(&path, IngestPolicy::Skip).unwrap();
        assert_eq!(loaded.len(), 4);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn end_to_end_simulate_train_show_analyze() {
        let dir = std::env::temp_dir().join("mtperf-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("suite.csv").display().to_string();
        let arff = dir.join("suite.arff").display().to_string();
        let model = dir.join("model.json").display().to_string();

        // simulate (tiny)
        cmd_simulate(&args(&[
            "simulate",
            "--out",
            &csv,
            "--arff",
            &arff,
            "--instructions",
            "60000",
            "--seed",
            "3",
        ]))
        .unwrap();
        assert!(exists(&csv) && exists(&arff));

        // train
        cmd_train(&args(&["train", "--data", &csv, "--out", &model])).unwrap();
        assert!(exists(&model));

        // show
        let mut shown = Vec::new();
        cmd_show(&args(&["show", "--model", &model]), &mut shown).unwrap();
        let shown = String::from_utf8(shown).unwrap();
        assert!(shown.contains("LM1"), "{shown}");

        let mut rules = Vec::new();
        cmd_show(&args(&["show", "--model", &model, "--rules"]), &mut rules).unwrap();
        assert!(String::from_utf8(rules).unwrap().contains("Rule 1"));

        // analyze
        let mut report = Vec::new();
        cmd_analyze(
            &args(&["analyze", "--model", &model, "--data", &csv]),
            &mut report,
        )
        .unwrap();
        let report = String::from_utf8(report).unwrap();
        assert!(report.contains("median CPI"), "{report}");

        // predict: CSV to stdout, JSON to a file, and agreement with the
        // interpreted per-row path.
        let mut pred_csv = Vec::new();
        cmd_predict(
            &args(&["predict", "--model", &model, "--data", &csv]),
            &mut pred_csv,
        )
        .unwrap();
        let pred_csv = String::from_utf8(pred_csv).unwrap();
        let mut lines = pred_csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "workload,section_index,cpi,predicted_cpi"
        );
        let tree = ModelTree::load(&model).unwrap();
        let samples = load_samples(&csv, IngestPolicy::Strict).unwrap();
        let data = crate::dataset_from_samples(&samples).unwrap();
        let mut n_rows = 0;
        for (i, line) in lines.enumerate() {
            let p: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert_eq!(
                p.to_bits(),
                tree.predict(&data.row(i)).to_bits(),
                "line {i}: {line}"
            );
            n_rows += 1;
        }
        assert_eq!(n_rows, data.n_rows());

        let json_out = dir.join("pred.json").display().to_string();
        let mut sink = Vec::new();
        cmd_predict(
            &args(&[
                "predict", "--model", &model, "--data", &csv, "--out", &json_out, "--format",
                "json",
            ]),
            &mut sink,
        )
        .unwrap();
        let json = std::fs::read_to_string(&json_out).unwrap();
        assert!(json.trim_start().starts_with('['), "{json}");
        assert!(json.contains("\"predicted_cpi\""), "{json}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn predict_rejects_unknown_format() {
        let mut out = Vec::new();
        let dir = std::env::temp_dir().join("mtperf-cli-predict-fmt");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("suite.csv").display().to_string();
        let model = dir.join("model.json").display().to_string();
        cmd_simulate(&args(&[
            "simulate",
            "--out",
            &csv,
            "--instructions",
            "60000",
        ]))
        .unwrap();
        cmd_train(&args(&["train", "--data", &csv, "--out", &model])).unwrap();
        let err = cmd_predict(
            &args(&[
                "predict", "--model", &model, "--data", &csv, "--format", "yaml",
            ]),
            &mut out,
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--format"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn predict_classifies_missing_files_as_io() {
        let mut out = Vec::new();
        let err = cmd_predict(
            &args(&[
                "predict",
                "--model",
                "/nonexistent/model.json",
                "--data",
                "/nonexistent/data.csv",
            ]),
            &mut out,
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), 74);
    }

    /// The training pipeline's file reads go through the fs-fault seam:
    /// transient (EINTR-class) read faults are absorbed by the bounded
    /// retry, persistent ones surface as the typed i/o error (exit 74) —
    /// and neither path ever panics.
    #[test]
    fn train_under_seeded_read_faults_retries_then_fails_typed() {
        use mtperf_detsim::clock::{self, VirtualClock};
        use mtperf_detsim::fs as simfs;
        use mtperf_detsim::rng::{self, SimRng};
        use mtperf_detsim::{FaultScript, FsOp};
        use std::sync::Arc;

        // Seam installation is process-global; serialize with the DST
        // harness like every other simulation.
        let _exclusive = crate::serve::dst::SIM_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());

        let dir = std::env::temp_dir().join("mtperf-cli-read-fault-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("train-faults.csv");
        let set: mtperf_counters::SampleSet = (0..16)
            .map(|i| {
                let mut events = [0.02; mtperf_counters::N_EVENTS];
                events[0] = 0.01 * (i % 5) as f64;
                mtperf_counters::SectionSample::new("w", i, 0.8 + 0.05 * (i % 3) as f64, events)
            })
            .collect();
        let mut buf = Vec::new();
        mtperf_counters::write_csv(&set, &mut buf).unwrap();
        std::fs::write(&csv, &buf).unwrap();
        let csv = csv.display().to_string();
        let model = dir.join("model.json").display().to_string();

        let script = Arc::new(FaultScript::new());
        clock::install(VirtualClock::auto());
        rng::install(Arc::new(SimRng::seed_from_u64(77)));
        simfs::install(Arc::clone(&script) as Arc<dyn simfs::FaultHook>);
        let _restore = crate::serve::dst::SeamGuard::new();

        // Two transient faults on the data file: with_retry's 4-deep
        // backoff schedule absorbs them and the full ingest->fit->save
        // pipeline still succeeds.
        script.fail_times(
            Some(FsOp::Read),
            "train-faults.csv",
            std::io::ErrorKind::Interrupted,
            2,
        );
        cmd_train(&args(&["train", "--data", &csv, "--out", &model])).unwrap();
        assert_eq!(script.injected(), 2, "the transient faults never fired");
        assert!(std::path::Path::new(&model).exists());

        // A persistent fault exhausts the retries and must surface as the
        // typed i/o class (exit 74) — never a panic.
        script.clear();
        script.fail_always(
            Some(FsOp::Read),
            "train-faults.csv",
            std::io::ErrorKind::PermissionDenied,
        );
        let err = cmd_train(&args(&["train", "--data", &csv, "--out", &model])).unwrap_err();
        assert_eq!(err.exit_code(), 74);
        assert!(err.to_string().contains("train-faults.csv"), "{err}");

        script.clear();
        std::fs::remove_dir_all(&dir).ok();
    }
}
