//! `mtperf` — model-tree performance analysis of software applications.
//!
//! A from-scratch Rust reproduction of *"Using Model Trees for Computer
//! Architecture Performance Analysis of Software Applications"*
//! (Ould-Ahmed-Vall, Woodlee, Yount, Doshi, Abraham — ISPASS 2007): predict
//! a workload section's CPI from 20 hardware-event rates with an M5' model
//! tree, read the tree's classes as performance phases, and decompose each
//! class's CPI into actionable per-event contributions.
//!
//! The crate is a facade over the workspace:
//!
//! | Piece | Crate |
//! |---|---|
//! | M5' model trees + analysis layer | [`mtree`] |
//! | Table-I event vocabulary, sectioning, CSV | [`counters`] |
//! | Core 2 Duo-like simulator + SPEC-like workloads | [`sim`] |
//! | Baseline regressors (OLS, CART, k-NN, MLP, SVR) | [`baselines`] |
//! | Metrics and cross validation | [`eval`] |
//! | Dense linear algebra and statistics | [`linalg`] |
//!
//! # Quick start
//!
//! ```
//! use mtperf::prelude::*;
//!
//! // 1. Simulate a (tiny, for docs) SPEC-like suite on the Core 2 Duo model.
//! let samples = mtperf::sim::simulate_suite(40_000, 10_000, 42);
//!
//! // 2. Turn the sections into a learning problem and train M5'.
//! let data = mtperf::dataset_from_samples(&samples).unwrap();
//! let params = M5Params::default().with_min_instances(8);
//! let tree = ModelTree::fit(&data, &params).unwrap();
//!
//! // 3. Ask the paper's questions about any section.
//! let row = data.row(0);
//! let class = tree.classify(&row);
//! assert!(class.leaf.0 >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod cli;
pub mod errors;
pub mod serve;
pub mod sweep;

pub use errors::CliError;

pub use mtperf_baselines as baselines;
pub use mtperf_counters as counters;
pub use mtperf_eval as eval;
pub use mtperf_linalg as linalg;
pub use mtperf_mtree as mtree;
pub use mtperf_sim as sim;

use mtperf_counters::SampleSet;
use mtperf_mtree::{Dataset, MtreeError};

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use mtperf_counters::{Event, SampleSet, SectionSample};
    pub use mtperf_eval::{cross_validate, Metrics};
    pub use mtperf_mtree::{analysis, Dataset, Learner, M5Learner, M5Params, ModelTree, Predictor};
    pub use mtperf_sim::{MachineConfig, Simulator};
}

/// Converts a set of simulated (or imported) section samples into the
/// learning problem of the paper: attributes are the 20 Table-I event rates,
/// the target is CPI.
///
/// # Errors
///
/// Returns [`MtreeError::EmptyDataset`] when `samples` is empty.
///
/// # Example
///
/// ```
/// use mtperf_counters::{SampleSet, SectionSample};
///
/// let mut set = SampleSet::new();
/// set.push(SectionSample::new("w", 0, 1.0, [0.0; mtperf_counters::N_EVENTS]));
/// let data = mtperf::dataset_from_samples(&set).unwrap();
/// assert_eq!(data.n_attrs(), 20);
/// assert_eq!(data.n_rows(), 1);
/// ```
pub fn dataset_from_samples(samples: &SampleSet) -> Result<Dataset, MtreeError> {
    let (names, rows, targets) = samples.to_learning_parts();
    Dataset::from_rows(names, &rows, &targets)
}

/// The workload label of every sample, aligned with
/// [`dataset_from_samples`]'s row order (for occupancy analyses).
pub fn labels_from_samples(samples: &SampleSet) -> Vec<String> {
    samples.iter().map(|s| s.workload.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtperf_counters::SectionSample;

    #[test]
    fn dataset_conversion_preserves_shape() {
        let mut set = SampleSet::new();
        let mut rates = [0.0; mtperf_counters::N_EVENTS];
        rates[3] = 0.5;
        set.push(SectionSample::new("a", 0, 1.5, rates));
        set.push(SectionSample::new(
            "b",
            0,
            2.5,
            [0.0; mtperf_counters::N_EVENTS],
        ));
        let d = dataset_from_samples(&set).unwrap();
        assert_eq!(d.n_rows(), 2);
        assert_eq!(d.n_attrs(), 20);
        assert_eq!(d.target(1), 2.5);
        assert_eq!(d.value(0, 3), 0.5);
        assert_eq!(labels_from_samples(&set), vec!["a", "b"]);
    }

    #[test]
    fn empty_sample_set_is_error() {
        assert!(dataset_from_samples(&SampleSet::new()).is_err());
    }
}
