//! Per-tenant admission control: a fair, bounded, quota'd work queue.
//!
//! The PR 5 daemon used one global [`super::queue::BoundedQueue`]; under
//! multi-tenant load that shape lets a single chatty tenant fill the
//! whole queue and starve everyone else. [`FairQueue`] keeps the same
//! contracts (bounded, blocking pop, close-to-drain) but splits admission
//! and dispatch per tenant:
//!
//! * **Admission** — a push is refused with [`PushError::Quota`] when the
//!   tenant already has `quota` jobs queued, and with [`PushError::Full`]
//!   when the global bound is hit. Quota refusals are the typed signal
//!   behind the `quota_refusals` health counter.
//! * **Dispatch** — `pop` round-robins across tenants that have queued
//!   work: after a tenant is served it goes to the back of the rotation,
//!   so a tenant with queued work is never starved no matter how deep the
//!   other lanes are. With one tenant, ordering degenerates to exact FIFO
//!   (v1 behavior).
//!
//! Same concurrency primitive as the PR 5 queue (mutex + condvar): the
//! lock is held only for pointer-sized bookkeeping, never across work.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The global bound is reached: the daemon as a whole is overloaded.
    Full,
    /// The tenant's own quota is reached: this tenant is overloaded, the
    /// daemon may not be.
    Quota,
    /// The queue was closed (daemon draining); nothing is accepted.
    Closed,
}

struct Inner<T> {
    /// One FIFO lane per tenant with queued work. Lanes are created on
    /// first push and removed when drained, so an idle tenant costs
    /// nothing.
    lanes: BTreeMap<String, VecDeque<T>>,
    /// Round-robin rotation: tenants with queued work, next-to-serve at
    /// the front. Every name in `rotation` has a non-empty lane and every
    /// non-empty lane appears exactly once.
    rotation: VecDeque<String>,
    len: usize,
    closed: bool,
}

/// Bounded multi-tenant queue with per-tenant quotas and round-robin
/// dispatch. See the module docs for the fairness contract.
pub struct FairQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
    quota: usize,
}

impl<T> FairQueue<T> {
    /// Creates a queue bounded at `capacity` jobs total and `quota` jobs
    /// per tenant. Both bounds are clamped to at least 1; a quota larger
    /// than the capacity behaves as "no per-tenant bound".
    pub fn new(capacity: usize, quota: usize) -> FairQueue<T> {
        FairQueue {
            inner: Mutex::new(Inner {
                lanes: BTreeMap::new(),
                rotation: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            quota: quota.max(1),
        }
    }

    /// Attempts to enqueue `item` for `tenant` without blocking. On
    /// success returns the total queue depth after the push.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] when draining, [`PushError::Full`] at the
    /// global bound, [`PushError::Quota`] at the tenant's bound.
    pub fn try_push(&self, tenant: &str, item: T) -> Result<usize, PushError> {
        let mut inner = self.inner.lock().expect("fair queue lock poisoned");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.len >= self.capacity {
            return Err(PushError::Full);
        }
        if inner.lanes.get(tenant).map_or(0, VecDeque::len) >= self.quota {
            return Err(PushError::Quota);
        }
        match inner.lanes.get_mut(tenant) {
            Some(lane) => lane.push_back(item),
            None => {
                inner
                    .lanes
                    .insert(tenant.to_string(), VecDeque::from([item]));
                inner.rotation.push_back(tenant.to_string());
            }
        }
        inner.len += 1;
        self.ready.notify_one();
        Ok(inner.len)
    }

    fn pop_locked(inner: &mut Inner<T>) -> Option<T> {
        let tenant = inner.rotation.pop_front()?;
        let lane = inner
            .lanes
            .get_mut(&tenant)
            .expect("rotation names a missing lane");
        let item = lane.pop_front().expect("rotation names an empty lane");
        if lane.is_empty() {
            inner.lanes.remove(&tenant);
        } else {
            inner.rotation.push_back(tenant);
        }
        inner.len -= 1;
        Some(item)
    }

    /// Blocks until a job is available (served round-robin across
    /// tenants) or the queue is closed *and* drained, returning `None`
    /// only in the latter case.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("fair queue lock poisoned");
        loop {
            if let Some(item) = FairQueue::pop_locked(&mut inner) {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("fair queue lock poisoned");
        }
    }

    /// Non-blocking pop; `None` means "nothing queued right now".
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("fair queue lock poisoned");
        FairQueue::pop_locked(&mut inner)
    }

    /// Closes the queue: further pushes fail with [`PushError::Closed`],
    /// already-queued jobs keep draining through `pop`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("fair queue lock poisoned");
        inner.closed = true;
        self.ready.notify_all();
    }

    /// Total jobs queued across all tenants.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("fair queue lock poisoned").len
    }

    /// Tenants with queued work, in dispatch order: index 0 is the tenant
    /// the next `pop` will serve. The deterministic-simulation harness
    /// checks its fair-dequeue invariant against this snapshot.
    pub fn queued_tenants(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("fair queue lock poisoned")
            .rotation
            .iter()
            .cloned()
            .collect()
    }

    /// Jobs queued for one tenant.
    pub fn tenant_depth(&self, tenant: &str) -> usize {
        self.inner
            .lock()
            .expect("fair queue lock poisoned")
            .lanes
            .get(tenant)
            .map_or(0, VecDeque::len)
    }

    /// The global bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The per-tenant bound.
    pub fn quota(&self) -> usize {
        self.quota
    }

    /// Whether `close` was called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("fair queue lock poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_tenant_is_exact_fifo() {
        let q = FairQueue::new(8, 8);
        for i in 0..5 {
            q.try_push("default", i).unwrap();
        }
        let drained: Vec<i32> = std::iter::from_fn(|| q.try_pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dispatch_round_robins_across_tenants() {
        let q = FairQueue::new(16, 16);
        // Tenant a floods before b arrives; dispatch must still
        // alternate once both have queued work.
        for i in 0..4 {
            q.try_push("a", format!("a{i}")).unwrap();
        }
        for i in 0..2 {
            q.try_push("b", format!("b{i}")).unwrap();
        }
        let drained: Vec<String> = std::iter::from_fn(|| q.try_pop()).collect();
        assert_eq!(drained, ["a0", "b0", "a1", "b1", "a2", "a3"]);
    }

    #[test]
    fn no_tenant_with_queued_work_is_starved() {
        let q = FairQueue::new(64, 64);
        for i in 0..30 {
            q.try_push("noisy", i).unwrap();
        }
        q.try_push("quiet", 100).unwrap();
        // The quiet tenant's single job must surface within one
        // rotation, not after the noisy backlog.
        let first_two = [q.try_pop().unwrap(), q.try_pop().unwrap()];
        assert!(
            first_two.contains(&100),
            "quiet tenant starved: {first_two:?}"
        );
    }

    #[test]
    fn quota_and_capacity_are_typed_refusals() {
        let q = FairQueue::new(4, 2);
        q.try_push("a", 1).unwrap();
        q.try_push("a", 2).unwrap();
        assert_eq!(q.try_push("a", 3), Err(PushError::Quota));
        // The daemon still has room for other tenants.
        q.try_push("b", 4).unwrap();
        q.try_push("b", 5).unwrap();
        assert_eq!(q.try_push("c", 6), Err(PushError::Full));
        assert_eq!(q.depth(), 4);
        assert_eq!(q.tenant_depth("a"), 2);

        // Draining a tenant frees its quota.
        q.try_pop().unwrap();
        assert!(q.try_push("a", 7).is_ok());
    }

    #[test]
    fn close_drains_then_releases_blocked_pop() {
        let q = Arc::new(FairQueue::new(8, 8));
        q.try_push("a", 1).unwrap();
        q.close();
        assert_eq!(q.try_push("a", 2), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);

        let q2 = Arc::new(FairQueue::<i32>::new(8, 8));
        let waiter = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn bounds_clamp_to_at_least_one() {
        let q = FairQueue::new(0, 0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.quota(), 1);
        q.try_push("a", 1).unwrap();
        assert_eq!(q.try_push("b", 2), Err(PushError::Full));
    }
}
