//! The prediction cache: memoized scores for hot repeated sections.
//!
//! The paper's what-if workflow re-queries the same section vectors
//! against the same model many times (an analyst refining a hypothesis);
//! those repeats are pure function evaluations and need not touch the
//! engine at all. [`PredictionCache`] memoizes them keyed by
//! **FNV-1a over (model name, version id, exact f64 bit patterns of the
//! rows)** — the same `fnv1a_64` the persistence envelopes and DST trace
//! fingerprints use.
//!
//! Correctness contract: a cache hit must be **bit-identical** to a
//! fresh predict. Two consequences:
//!
//! * The 64-bit hash is a lookup accelerator, not the identity. Every
//!   entry stores its full key material (model, version, row bits) and a
//!   hit requires an exact match, so a hash collision degrades to a miss
//!   instead of serving another request's predictions.
//! * Only **non-degraded** successful predictions are cached. A degraded
//!   (interpreted-fallback) result is bit-identical anyway, but caching
//!   it would mask the `degraded` health flag on later hits.
//!
//! Eviction is insertion-order FIFO at a fixed capacity: deterministic
//! under DST replay (no clock, no randomness) and cheap. Only small
//! batches (≤ [`MAX_CACHED_ROWS`] rows) are cached — large batch scoring
//! is a throughput workload that would thrash the cache for no repeat
//! value.

use std::collections::{HashMap, VecDeque};

use mtperf_obs::fsio::fnv1a_64;

/// Largest batch (rows per request) the cache will memoize.
pub const MAX_CACHED_ROWS: usize = 16;

struct Entry {
    model: String,
    version: String,
    row_bits: Vec<u64>,
    predictions: Vec<f64>,
}

/// Bounded memoization of `(model, version, rows) → predictions`.
pub struct PredictionCache {
    map: HashMap<u64, Vec<Entry>>,
    /// Insertion order of `(hash, position-independent)` keys for FIFO
    /// eviction; each push corresponds to exactly one `Entry`.
    order: VecDeque<u64>,
    capacity: usize,
    len: usize,
}

fn row_bits(rows: &[Vec<f64>]) -> Vec<u64> {
    rows.iter()
        .flat_map(|r| r.iter().map(|v| v.to_bits()))
        .collect()
}

fn hash_key(model: &str, version: &str, bits: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(model.len() + version.len() + 2 + bits.len() * 8);
    bytes.extend_from_slice(model.as_bytes());
    bytes.push(0xFF);
    bytes.extend_from_slice(version.as_bytes());
    bytes.push(0xFF);
    for b in bits {
        bytes.extend_from_slice(&b.to_le_bytes());
    }
    fnv1a_64(&bytes)
}

impl PredictionCache {
    /// Creates a cache holding at most `capacity` entries. Capacity 0
    /// disables caching entirely (every lookup misses, inserts are
    /// dropped).
    pub fn new(capacity: usize) -> PredictionCache {
        PredictionCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            len: 0,
        }
    }

    /// Looks up memoized predictions. `None` is a miss — including for
    /// batches larger than [`MAX_CACHED_ROWS`] and for hash collisions
    /// whose stored key material does not match exactly.
    pub fn lookup(&self, model: &str, version: &str, rows: &[Vec<f64>]) -> Option<Vec<f64>> {
        if self.capacity == 0 || rows.is_empty() || rows.len() > MAX_CACHED_ROWS {
            return None;
        }
        let bits = row_bits(rows);
        let hash = hash_key(model, version, &bits);
        self.map.get(&hash)?.iter().find_map(|e| {
            (e.model == model && e.version == version && e.row_bits == bits)
                .then(|| e.predictions.clone())
        })
    }

    /// Memoizes a fresh, non-degraded prediction result. Oversized
    /// batches and duplicates are ignored; at capacity the oldest entry
    /// is evicted first.
    pub fn insert(&mut self, model: &str, version: &str, rows: &[Vec<f64>], predictions: &[f64]) {
        if self.capacity == 0 || rows.is_empty() || rows.len() > MAX_CACHED_ROWS {
            return;
        }
        let bits = row_bits(rows);
        let hash = hash_key(model, version, &bits);
        let bucket = self.map.entry(hash).or_default();
        if bucket
            .iter()
            .any(|e| e.model == model && e.version == version && e.row_bits == bits)
        {
            return;
        }
        bucket.push(Entry {
            model: model.to_string(),
            version: version.to_string(),
            row_bits: bits,
            predictions: predictions.to_vec(),
        });
        self.order.push_back(hash);
        self.len += 1;
        while self.len > self.capacity {
            let oldest = self.order.pop_front().expect("order tracks len");
            let bucket = self.map.get_mut(&oldest).expect("order names a bucket");
            bucket.remove(0);
            if bucket.is_empty() {
                self.map.remove(&oldest);
            }
            self.len -= 1;
        }
    }

    /// Drops every entry. Called on any registry mutation that could
    /// change what a `(model, version)` pair means (promote-with-path
    /// reusing an id is impossible, but reload replaces a version's model
    /// in place — the cheap safe answer is a flush).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.len = 0;
    }

    /// Whether the cache is enabled at all (capacity above zero).
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(seed: u64, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|r| vec![(seed as f64) + r as f64, (r * 3 % 5) as f64])
            .collect()
    }

    #[test]
    fn hit_returns_exactly_what_was_inserted() {
        let mut c = PredictionCache::new(8);
        let r = rows(1, 3);
        let preds = vec![1.5, -2.25, 0.0];
        assert!(c.lookup("default", "v1", &r).is_none());
        c.insert("default", "v1", &r, &preds);
        let hit = c.lookup("default", "v1", &r).unwrap();
        assert_eq!(hit.len(), preds.len());
        for (h, p) in hit.iter().zip(&preds) {
            assert_eq!(h.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn key_covers_model_version_and_row_bits() {
        let mut c = PredictionCache::new(8);
        let r = rows(1, 2);
        c.insert("default", "v1", &r, &[1.0, 2.0]);
        assert!(c.lookup("other", "v1", &r).is_none());
        assert!(c.lookup("default", "v2", &r).is_none());
        assert!(c.lookup("default", "v1", &rows(2, 2)).is_none());
        // -0.0 == 0.0 but has different bits: must be a distinct key.
        let pos = vec![vec![0.0]];
        let neg = vec![vec![-0.0]];
        c.insert("default", "v1", &pos, &[7.0]);
        assert!(c.lookup("default", "v1", &neg).is_none());
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut c = PredictionCache::new(2);
        c.insert("m", "v1", &rows(1, 1), &[1.0]);
        c.insert("m", "v1", &rows(2, 1), &[2.0]);
        c.insert("m", "v1", &rows(3, 1), &[3.0]);
        assert_eq!(c.len(), 2);
        assert!(c.lookup("m", "v1", &rows(1, 1)).is_none(), "oldest evicted");
        assert!(c.lookup("m", "v1", &rows(2, 1)).is_some());
        assert!(c.lookup("m", "v1", &rows(3, 1)).is_some());
    }

    #[test]
    fn zero_capacity_disables_and_oversized_batches_bypass() {
        let mut off = PredictionCache::new(0);
        off.insert("m", "v1", &rows(1, 1), &[1.0]);
        assert!(off.lookup("m", "v1", &rows(1, 1)).is_none());
        assert!(off.is_empty());

        let mut c = PredictionCache::new(8);
        let big = rows(1, MAX_CACHED_ROWS + 1);
        let preds = vec![0.0; big.len()];
        c.insert("m", "v1", &big, &preds);
        assert!(c.is_empty());
        assert!(c.lookup("m", "v1", &big).is_none());
    }

    #[test]
    fn clear_flushes_everything() {
        let mut c = PredictionCache::new(8);
        c.insert("m", "v1", &rows(1, 1), &[1.0]);
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert!(c.lookup("m", "v1", &rows(1, 1)).is_none());
    }
}
