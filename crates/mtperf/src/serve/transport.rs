//! The transport layer: connection acceptance and framing ownership.
//!
//! Three transports, all speaking the identical newline-delimited
//! protocol through [`super::router::run_session`]:
//!
//! * **stdio** — the primary transport; EOF on it drains the daemon.
//! * **Unix socket** (`--socket <path>`) — local multi-client serving;
//!   the socket file is replaced on bind and removed on drain.
//! * **TCP** (`--tcp <addr>`) — the fleet transport: remote clients,
//!   many concurrent connections, per-connection framing state.
//!
//! Accept loops share one shape: a non-blocking listener polled every
//! [`super::POLL_MS`] ms against the drain flags, `EINTR`/`EAGAIN`
//! absorbed by the bounded-backoff retry helper, and one thread per
//! accepted connection. A connection's reader half owns its framing
//! buffer; its writer half is a [`SharedWriter`] the workers answer
//! through — so responses always return on the issuing connection, and a
//! broken peer ends only its own session.

use std::io;
use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use crate::errors::CliError;

use super::router::run_session;
use super::{Shared, SharedWriter, POLL_MS, SHUTDOWN};

/// Spawns the stdio session thread. EOF on stdin means no more work can
/// arrive on the primary transport: the daemon drains and exits rather
/// than idling forever.
pub(crate) fn spawn_stdio(shared: &Arc<Shared>) {
    let shared = Arc::clone(shared);
    thread::spawn(move || {
        let writer: SharedWriter = Arc::new(Mutex::new(Box::new(io::stdout())));
        run_session(&shared, io::BufReader::new(io::stdin()), writer);
        SHUTDOWN.store(true, Ordering::SeqCst);
    });
}

/// Binds the TCP listener (non-blocking) for [`accept_loop_tcp`].
///
/// # Errors
///
/// [`CliError::Unavailable`] when the address cannot be bound or
/// configured — the daemon cannot start.
pub(crate) fn bind_tcp(addr: &str) -> Result<TcpListener, CliError> {
    let listener = TcpListener::bind(addr)
        .map_err(|e| CliError::Unavailable(format!("cannot bind tcp {addr}: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| CliError::Unavailable(format!("cannot configure tcp {addr}: {e}")))?;
    Ok(listener)
}

/// Accepts TCP connections until drain, one session thread each.
pub(crate) fn accept_loop_tcp(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        if SHUTDOWN.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match mtperf_obs::fsio::with_retry("serve_accept", || listener.accept()) {
            Ok((stream, _addr)) => {
                let reader = match stream.try_clone() {
                    Ok(s) => io::BufReader::new(s),
                    Err(_) => continue,
                };
                let writer: SharedWriter = Arc::new(Mutex::new(Box::new(stream)));
                let shared = Arc::clone(shared);
                thread::spawn(move || run_session(&shared, reader, writer));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(POLL_MS));
            }
            Err(e) => {
                eprintln!("mtperf serve: tcp accept failed: {e}");
                thread::sleep(Duration::from_millis(POLL_MS));
            }
        }
    }
}

/// Binds the Unix-domain listener (non-blocking), replacing a stale
/// socket file from a previous run.
///
/// # Errors
///
/// [`CliError::Unavailable`] when the stale socket cannot be replaced or
/// the path cannot be bound/configured.
#[cfg(unix)]
pub(crate) fn bind_unix(
    sock: &std::path::Path,
) -> Result<std::os::unix::net::UnixListener, CliError> {
    if sock.exists() {
        std::fs::remove_file(sock).map_err(|e| {
            CliError::Unavailable(format!(
                "cannot replace stale socket {}: {e}",
                sock.display()
            ))
        })?;
    }
    let listener = std::os::unix::net::UnixListener::bind(sock).map_err(|e| {
        CliError::Unavailable(format!("cannot bind socket {}: {e}", sock.display()))
    })?;
    listener.set_nonblocking(true).map_err(|e| {
        CliError::Unavailable(format!("cannot configure socket {}: {e}", sock.display()))
    })?;
    Ok(listener)
}

/// Accepts Unix-socket connections until drain, one session thread each.
#[cfg(unix)]
pub(crate) fn accept_loop_unix(shared: &Arc<Shared>, listener: std::os::unix::net::UnixListener) {
    loop {
        if SHUTDOWN.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match mtperf_obs::fsio::with_retry("serve_accept", || listener.accept()) {
            Ok((stream, _addr)) => {
                let reader = match stream.try_clone() {
                    Ok(s) => io::BufReader::new(s),
                    Err(_) => continue,
                };
                let writer: SharedWriter = Arc::new(Mutex::new(Box::new(stream)));
                let shared = Arc::clone(shared);
                thread::spawn(move || run_session(&shared, reader, writer));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(POLL_MS));
            }
            Err(e) => {
                eprintln!("mtperf serve: accept failed: {e}");
                thread::sleep(Duration::from_millis(POLL_MS));
            }
        }
    }
}
