//! Model lifecycle for the serving daemon: validated loads, hot reload
//! with last-known-good fallback, and the per-request degradation ladder.
//!
//! # Validated loads
//!
//! A model only becomes servable after [`load_and_validate`]: parse (the
//! persistence layer already verifies the envelope checksum), compile, and
//! **smoke-predict** — score one all-zero row through the compiled tree and
//! require bit-identical agreement with the interpreted walk plus a finite
//! result. A file that fails any step never reaches the hot path.
//!
//! # Hot reload keeps the last known good
//!
//! [`Engine::reload`] swaps the served model only after validation
//! succeeds. On failure the previous model keeps serving and the engine is
//! marked *degraded*: probes and predict responses carry `degraded: true`
//! until a subsequent reload succeeds. A poisoned model file therefore
//! degrades service quality metadata, never availability.
//!
//! # Per-request degradation ladder
//!
//! [`predict`] tries, in order:
//!
//! 1. the compiled batch path (parallel, cancellable) — the fast path;
//! 2. the interpreted per-row walk, panic-isolated and deadline-checked
//!    between rows — bit-identical output by the compiled path's own
//!    contract, just slower;
//! 3. a structured `internal` failure naming both errors.
//!
//! Deadline expiry is not a fault: it short-circuits the ladder and
//! reports [`PredictOutcome::DeadlineExceeded`] immediately.

use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mtperf_linalg::{CancelToken, Matrix, Parallelism};
use mtperf_mtree::{CompiledTree, ModelTree, MtreeError};

/// A validated, servable model: the source tree (for the interpreted
/// fallback) plus its compiled form (the fast path).
pub struct LoadedModel {
    /// Interpreted form, kept for the degradation ladder.
    pub tree: ModelTree,
    /// Compiled form used by the worker hot path.
    pub compiled: CompiledTree,
}

impl LoadedModel {
    /// Attribute count requests must provide.
    pub fn n_attrs(&self) -> usize {
        self.compiled.n_attrs()
    }
}

/// Loads, compiles, and smoke-predicts a model file.
///
/// # Errors
///
/// Returns a human-readable reason (typed persistence errors render
/// through their `Display`) when the file is missing, torn, corrupt, a
/// wrong version, or fails the smoke prediction.
pub fn load_and_validate(path: &Path) -> Result<LoadedModel, String> {
    let tree = ModelTree::load(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let compiled = tree.compile();
    let zeros = vec![0.0; compiled.n_attrs().max(1)];
    let rows = Matrix::from_rows(&[&zeros]).map_err(|e| format!("smoke row: {e}"))?;
    let got = compiled
        .try_predict_batch_with(&rows, Parallelism::Off)
        .map_err(|e| format!("smoke prediction failed: {e}"))?;
    let want = panic::catch_unwind(AssertUnwindSafe(|| tree.predict(&zeros)))
        .map_err(|_| "smoke prediction panicked in the interpreted walk".to_string())?;
    if got.len() != 1 || got[0].to_bits() != want.to_bits() {
        return Err("smoke prediction disagrees with the interpreted walk".to_string());
    }
    if !got[0].is_finite() {
        return Err(format!("smoke prediction is non-finite ({})", got[0]));
    }
    Ok(LoadedModel { tree, compiled })
}

/// The daemon's model slot: current model, reload, snapshot, save.
pub struct Engine {
    model_path: PathBuf,
    current: Arc<LoadedModel>,
    degraded: bool,
    last_error: Option<String>,
}

impl Engine {
    /// Loads the initial model; failure here means the daemon cannot start
    /// (`EX_UNAVAILABLE` at the CLI layer).
    ///
    /// # Errors
    ///
    /// Every [`load_and_validate`] failure.
    pub fn open(path: &Path) -> Result<Engine, String> {
        let model = load_and_validate(path)?;
        Ok(Engine {
            model_path: path.to_path_buf(),
            current: Arc::new(model),
            degraded: false,
            last_error: None,
        })
    }

    /// Hot-reloads from `path` (default: the path the engine opened with).
    /// On success the new model is swapped in and the degraded flag
    /// clears; on failure the previous model keeps serving and the engine
    /// reports degraded until a later reload succeeds.
    ///
    /// # Errors
    ///
    /// The validation failure, verbatim.
    pub fn reload(&mut self, path: Option<&Path>) -> Result<(), String> {
        let target = path.unwrap_or(&self.model_path).to_path_buf();
        match load_and_validate(&target) {
            Ok(model) => {
                self.current = Arc::new(model);
                self.model_path = target;
                self.degraded = false;
                self.last_error = None;
                Ok(())
            }
            Err(e) => {
                self.degraded = true;
                self.last_error = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Atomically persists the served model to `path` (default: the
    /// engine's model path). Safe against `kill -9` at any instant: the
    /// destination holds either the old or the new bytes, never a mix.
    ///
    /// # Errors
    ///
    /// Persistence failures from [`ModelTree::save`], rendered.
    pub fn save(&self, path: Option<&Path>) -> Result<PathBuf, String> {
        let target = path.unwrap_or(&self.model_path).to_path_buf();
        self.current
            .tree
            .save(&target)
            .map_err(|e| format!("{}: {e}", target.display()))?;
        Ok(target)
    }

    /// The served model and whether the engine is degraded, as one
    /// consistent pair.
    pub fn snapshot(&self) -> (Arc<LoadedModel>, bool) {
        (Arc::clone(&self.current), self.degraded)
    }

    /// Path reloads and saves default to.
    pub fn model_path(&self) -> &Path {
        &self.model_path
    }

    /// Whether the last reload failed (serving from last known good).
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// The failure that degraded the engine, if any.
    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }
}

/// Outcome of one prediction request after the degradation ladder.
#[derive(Debug, PartialEq)]
pub enum PredictOutcome {
    /// Predictions in input order; `degraded` when the interpreted
    /// fallback produced them.
    Ok {
        /// Predicted values, one per input row.
        predictions: Vec<f64>,
        /// Whether the fallback path answered.
        degraded: bool,
    },
    /// The request's deadline fired before compute finished.
    DeadlineExceeded,
    /// Every rung of the ladder failed.
    Failed(String),
}

enum InterpFail {
    Deadline,
    Error(String),
}

fn interpreted_predict(
    model: &LoadedModel,
    rows: &Matrix,
    token: &CancelToken,
) -> Result<Vec<f64>, InterpFail> {
    let mut out = Vec::with_capacity(rows.rows());
    for i in 0..rows.rows() {
        if token.is_cancelled() {
            return Err(InterpFail::Deadline);
        }
        let row = rows.row(i);
        let p = panic::catch_unwind(AssertUnwindSafe(|| model.tree.predict(row)))
            .map_err(|_| InterpFail::Error(format!("interpreted walk panicked on row {i}")))?;
        out.push(p);
    }
    Ok(out)
}

/// Scores `rows` through the degradation ladder (see the module docs).
pub fn predict(
    model: &LoadedModel,
    rows: &Matrix,
    par: Parallelism,
    token: &CancelToken,
) -> PredictOutcome {
    match model.compiled.try_predict_batch_cancel(rows, par, token) {
        Ok(predictions) => PredictOutcome::Ok {
            predictions,
            degraded: false,
        },
        Err(MtreeError::Cancelled) => PredictOutcome::DeadlineExceeded,
        Err(primary) => match interpreted_predict(model, rows, token) {
            Ok(predictions) => PredictOutcome::Ok {
                predictions,
                degraded: true,
            },
            Err(InterpFail::Deadline) => PredictOutcome::DeadlineExceeded,
            Err(InterpFail::Error(secondary)) => PredictOutcome::Failed(format!(
                "compiled path: {primary}; interpreted fallback: {secondary}"
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtperf_mtree::{Dataset, M5Params};
    use std::time::Duration;

    fn tiny_dataset(n_attrs: usize) -> Dataset {
        let names: Vec<String> = (0..n_attrs).map(|i| format!("a{i}")).collect();
        let rows: Vec<Vec<f64>> = (0..24)
            .map(|r| {
                (0..n_attrs)
                    .map(|c| ((r * 7 + c * 3) % 11) as f64)
                    .collect()
            })
            .collect();
        let targets: Vec<f64> = rows
            .iter()
            .map(|row| {
                0.5 + row
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v * (i + 1) as f64)
                    .sum::<f64>()
            })
            .collect();
        Dataset::from_rows(names, &rows, &targets).unwrap()
    }

    fn tiny_tree(n_attrs: usize) -> ModelTree {
        let params = M5Params::default().with_min_instances(4);
        ModelTree::fit(&tiny_dataset(n_attrs), &params).unwrap()
    }

    fn temp_model(name: &str, n_attrs: usize) -> (PathBuf, ModelTree) {
        let dir = std::env::temp_dir().join("mtperf-serve-engine-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let tree = tiny_tree(n_attrs);
        tree.save(&path).unwrap();
        (path, tree)
    }

    #[test]
    fn open_validates_and_serves() {
        let (path, tree) = temp_model("open-ok.json", 3);
        let eng = Engine::open(&path).unwrap();
        assert!(!eng.degraded());
        let (model, degraded) = eng.snapshot();
        assert!(!degraded);
        assert_eq!(model.n_attrs(), 3);
        let row = [1.0, 2.0, 3.0];
        let rows = Matrix::from_rows(&[&row]).unwrap();
        match predict(&model, &rows, Parallelism::Off, &CancelToken::new()) {
            PredictOutcome::Ok {
                predictions,
                degraded,
            } => {
                assert!(!degraded);
                assert_eq!(predictions[0].to_bits(), tree.predict(&row).to_bits());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn open_missing_or_corrupt_file_fails() {
        let err = Engine::open(Path::new("/nonexistent/model.json"))
            .err()
            .expect("open of a missing file must fail");
        assert!(err.contains("model.json"), "{err}");

        let dir = std::env::temp_dir().join("mtperf-serve-engine-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("garbage.json");
        std::fs::write(&bad, "{ not a model }").unwrap();
        assert!(Engine::open(&bad).is_err());
    }

    #[test]
    fn poisoned_reload_keeps_last_known_good() {
        let (path, tree) = temp_model("reload.json", 2);
        let mut eng = Engine::open(&path).unwrap();

        // Poison the model file in place: reload must fail, but the engine
        // keeps serving the previous model, marked degraded.
        std::fs::write(&path, "definitely not json").unwrap();
        let err = eng.reload(None).unwrap_err();
        assert!(!err.is_empty());
        assert!(eng.degraded());
        assert_eq!(eng.last_error(), Some(err.as_str()));
        let (model, degraded) = eng.snapshot();
        assert!(degraded);
        let row = [4.0, 1.0];
        let rows = Matrix::from_rows(&[&row]).unwrap();
        match predict(&model, &rows, Parallelism::Off, &CancelToken::new()) {
            PredictOutcome::Ok { predictions, .. } => {
                assert_eq!(predictions[0].to_bits(), tree.predict(&row).to_bits());
            }
            other => panic!("unexpected outcome {other:?}"),
        }

        // A good file heals the engine.
        tree.save(&path).unwrap();
        eng.reload(None).unwrap();
        assert!(!eng.degraded());
        assert!(eng.last_error().is_none());
    }

    #[test]
    fn save_roundtrips_atomically() {
        let (path, tree) = temp_model("save-src.json", 2);
        let eng = Engine::open(&path).unwrap();
        let dir = path.parent().unwrap();
        let copy = dir.join("save-copy.json");
        let saved = eng.save(Some(&copy)).unwrap();
        assert_eq!(saved, copy);
        let reloaded = ModelTree::load(&copy).unwrap();
        assert_eq!(reloaded.to_json(), tree.to_json());
        // No staging files survive an atomic save.
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn expired_deadline_reports_deadline_not_a_hang() {
        let (path, _) = temp_model("deadline.json", 2);
        let eng = Engine::open(&path).unwrap();
        let (model, _) = eng.snapshot();
        let rows = Matrix::from_rows(&[&[1.0, 2.0][..]]).unwrap();
        let token = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(
            predict(&model, &rows, Parallelism::Off, &token),
            PredictOutcome::DeadlineExceeded
        );
    }

    #[test]
    fn compiled_failure_falls_back_to_interpreted_as_degraded() {
        // A deliberately inconsistent pair: the compiled form demands more
        // attributes than the interpreted tree, so the compiled rung fails
        // with RowLengthMismatch and the interpreted rung answers.
        let model = LoadedModel {
            tree: tiny_tree(2),
            compiled: tiny_tree(5).compile(),
        };
        let row = [3.0, 1.0];
        let rows = Matrix::from_rows(&[&row]).unwrap();
        match predict(&model, &rows, Parallelism::Off, &CancelToken::new()) {
            PredictOutcome::Ok {
                predictions,
                degraded,
            } => {
                assert!(degraded, "fallback answers must be marked degraded");
                assert_eq!(predictions[0].to_bits(), model.tree.predict(&row).to_bits());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn whole_ladder_failing_is_a_structured_error() {
        let model = LoadedModel {
            tree: tiny_tree(5),
            compiled: tiny_tree(5).compile(),
        };
        // One column: too narrow for both rungs.
        let rows = Matrix::from_rows(&[&[1.0][..]]).unwrap();
        match predict(&model, &rows, Parallelism::Off, &CancelToken::new()) {
            PredictOutcome::Failed(msg) => {
                assert!(msg.contains("compiled path"), "{msg}");
                assert!(msg.contains("interpreted fallback"), "{msg}");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}
