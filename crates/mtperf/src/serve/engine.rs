//! The engine layer: validated loads and the per-request degradation
//! ladder.
//!
//! # Validated loads
//!
//! A model only becomes servable after [`load_and_validate`]: parse (the
//! persistence layer already verifies the envelope checksum), compile, and
//! **smoke-predict** — score one all-zero row through the compiled tree and
//! require bit-identical agreement with the interpreted walk plus a finite
//! result. A file that fails any step never reaches the hot path. Model
//! *lifecycle* — which versions are resident, which is active, hot reload
//! and promote with last-known-good fallback — lives one layer up, in
//! [`super::registry`]; every path into that layer funnels through
//! [`load_and_validate`].
//!
//! # Per-request degradation ladder
//!
//! [`predict`] tries, in order:
//!
//! 1. the compiled batch path (parallel, cancellable) — the fast path;
//! 2. the interpreted per-row walk, panic-isolated and deadline-checked
//!    between rows — bit-identical output by the compiled path's own
//!    contract, just slower;
//! 3. a structured `internal` failure naming both errors.
//!
//! Deadline expiry is not a fault: it short-circuits the ladder and
//! reports [`PredictOutcome::DeadlineExceeded`] immediately.

use std::panic::{self, AssertUnwindSafe};
use std::path::Path;

use mtperf_linalg::{CancelToken, Matrix, Parallelism};
use mtperf_mtree::{CompiledTree, ModelTree, MtreeError};

/// A validated, servable model: the source tree (for the interpreted
/// fallback) plus its compiled form (the fast path).
pub struct LoadedModel {
    /// Interpreted form, kept for the degradation ladder.
    pub tree: ModelTree,
    /// Compiled form used by the worker hot path.
    pub compiled: CompiledTree,
}

impl LoadedModel {
    /// Attribute count requests must provide.
    pub fn n_attrs(&self) -> usize {
        self.compiled.n_attrs()
    }
}

/// Loads, compiles, and smoke-predicts a model file.
///
/// # Errors
///
/// Returns a human-readable reason (typed persistence errors render
/// through their `Display`) when the file is missing, torn, corrupt, a
/// wrong version, or fails the smoke prediction.
pub fn load_and_validate(path: &Path) -> Result<LoadedModel, String> {
    let tree = ModelTree::load(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let compiled = tree.compile();
    let zeros = vec![0.0; compiled.n_attrs().max(1)];
    let rows = Matrix::from_rows(&[&zeros]).map_err(|e| format!("smoke row: {e}"))?;
    let got = compiled
        .try_predict_batch_with(&rows, Parallelism::Off)
        .map_err(|e| format!("smoke prediction failed: {e}"))?;
    let want = panic::catch_unwind(AssertUnwindSafe(|| tree.predict(&zeros)))
        .map_err(|_| "smoke prediction panicked in the interpreted walk".to_string())?;
    if got.len() != 1 || got[0].to_bits() != want.to_bits() {
        return Err("smoke prediction disagrees with the interpreted walk".to_string());
    }
    if !got[0].is_finite() {
        return Err(format!("smoke prediction is non-finite ({})", got[0]));
    }
    Ok(LoadedModel { tree, compiled })
}

/// Outcome of one prediction request after the degradation ladder.
#[derive(Debug, PartialEq)]
pub enum PredictOutcome {
    /// Predictions in input order; `degraded` when the interpreted
    /// fallback produced them.
    Ok {
        /// Predicted values, one per input row.
        predictions: Vec<f64>,
        /// Whether the fallback path answered.
        degraded: bool,
    },
    /// The request's deadline fired before compute finished.
    DeadlineExceeded,
    /// Every rung of the ladder failed.
    Failed(String),
}

enum InterpFail {
    Deadline,
    Error(String),
}

fn interpreted_predict(
    model: &LoadedModel,
    rows: &Matrix,
    token: &CancelToken,
) -> Result<Vec<f64>, InterpFail> {
    let mut out = Vec::with_capacity(rows.rows());
    for i in 0..rows.rows() {
        if token.is_cancelled() {
            return Err(InterpFail::Deadline);
        }
        let row = rows.row(i);
        let p = panic::catch_unwind(AssertUnwindSafe(|| model.tree.predict(row)))
            .map_err(|_| InterpFail::Error(format!("interpreted walk panicked on row {i}")))?;
        out.push(p);
    }
    Ok(out)
}

/// Scores `rows` through the degradation ladder (see the module docs).
pub fn predict(
    model: &LoadedModel,
    rows: &Matrix,
    par: Parallelism,
    token: &CancelToken,
) -> PredictOutcome {
    match model.compiled.try_predict_batch_cancel(rows, par, token) {
        Ok(predictions) => PredictOutcome::Ok {
            predictions,
            degraded: false,
        },
        Err(MtreeError::Cancelled) => PredictOutcome::DeadlineExceeded,
        Err(primary) => match interpreted_predict(model, rows, token) {
            Ok(predictions) => PredictOutcome::Ok {
                predictions,
                degraded: true,
            },
            Err(InterpFail::Deadline) => PredictOutcome::DeadlineExceeded,
            Err(InterpFail::Error(secondary)) => PredictOutcome::Failed(format!(
                "compiled path: {primary}; interpreted fallback: {secondary}"
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtperf_mtree::{Dataset, M5Params};
    use std::path::PathBuf;
    use std::time::Duration;

    fn tiny_dataset(n_attrs: usize) -> Dataset {
        let names: Vec<String> = (0..n_attrs).map(|i| format!("a{i}")).collect();
        let rows: Vec<Vec<f64>> = (0..24)
            .map(|r| {
                (0..n_attrs)
                    .map(|c| ((r * 7 + c * 3) % 11) as f64)
                    .collect()
            })
            .collect();
        let targets: Vec<f64> = rows
            .iter()
            .map(|row| {
                0.5 + row
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v * (i + 1) as f64)
                    .sum::<f64>()
            })
            .collect();
        Dataset::from_rows(names, &rows, &targets).unwrap()
    }

    fn tiny_tree(n_attrs: usize) -> ModelTree {
        let params = M5Params::default().with_min_instances(4);
        ModelTree::fit(&tiny_dataset(n_attrs), &params).unwrap()
    }

    fn temp_model(name: &str, n_attrs: usize) -> (PathBuf, ModelTree) {
        let dir = std::env::temp_dir().join("mtperf-serve-engine-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let tree = tiny_tree(n_attrs);
        tree.save(&path).unwrap();
        (path, tree)
    }

    #[test]
    fn load_and_validate_serves_bit_identical() {
        let (path, tree) = temp_model("open-ok.json", 3);
        let model = load_and_validate(&path).unwrap();
        assert_eq!(model.n_attrs(), 3);
        let row = [1.0, 2.0, 3.0];
        let rows = Matrix::from_rows(&[&row]).unwrap();
        match predict(&model, &rows, Parallelism::Off, &CancelToken::new()) {
            PredictOutcome::Ok {
                predictions,
                degraded,
            } => {
                assert!(!degraded);
                assert_eq!(predictions[0].to_bits(), tree.predict(&row).to_bits());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn missing_or_corrupt_file_fails_validation() {
        let err = load_and_validate(Path::new("/nonexistent/model.json"))
            .err()
            .expect("validated load of a missing file must fail");
        assert!(err.contains("model.json"), "{err}");

        let dir = std::env::temp_dir().join("mtperf-serve-engine-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("garbage.json");
        std::fs::write(&bad, "{ not a model }").unwrap();
        assert!(load_and_validate(&bad).is_err());

        // A validated model saves atomically: no staging files survive.
        let (path, tree) = temp_model("save-src.json", 2);
        let model = load_and_validate(&path).unwrap();
        let copy = dir.join("save-copy.json");
        model.tree.save(&copy).unwrap();
        assert_eq!(ModelTree::load(&copy).unwrap().to_json(), tree.to_json());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn expired_deadline_reports_deadline_not_a_hang() {
        let (path, _) = temp_model("deadline.json", 2);
        let model = load_and_validate(&path).unwrap();
        let rows = Matrix::from_rows(&[&[1.0, 2.0][..]]).unwrap();
        let token = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(
            predict(&model, &rows, Parallelism::Off, &token),
            PredictOutcome::DeadlineExceeded
        );
    }

    #[test]
    fn compiled_failure_falls_back_to_interpreted_as_degraded() {
        // A deliberately inconsistent pair: the compiled form demands more
        // attributes than the interpreted tree, so the compiled rung fails
        // with RowLengthMismatch and the interpreted rung answers.
        let model = LoadedModel {
            tree: tiny_tree(2),
            compiled: tiny_tree(5).compile(),
        };
        let row = [3.0, 1.0];
        let rows = Matrix::from_rows(&[&row]).unwrap();
        match predict(&model, &rows, Parallelism::Off, &CancelToken::new()) {
            PredictOutcome::Ok {
                predictions,
                degraded,
            } => {
                assert!(degraded, "fallback answers must be marked degraded");
                assert_eq!(predictions[0].to_bits(), model.tree.predict(&row).to_bits());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn whole_ladder_failing_is_a_structured_error() {
        let model = LoadedModel {
            tree: tiny_tree(5),
            compiled: tiny_tree(5).compile(),
        };
        // One column: too narrow for both rungs.
        let rows = Matrix::from_rows(&[&[1.0][..]]).unwrap();
        match predict(&model, &rows, Parallelism::Off, &CancelToken::new()) {
            PredictOutcome::Failed(msg) => {
                assert!(msg.contains("compiled path"), "{msg}");
                assert!(msg.contains("interpreted fallback"), "{msg}");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}
