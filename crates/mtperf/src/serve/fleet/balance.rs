//! Power-of-two-choices dispatch.
//!
//! Sampling two replicas uniformly and dispatching to the less-loaded of
//! the pair gets exponentially better load spread than one random choice
//! while only ever reading two inflight counters — the classic
//! "power of two choices" result. The draw comes from the process `rng`
//! seam, so a simulated fleet replays its dispatch decisions exactly.

use mtperf_detsim::rng::GenericRng;

/// Picks from `candidates` — `(replica index, inflight count)` pairs — by
/// the power-of-two-choices rule: two distinct uniform samples, the one
/// with fewer requests in flight wins (first sample on a tie). Returns
/// `None` when there are no candidates, and short-circuits a single
/// candidate without consuming randomness.
pub fn pick_two_choices(rng: &dyn GenericRng, candidates: &[(usize, usize)]) -> Option<usize> {
    match candidates.len() {
        0 => None,
        1 => Some(candidates[0].0),
        n => {
            let a = rng.gen_index(n);
            // Second sample from the remaining n-1, shifted past `a`, so
            // the pair is distinct without rejection sampling (which
            // would make the number of rng draws schedule-dependent).
            let mut b = rng.gen_index(n - 1);
            if b >= a {
                b += 1;
            }
            let (idx_a, load_a) = candidates[a];
            let (idx_b, load_b) = candidates[b];
            Some(if load_b < load_a { idx_b } else { idx_a })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtperf_detsim::rng::SimRng;

    #[test]
    fn empty_and_singleton_candidate_sets() {
        let rng = SimRng::seed_from_u64(1);
        assert_eq!(pick_two_choices(&rng, &[]), None);
        assert_eq!(pick_two_choices(&rng, &[(7, 3)]), Some(7));
    }

    #[test]
    fn never_picks_the_strictly_more_loaded_of_its_pair() {
        // With two candidates the sampled pair is always {0, 1}, so the
        // less-loaded one must win every single draw.
        let rng = SimRng::seed_from_u64(2);
        for _ in 0..200 {
            assert_eq!(pick_two_choices(&rng, &[(0, 9), (1, 2)]), Some(1));
        }
    }

    #[test]
    fn spreads_load_across_equally_loaded_replicas() {
        let rng = SimRng::seed_from_u64(3);
        let candidates = [(0, 1), (1, 1), (2, 1), (3, 1)];
        let mut hits = [0u32; 4];
        for _ in 0..2000 {
            hits[pick_two_choices(&rng, &candidates).unwrap()] += 1;
        }
        for (i, h) in hits.iter().enumerate() {
            assert!(*h > 200, "replica {i} starved: {hits:?}");
        }
    }

    #[test]
    fn favors_the_idle_replica_under_skew() {
        let rng = SimRng::seed_from_u64(4);
        let candidates = [(0, 10), (1, 10), (2, 0)];
        let mut idle = 0u32;
        for _ in 0..1000 {
            if pick_two_choices(&rng, &candidates) == Some(2) {
                idle += 1;
            }
        }
        // Replica 2 is in the sampled pair with probability 2/3 and wins
        // every pair it is in.
        assert!(idle > 500, "idle replica picked only {idle}/1000 times");
    }

    #[test]
    fn same_seed_same_decisions() {
        let picks = |seed: u64| -> Vec<Option<usize>> {
            let rng = SimRng::seed_from_u64(seed);
            (0..50)
                .map(|_| pick_two_choices(&rng, &[(0, 3), (1, 1), (2, 2)]))
                .collect()
        };
        assert_eq!(picks(9), picks(9));
    }
}
