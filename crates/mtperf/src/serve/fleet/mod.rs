//! Fault-tolerant fleet serving: `mtperf serve --fleet`.
//!
//! A thin router daemon that speaks `mtperf-serve-v2` unchanged to
//! clients while multiplexing every request over a fixed set of replica
//! daemons (TCP or Unix-socket `mtperf serve` processes). One poisoned,
//! killed, or partitioned replica no longer takes the service down:
//!
//! * [`replica`] — the per-replica circuit breaker (healthy → suspect →
//!   circuit-open → half-open probes);
//! * [`balance`] — power-of-two-choices dispatch over per-replica
//!   inflight counts;
//! * [`retry`] — deadline-aware retry budgets with decorrelated-jitter
//!   backoff, drawn through the `clock`/`rng` seams;
//! * [`router`] — fan-out, hedging, broadcast, and the per-model health
//!   merge;
//! * [`dst`] — the deterministic fleet simulation (scripted kills,
//!   partitions, latency spikes, poisoned promotes) and its invariants.
//!
//! The router holds no model state and no queue of its own: every
//! request either completes against a replica or is answered with a
//! typed error before the session moves on, so a drain never has
//! anything to wait for.

pub mod balance;
pub mod dst;
pub mod replica;
pub mod retry;
pub mod router;

pub use replica::{Admission, HealthState, ReplicaHealth};
pub use router::{Fleet, FleetStats, ReplicaLink, ReplicaSlot};

use std::io::{self, BufRead, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use crate::cli::Args;
use crate::errors::CliError;

use super::protocol::{self, LineRead};
use super::{SharedWriter, POLL_MS, SHUTDOWN};

/// Consecutive exchange failures before a replica's circuit opens.
pub(crate) const FAIL_THRESHOLD: u32 = 3;
/// First cooldown after a circuit opens.
pub(crate) const BASE_COOLDOWN: Duration = Duration::from_millis(250);
/// Cooldown ceiling under repeated failed probes.
pub(crate) const MAX_COOLDOWN: Duration = Duration::from_secs(5);
/// Backoff ceiling within one request's retry schedule.
pub(crate) const RETRY_CAP: Duration = Duration::from_secs(1);
/// Bound on a TCP connect attempt to a replica.
const CONNECT_WAIT: Duration = Duration::from_secs(2);

/// Parsed configuration of one `mtperf serve --fleet` run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Replica endpoints, in `--replicas` order: `host:port` for TCP, a
    /// path containing `/` for a Unix socket.
    pub replicas: Vec<String>,
    /// Unix-domain socket the *router* listens on, if any.
    pub socket: Option<PathBuf>,
    /// TCP address the *router* listens on, if any.
    pub tcp: Option<String>,
    /// Whether to serve a session over stdin/stdout.
    pub stdio: bool,
    /// Hedge threshold for predicts, in milliseconds.
    pub hedge_ms: u64,
    /// Retry attempts per request.
    pub retry_attempts: u32,
    /// First-retry backoff target, in milliseconds.
    pub retry_base_ms: u64,
}

impl FleetConfig {
    /// Builds the configuration from parsed CLI arguments.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] on a missing/empty `--replicas` list or an
    /// out-of-range numeric option.
    pub fn from_args(args: &Args) -> Result<FleetConfig, CliError> {
        let replicas: Vec<String> = args
            .require("replicas")?
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if replicas.is_empty() {
            return Err(CliError::Usage(
                "option --replicas needs at least one endpoint".to_string(),
            ));
        }
        let socket = args.options.get("socket").map(PathBuf::from);
        let tcp = args.options.get("tcp").cloned();
        let hedge_ms: u64 = args.numeric("hedge-ms", 50)?;
        if hedge_ms == 0 {
            return Err(CliError::Usage(
                "option --hedge-ms must be at least 1".to_string(),
            ));
        }
        let retry_attempts: u32 = args.numeric("retry-attempts", 3)?;
        let retry_base_ms: u64 = args.numeric("retry-base-ms", 2)?;
        if retry_base_ms == 0 {
            return Err(CliError::Usage(
                "option --retry-base-ms must be at least 1".to_string(),
            ));
        }
        let stdio = (socket.is_none() && tcp.is_none()) || args.flag("stdio");
        Ok(FleetConfig {
            replicas,
            socket,
            tcp,
            stdio,
            hedge_ms,
            retry_attempts,
            retry_base_ms,
        })
    }
}

/// A live connection to a replica (lazily established, dropped on any
/// exchange failure — which is also how a hedge cancels its loser).
enum Conn {
    Tcp {
        reader: io::BufReader<TcpStream>,
        writer: TcpStream,
    },
    #[cfg(unix)]
    Unix {
        reader: io::BufReader<std::os::unix::net::UnixStream>,
        writer: std::os::unix::net::UnixStream,
    },
}

/// The production [`ReplicaLink`]: one lazily-(re)connected stream per
/// replica. An endpoint containing `/` is a Unix-socket path; anything
/// else is a TCP `host:port`.
pub struct NetLink {
    endpoint: String,
    conn: Option<Conn>,
}

impl NetLink {
    /// A disconnected link to `endpoint`; the first exchange connects.
    pub fn new(endpoint: String) -> NetLink {
        NetLink {
            endpoint,
            conn: None,
        }
    }

    fn connect(&mut self, wait: Duration) -> io::Result<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        let conn = if self.endpoint.contains('/') {
            connect_unix(&self.endpoint)?
        } else {
            let addr = self.endpoint.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::AddrNotAvailable,
                    format!("replica {} resolves to no address", self.endpoint),
                )
            })?;
            let stream = TcpStream::connect_timeout(&addr, wait.min(CONNECT_WAIT).max(POLL))?;
            let reader = io::BufReader::new(stream.try_clone()?);
            Conn::Tcp {
                reader,
                writer: stream,
            }
        };
        self.conn = Some(conn);
        Ok(())
    }

    fn do_exchange(&mut self, line: &str, wait: Duration) -> io::Result<String> {
        self.connect(wait)?;
        let conn = self.conn.as_mut().expect("connected above");
        // `set_read_timeout(Some(ZERO))` is an error by contract; clamp.
        let wait = wait.max(POLL);
        match conn {
            Conn::Tcp { reader, writer } => {
                writer.set_read_timeout(Some(wait))?;
                writer.write_all(line.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                read_reply(reader)
            }
            #[cfg(unix)]
            Conn::Unix { reader, writer } => {
                writer.set_read_timeout(Some(wait))?;
                writer.write_all(line.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                read_reply(reader)
            }
        }
    }
}

const POLL: Duration = Duration::from_millis(1);

#[cfg(unix)]
fn connect_unix(path: &str) -> io::Result<Conn> {
    let stream = std::os::unix::net::UnixStream::connect(path)?;
    let reader = io::BufReader::new(stream.try_clone()?);
    Ok(Conn::Unix {
        reader,
        writer: stream,
    })
}

#[cfg(not(unix))]
fn connect_unix(path: &str) -> io::Result<Conn> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        format!("unix-socket replica {path} on a non-unix platform"),
    ))
}

fn read_reply<R: BufRead>(reader: &mut R) -> io::Result<String> {
    match protocol::read_bounded_line(reader)? {
        LineRead::Line(l) => Ok(l),
        LineRead::Eof => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "replica closed the connection mid-exchange",
        )),
        LineRead::TooLong => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "replica reply exceeds the line bound",
        )),
    }
}

impl ReplicaLink for NetLink {
    fn exchange(&mut self, line: &str, wait: Duration) -> io::Result<String> {
        let result = self.do_exchange(line, wait);
        if result.is_err() {
            // The error contract: a failed (or abandoned) exchange tears
            // the connection down, so a late reply can never bleed into
            // a later exchange.
            self.conn = None;
        }
        result
    }

    fn reset(&mut self) {
        self.conn = None;
    }
}

/// Builds the router state for a configuration.
fn build_fleet(cfg: &FleetConfig) -> Fleet {
    Fleet {
        replicas: cfg
            .replicas
            .iter()
            .map(|ep| {
                ReplicaSlot::new(
                    ep.clone(),
                    Box::new(NetLink::new(ep.clone())),
                    ReplicaHealth::new(FAIL_THRESHOLD, BASE_COOLDOWN, MAX_COOLDOWN),
                )
            })
            .collect(),
        hedge_after: Duration::from_millis(cfg.hedge_ms),
        retry_attempts: cfg.retry_attempts,
        retry_base: Duration::from_millis(cfg.retry_base_ms),
        retry_cap: RETRY_CAP,
        stats: FleetStats::default(),
    }
}

fn spawn_stdio(fleet: &Arc<Fleet>) {
    let fleet = Arc::clone(fleet);
    thread::spawn(move || {
        let writer: SharedWriter = Arc::new(Mutex::new(Box::new(io::stdout())));
        router::run_fleet_session(&fleet, io::BufReader::new(io::stdin()), &writer);
        SHUTDOWN.store(true, Ordering::SeqCst);
    });
}

fn accept_loop_tcp(fleet: &Arc<Fleet>, listener: TcpListener) {
    loop {
        if SHUTDOWN.load(Ordering::SeqCst) {
            return;
        }
        match mtperf_obs::fsio::with_retry("fleet_accept", || listener.accept()) {
            Ok((stream, _addr)) => {
                let reader = match stream.try_clone() {
                    Ok(s) => io::BufReader::new(s),
                    Err(_) => continue,
                };
                let writer: SharedWriter = Arc::new(Mutex::new(Box::new(stream)));
                let fleet = Arc::clone(fleet);
                thread::spawn(move || router::run_fleet_session(&fleet, reader, &writer));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(POLL_MS));
            }
            Err(e) => {
                eprintln!("mtperf serve --fleet: tcp accept failed: {e}");
                thread::sleep(Duration::from_millis(POLL_MS));
            }
        }
    }
}

#[cfg(unix)]
fn accept_loop_unix(fleet: &Arc<Fleet>, listener: std::os::unix::net::UnixListener) {
    loop {
        if SHUTDOWN.load(Ordering::SeqCst) {
            return;
        }
        match mtperf_obs::fsio::with_retry("fleet_accept", || listener.accept()) {
            Ok((stream, _addr)) => {
                let reader = match stream.try_clone() {
                    Ok(s) => io::BufReader::new(s),
                    Err(_) => continue,
                };
                let writer: SharedWriter = Arc::new(Mutex::new(Box::new(stream)));
                let fleet = Arc::clone(fleet);
                thread::spawn(move || router::run_fleet_session(&fleet, reader, &writer));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(POLL_MS));
            }
            Err(e) => {
                eprintln!("mtperf serve --fleet: accept failed: {e}");
                thread::sleep(Duration::from_millis(POLL_MS));
            }
        }
    }
}

/// Runs the fleet router until a drain trigger fires.
///
/// # Errors
///
/// [`CliError::Unavailable`] when a listener cannot be bound. Replica
/// unreachability is *not* a startup error: replicas may come up after
/// the router, and the breakers handle the gap.
pub fn run(cfg: &FleetConfig) -> Result<(), CliError> {
    SHUTDOWN.store(false, Ordering::SeqCst);
    let fleet = Arc::new(build_fleet(cfg));
    if let Some(sock) = &cfg.socket {
        #[cfg(unix)]
        {
            let listener = super::transport::bind_unix(sock)?;
            let fleet = Arc::clone(&fleet);
            thread::spawn(move || accept_loop_unix(&fleet, listener));
        }
        #[cfg(not(unix))]
        {
            return Err(CliError::Unavailable(format!(
                "--socket {} requires a unix platform",
                sock.display()
            )));
        }
    }
    if let Some(addr) = &cfg.tcp {
        let listener = super::transport::bind_tcp(addr)?;
        let fleet = Arc::clone(&fleet);
        thread::spawn(move || accept_loop_tcp(&fleet, listener));
    }
    if cfg.stdio {
        spawn_stdio(&fleet);
    }
    eprintln!(
        "mtperf serve: fleet ready ({} replicas: {}{}{}{})",
        cfg.replicas.len(),
        cfg.replicas.join(", "),
        cfg.socket
            .as_ref()
            .map(|s| format!(", socket {}", s.display()))
            .unwrap_or_default(),
        cfg.tcp
            .as_ref()
            .map(|a| format!(", tcp {a}"))
            .unwrap_or_default(),
        if cfg.stdio { ", stdio" } else { "" },
    );
    while !SHUTDOWN.load(Ordering::SeqCst) {
        thread::sleep(Duration::from_millis(POLL_MS));
    }
    eprintln!("mtperf serve: draining...");
    if let Some(sock) = &cfg.socket {
        let _ = std::fs::remove_file(sock);
    }
    eprintln!("mtperf serve: drained, exiting");
    Ok(())
}
