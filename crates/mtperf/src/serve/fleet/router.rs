//! Fleet fan-out: request routing, hedging, broadcast, health merge.
//!
//! One [`Fleet`] multiplexes any number of client sessions over a fixed
//! set of replica daemons, speaking `mtperf-serve-v2` unchanged on both
//! sides. Per request the router guarantees **exactly one** response
//! line, on the issuing connection, no matter how many replica exchanges
//! (retries, hedges, probes) it took to produce it:
//!
//! * **idempotent ops** (`predict`, `health`, `ready`, `list`, and
//!   anything unparsable — the replica's deterministic `bad_request`
//!   answer is safe to recompute) are dispatched to one replica chosen
//!   by power-of-two-choices over the admitted set, preferring recovery
//!   probes so circuit-open replicas get a path back in. Failures burn
//!   the request's [`RetryBudget`] (backoff through the `clock` seam)
//!   and fail over to another replica within the remaining
//!   `deadline_ms`. A `predict` that exceeds the hedge threshold is
//!   abandoned (its link reset, so the slow response dies with the
//!   connection — the loser is cancelled) and re-sent once, immediately,
//!   elsewhere: first well-formed response wins.
//! * **mutating ops** (`load`, `promote`, `rollback`, `reload`, `save`)
//!   broadcast sequentially to every admitted replica; the client sees
//!   the first failure (any replica refusing a deploy means the deploy
//!   did not land fleet-wide) or else the first success.
//! * **`health`/`ready`** additionally fan out to *all* admitted
//!   replicas and merge: counters sum, a model is fleet-degraded only
//!   when no reporting replica serves it clean, and the fleet is ready
//!   while any replica is.
//! * **brown-out** — no replica admitted or every attempt exhausted —
//!   answers a typed [`protocol::E_UNAVAILABLE`] error. Never a hang,
//!   never a dropped line.

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use mtperf_detsim::{clock, rng};
use serde::Deserialize;

use super::super::protocol::{self, LineRead, Request, Response};
use super::super::{SessionControl, SharedWriter, SHUTDOWN};
use super::balance;
use super::replica::{Admission, ReplicaHealth};
use super::retry::RetryBudget;

/// Wait bound for exchanges that carry no client deadline (mutating ops,
/// health fan-outs, un-deadlined predicts). Generous — model validation
/// on a promote is real work — but finite: a wedged replica must not
/// wedge the router.
const DEFAULT_EXCHANGE_WAIT: Duration = Duration::from_secs(30);

/// One request/response exchange with a replica.
///
/// `exchange` sends one protocol line (without the trailing newline) and
/// waits up to `wait` for the replica's one-line answer. On *any* error
/// — including `TimedOut` — the implementation must also discard its
/// connection state, so a late response can never surface on a later
/// exchange. That teardown is what makes hedging's loser cancellation
/// sound: the abandoned response dies with the dropped connection.
pub trait ReplicaLink: Send {
    /// Performs one exchange. See the trait docs for the error contract.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`]; `TimedOut`/`WouldBlock` mean the wait elapsed.
    fn exchange(&mut self, line: &str, wait: Duration) -> io::Result<String>;

    /// Drops any live connection state (idempotent).
    fn reset(&mut self);
}

/// One replica as the router sees it: a link, a breaker, and an
/// inflight count for power-of-two-choices.
pub struct ReplicaSlot {
    /// Display name (the replica address, or a sim tag).
    pub name: String,
    link: Mutex<Box<dyn ReplicaLink>>,
    health: Mutex<ReplicaHealth>,
    inflight: AtomicUsize,
}

impl ReplicaSlot {
    /// Wraps a link with a fresh breaker.
    pub fn new(name: String, link: Box<dyn ReplicaLink>, health: ReplicaHealth) -> ReplicaSlot {
        ReplicaSlot {
            name,
            link: Mutex::new(link),
            health: Mutex::new(health),
            inflight: AtomicUsize::new(0),
        }
    }

    /// A snapshot of this replica's breaker (state and counters).
    pub fn health_snapshot(&self) -> ReplicaHealth {
        self.health
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Router-level counters, exposed for the simulator's coverage floors.
#[derive(Debug, Default)]
pub struct FleetStats {
    /// Client request lines dispatched.
    pub requests: AtomicU64,
    /// Attempts moved to a different replica after a hard failure.
    pub failovers: AtomicU64,
    /// Predicts re-sent after exceeding the hedge threshold.
    pub hedged_predicts: AtomicU64,
    /// Backoff sleeps taken from a retry budget.
    pub retries: AtomicU64,
    /// Requests answered with the typed `unavailable` brown-out error.
    pub unavailable: AtomicU64,
    /// Mutating ops broadcast to the fleet.
    pub broadcasts: AtomicU64,
}

/// The router: replica slots plus the dispatch policy knobs.
pub struct Fleet {
    /// The replica set, in configuration order.
    pub replicas: Vec<ReplicaSlot>,
    /// A predict exchange slower than this is hedged (re-sent once).
    pub hedge_after: Duration,
    /// Retry attempts per request.
    pub retry_attempts: u32,
    /// First-retry backoff target.
    pub retry_base: Duration,
    /// Backoff ceiling.
    pub retry_cap: Duration,
    /// Router counters.
    pub stats: FleetStats,
}

impl Fleet {
    /// Sums of the per-replica breaker counters (for sweeps and health).
    pub fn circuit_opens(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r.health_snapshot().circuit_opens())
            .sum()
    }
}

/// Lenient mirror of a replica reply, for well-formedness checks and
/// merge bookkeeping.
#[derive(Debug, Deserialize)]
struct WireReply {
    proto: Option<String>,
    ok: Option<bool>,
    health: Option<WireHealth>,
}

/// Lenient mirror of a replica's health payload for merging.
#[derive(Debug, Deserialize)]
struct WireHealth {
    ready: Option<bool>,
    degraded: Option<bool>,
    model: Option<String>,
    workers: Option<u64>,
    queue_depth: Option<u64>,
    queue_capacity: Option<u64>,
    requests: Option<u64>,
    overloaded: Option<u64>,
    deadline_misses: Option<u64>,
    degraded_responses: Option<u64>,
    reloads: Option<u64>,
    versions: Option<u64>,
    cache_hits: Option<u64>,
    cache_misses: Option<u64>,
    quota_refusals: Option<u64>,
    per_model: Option<Vec<WireModelHealth>>,
    draining: Option<bool>,
}

#[derive(Debug, Deserialize)]
struct WireModelHealth {
    name: Option<String>,
    degraded: Option<bool>,
    active: Option<String>,
    last_error: Option<String>,
}

/// `true` when the op may be re-sent without changing replica state.
/// `None` covers missing/unparsable ops: every replica answers those
/// with the same deterministic `bad_request`, so recomputing is safe.
fn is_idempotent(op: Option<&str>) -> bool {
    matches!(op, None | Some("predict" | "health" | "ready" | "list"))
}

/// Checks a replica reply is a well-formed protocol line. A replica that
/// answers garbage is as failed as one that answers nothing — the reply
/// is discarded and the breaker charged.
fn well_formed(line: &str) -> bool {
    serde_json::from_str::<WireReply>(line)
        .map(|r| {
            matches!(
                r.proto.as_deref(),
                Some(protocol::PROTOCOL | protocol::PROTOCOL_V1)
            ) && r.ok.is_some()
        })
        .unwrap_or(false)
}

/// One accounted exchange with replica `idx`: inflight tracked, breaker
/// charged for the outcome, link reset on failure (loser cancellation).
fn try_replica(fleet: &Fleet, idx: usize, line: &str, wait: Duration) -> io::Result<String> {
    let slot = &fleet.replicas[idx];
    slot.inflight.fetch_add(1, Ordering::SeqCst);
    let outcome = {
        let mut link = slot.link.lock().unwrap_or_else(|e| e.into_inner());
        link.exchange(line, wait)
    };
    slot.inflight.fetch_sub(1, Ordering::SeqCst);
    let outcome = match outcome {
        Ok(reply) => {
            let reply = reply.trim_end_matches(['\r', '\n']).to_string();
            if well_formed(&reply) {
                Ok(reply)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("replica {} answered a malformed line", slot.name),
                ))
            }
        }
        Err(e) => Err(e),
    };
    let mut health = slot.health.lock().unwrap_or_else(|e| e.into_inner());
    match &outcome {
        Ok(_) => health.on_success(),
        Err(_) => {
            health.on_failure(clock::now());
            drop(health);
            slot.link.lock().unwrap_or_else(|e| e.into_inner()).reset();
        }
    }
    outcome
}

/// The admitted candidate set at `now`: probe indices (circuit recovery)
/// and normal `(index, inflight)` pairs, minus `exclude`.
fn candidates(
    fleet: &Fleet,
    now: Duration,
    exclude: Option<usize>,
) -> (Vec<usize>, Vec<(usize, usize)>) {
    let mut probes = Vec::new();
    let mut normals = Vec::new();
    for (i, slot) in fleet.replicas.iter().enumerate() {
        if Some(i) == exclude {
            continue;
        }
        let admission = slot
            .health
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .admit(now);
        match admission {
            Admission::Normal => normals.push((i, slot.inflight.load(Ordering::SeqCst))),
            Admission::Probe => probes.push(i),
            Admission::Refuse => {}
        }
    }
    (probes, normals)
}

/// Routes one idempotent request: pick, exchange, hedge once on a slow
/// predict, fail over on errors within the retry budget and deadline.
fn route(fleet: &Fleet, line: &str, id: Option<String>, req: Option<&Request>) -> String {
    let start = clock::now();
    let is_predict = req.and_then(|r| r.op.as_deref()) == Some("predict");
    let deadline = req.and_then(|r| r.deadline_ms).map(Duration::from_millis);
    let mut budget = RetryBudget::new(fleet.retry_attempts, fleet.retry_base, fleet.retry_cap);
    let rng = rng::global();
    let mut hedged = false;
    let mut last_failure: Option<io::Error> = None;
    // Avoid immediately re-picking the replica that just failed when an
    // alternative exists; `None` on the first attempt.
    let mut exclude: Option<usize> = None;
    loop {
        let now = clock::now();
        let remaining = deadline.map(|d| d.saturating_sub(now - start));
        if remaining == Some(Duration::ZERO) {
            return Response::error(
                id,
                protocol::E_DEADLINE,
                "deadline expired before a replica answered",
            )
            .to_line();
        }
        let (probes, normals) = candidates(fleet, now, exclude);
        let pick = probes
            .first()
            .copied()
            .or_else(|| balance::pick_two_choices(&*rng, &normals));
        let Some(pick) = pick else {
            if exclude.is_some() {
                // Nothing but the just-failed replica left: allow it back
                // into the pool rather than browning out early.
                exclude = None;
                continue;
            }
            fleet.stats.unavailable.fetch_add(1, Ordering::Relaxed);
            let detail = match &last_failure {
                Some(e) => format!("no replica available (last failure: {e})"),
                None => "no replica available (all circuits open or refused)".to_string(),
            };
            return Response::error(id, protocol::E_UNAVAILABLE, detail).to_line();
        };
        // A predict hedges: bound the first wait by the hedge threshold
        // so a slow replica is raced, not waited out.
        let wait = match (is_predict && !hedged, remaining) {
            (true, Some(rem)) => fleet.hedge_after.min(rem),
            (true, None) => fleet.hedge_after,
            (false, Some(rem)) => rem.min(DEFAULT_EXCHANGE_WAIT),
            (false, None) => DEFAULT_EXCHANGE_WAIT,
        };
        match try_replica(fleet, pick, line, wait) {
            Ok(reply) => return reply + "\n",
            Err(e) if timed_out(&e) && is_predict && !hedged => {
                // Hedge: the loser was cancelled by the link reset in
                // try_replica; re-send immediately on another replica.
                hedged = true;
                fleet.stats.hedged_predicts.fetch_add(1, Ordering::Relaxed);
                last_failure = Some(e);
                exclude = Some(pick);
            }
            Err(e) => {
                last_failure = Some(e);
                exclude = Some(pick);
                match budget.next_delay(&*rng, remaining) {
                    Some(delay) => {
                        fleet.stats.retries.fetch_add(1, Ordering::Relaxed);
                        fleet.stats.failovers.fetch_add(1, Ordering::Relaxed);
                        clock::sleep(delay);
                    }
                    None => {
                        let (kind, what) = if deadline.is_some() {
                            (protocol::E_DEADLINE, "retry budget cannot fit the deadline")
                        } else {
                            (protocol::E_UNAVAILABLE, "retry budget exhausted")
                        };
                        if kind == protocol::E_UNAVAILABLE {
                            fleet.stats.unavailable.fetch_add(1, Ordering::Relaxed);
                        }
                        let last = last_failure
                            .as_ref()
                            .map(|e| e.to_string())
                            .unwrap_or_default();
                        return Response::error(id, kind, format!("{what} (last failure: {last})"))
                            .to_line();
                    }
                }
            }
        }
    }
}

fn timed_out(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Broadcasts a mutating op to every admitted replica, sequentially and
/// in slot order (deterministic under simulation). The client sees the
/// first per-replica failure response verbatim, else the first success;
/// replicas that were down simply miss the deploy — the health merge
/// surfaces the divergence until they are re-deployed.
fn broadcast(fleet: &Fleet, line: &str, id: Option<String>) -> String {
    fleet.stats.broadcasts.fetch_add(1, Ordering::Relaxed);
    let now = clock::now();
    let mut first_ok: Option<String> = None;
    let mut first_err: Option<String> = None;
    for i in 0..fleet.replicas.len() {
        let admission = fleet.replicas[i]
            .health
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .admit(now);
        if admission == Admission::Refuse {
            continue;
        }
        if let Ok(reply) = try_replica(fleet, i, line, DEFAULT_EXCHANGE_WAIT) {
            let ok = serde_json::from_str::<WireReply>(&reply)
                .ok()
                .and_then(|r| r.ok)
                .unwrap_or(false);
            let slot = if ok { &mut first_ok } else { &mut first_err };
            if slot.is_none() {
                *slot = Some(reply);
            }
        }
    }
    match (first_err, first_ok) {
        (Some(err), _) => err + "\n",
        (None, Some(ok)) => ok + "\n",
        (None, None) => {
            fleet.stats.unavailable.fetch_add(1, Ordering::Relaxed);
            Response::error(
                id,
                protocol::E_UNAVAILABLE,
                "no replica reachable for this operation",
            )
            .to_line()
        }
    }
}

/// Fans a `health`/`ready` request to every admitted replica and merges
/// the payloads: counters sum; the fleet is ready while any replica is;
/// a model is fleet-degraded only when **no** reporting replica serves
/// it clean (the honest merge the per-model rows exist for).
fn merge_health(fleet: &Fleet, line: &str, id: Option<String>) -> String {
    let now = clock::now();
    let mut payloads: Vec<WireHealth> = Vec::new();
    for i in 0..fleet.replicas.len() {
        let admission = fleet.replicas[i]
            .health
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .admit(now);
        if admission == Admission::Refuse {
            continue;
        }
        if let Ok(reply) = try_replica(fleet, i, line, DEFAULT_EXCHANGE_WAIT) {
            if let Ok(wire) = serde_json::from_str::<WireReply>(&reply) {
                if let Some(h) = wire.health {
                    payloads.push(h);
                }
            }
        }
    }
    if payloads.is_empty() {
        fleet.stats.unavailable.fetch_add(1, Ordering::Relaxed);
        return Response::error(
            id,
            protocol::E_UNAVAILABLE,
            "no replica answered the health probe",
        )
        .to_line();
    }
    // Per-model merge: clean_count per name decides fleet-degraded.
    struct ModelAcc {
        reporting: u64,
        clean: u64,
        active: String,
        last_error: Option<String>,
    }
    let mut models: BTreeMap<String, ModelAcc> = BTreeMap::new();
    for h in &payloads {
        for m in h.per_model.iter().flatten() {
            let Some(name) = m.name.clone() else { continue };
            let acc = models.entry(name).or_insert_with(|| ModelAcc {
                reporting: 0,
                clean: 0,
                active: String::new(),
                last_error: None,
            });
            acc.reporting += 1;
            if m.degraded == Some(false) {
                acc.clean += 1;
                if let Some(a) = &m.active {
                    acc.active = a.clone();
                }
            } else {
                if acc.active.is_empty() {
                    if let Some(a) = &m.active {
                        acc.active = a.clone();
                    }
                }
                if acc.last_error.is_none() {
                    acc.last_error = m.last_error.clone();
                }
            }
        }
    }
    let per_model: Vec<protocol::ModelHealth> = models
        .into_iter()
        .map(|(name, acc)| protocol::ModelHealth {
            name,
            degraded: acc.clean == 0,
            active: acc.active,
            last_error: if acc.clean == 0 { acc.last_error } else { None },
        })
        .collect();
    // With no per-model rows (a pre-fleet replica build), fall back to
    // the replica-level flag under the same rule: degraded only when no
    // reporting replica is clean.
    let degraded = if per_model.is_empty() {
        payloads.iter().all(|h| h.degraded == Some(true))
    } else {
        per_model.iter().any(|m| m.degraded)
    };
    let sum = |f: fn(&WireHealth) -> Option<u64>| -> u64 { payloads.iter().filter_map(f).sum() };
    let merged = protocol::Health {
        ready: payloads.iter().any(|h| h.ready == Some(true)),
        degraded,
        model: payloads
            .iter()
            .find_map(|h| h.model.clone())
            .unwrap_or_default(),
        workers: sum(|h| h.workers) as usize,
        queue_depth: sum(|h| h.queue_depth) as usize,
        queue_capacity: sum(|h| h.queue_capacity) as usize,
        requests: sum(|h| h.requests),
        overloaded: sum(|h| h.overloaded),
        deadline_misses: sum(|h| h.deadline_misses),
        degraded_responses: sum(|h| h.degraded_responses),
        reloads: sum(|h| h.reloads),
        models: per_model.len(),
        // Replicas of one deploy agree on resident versions; report the
        // largest view rather than a misleading sum.
        versions: payloads
            .iter()
            .filter_map(|h| h.versions)
            .max()
            .unwrap_or(0) as usize,
        cache_hits: sum(|h| h.cache_hits),
        cache_misses: sum(|h| h.cache_misses),
        quota_refusals: sum(|h| h.quota_refusals),
        per_model,
        draining: !payloads.is_empty() && payloads.iter().all(|h| h.draining == Some(true)),
    };
    Response::health(id, merged).to_line()
}

/// Dispatches one client line to the fleet and returns exactly one
/// response line (newline-terminated) plus the session verdict.
pub(crate) fn dispatch_line(fleet: &Fleet, line: &str) -> (String, SessionControl) {
    fleet.stats.requests.fetch_add(1, Ordering::Relaxed);
    let req: Option<Request> = serde_json::from_str(line).ok();
    let id = req.as_ref().and_then(|r| r.id.clone());
    let op = req.as_ref().and_then(|r| r.op.as_deref());
    match op {
        // Drain is a router-level decision: acknowledged locally, never
        // forwarded (killing the replicas is the operator's call).
        Some("shutdown") => (Response::ack(id).to_line(), SessionControl::Shutdown),
        Some("health" | "ready") => (merge_health(fleet, line, id), SessionControl::Continue),
        op if is_idempotent(op) => (
            route(fleet, line, id, req.as_ref()),
            SessionControl::Continue,
        ),
        // Everything else — including unknown future mutating ops — is
        // treated as state-changing: broadcast, never silently retried.
        _ => (broadcast(fleet, line, id), SessionControl::Continue),
    }
}

/// Runs one client session against the fleet: the fleet-side twin of
/// `serve::router::run_session`, with identical framing rules.
pub(crate) fn run_fleet_session<R: BufRead>(fleet: &Fleet, mut reader: R, writer: &SharedWriter) {
    loop {
        match protocol::read_bounded_line(&mut reader) {
            Ok(LineRead::Eof) => return,
            Ok(LineRead::TooLong) => {
                let resp = Response::error(
                    None,
                    protocol::E_BAD_REQUEST,
                    format!("request line exceeds {} bytes", protocol::MAX_LINE_BYTES),
                )
                .to_line();
                send_line(writer, &resp);
            }
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                let (resp, control) = dispatch_line(fleet, &line);
                send_line(writer, &resp);
                if control == SessionControl::Shutdown {
                    SHUTDOWN.store(true, Ordering::SeqCst);
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Writes one already-framed response line to the session writer.
fn send_line(writer: &SharedWriter, line: &str) {
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    let _ = w.write_all(line.as_bytes());
    let _ = w.flush();
}
