//! Deterministic simulation testing of the **fleet router**.
//!
//! One `u64` seed fully determines a simulated fleet: 2–4 in-process
//! replica engines (each a real [`Registry`] + [`Shared`] driven through
//! the production `handle_line`/`answer` path) behind one production
//! [`Fleet`] router, on a single logical thread under virtual time. The
//! script injects the failures the router exists to survive:
//!
//! * **replica kills and restarts** — a killed replica refuses
//!   connections until a scripted restart reopens its registry from the
//!   manifest that survived the crash;
//! * **partition/heal cycles** — all but one replica killed at once,
//!   later healed together;
//! * **latency spikes** — a slow replica still *does* the work, but its
//!   reply dies with the timed-out connection (exactly what makes
//!   hedging's loser cancellation worth testing);
//! * **transport drop bursts** — connections reset mid-exchange;
//! * **poisoned promotes** — broadcast deploys of an unservable
//!   artifact, plus injected manifest-write faults on individual
//!   replicas, leaving replica *subsets* degraded for the health merge
//!   to report honestly.
//!
//! After every dispatched request the harness checks the fleet
//! invariants: **every client request is answered exactly once** (one
//! well-formed line, echoing the request id — hedges and retries never
//! duplicate or drop an answer), every error is a typed kind from the
//! closed set, **circuit-open replicas receive only probe-admitted
//! exchanges**, and at the end of the run every replica — including ones
//! that died mid-promote — reopens its registry (no last known good is
//! lost across a kill). Traces hash exactly like the single-daemon
//! simulation: same seed, byte-identical trace, stable fingerprint.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mtperf_detsim::clock::{self, VirtualClock};
use mtperf_detsim::fs as simfs;
use mtperf_detsim::rng::{self, derive_seed, GenericRng, SimRng};
use mtperf_detsim::{FaultScript, FsOp};
use mtperf_linalg::parallel::{self, Parallelism};
use serde::Deserialize;

use super::super::dst::{
    fmt_f64_row, json_path, new_shared, sanitize, sim_model, SeamGuard, VecWriter, KNOWN_KINDS,
    SIM_LOCK,
};
use super::super::registry::Registry;
use super::super::router::handle_line;
use super::super::{answer, protocol, SessionControl, Shared, SharedWriter, SHUTDOWN};
use super::replica::{HealthState, ReplicaHealth};
use super::router::{dispatch_line, Fleet, FleetStats, ReplicaLink, ReplicaSlot};

/// One simulated fleet run's parameters.
#[derive(Debug, Clone)]
pub struct FleetSimConfig {
    /// Root seed; everything else derives from it.
    pub seed: u64,
    /// Client sessions to simulate.
    pub sessions: usize,
}

/// Everything observable from one simulated fleet run.
#[derive(Debug)]
pub struct FleetSimReport {
    /// The seed that produced this run.
    pub seed: u64,
    /// Sessions simulated.
    pub sessions: usize,
    /// Client request lines dispatched through the router.
    pub requests: u64,
    /// Response lines returned to clients.
    pub responses: u64,
    /// Responses that were typed protocol errors.
    pub typed_errors: u64,
    /// Scripted replica kills that hit a live replica.
    pub replica_kills: u64,
    /// Replica restarts (scripted heals plus the end-of-run recovery).
    pub replica_restarts: u64,
    /// Circuit-open transitions across all replica breakers.
    pub circuit_opens: u64,
    /// Predicts the router hedged past the latency threshold.
    pub hedged_predicts: u64,
    /// Failed-over attempts (request moved to another replica).
    pub failovers: u64,
    /// Requests answered with the typed `unavailable` brown-out error.
    pub unavailable: u64,
    /// Mutating ops broadcast fleet-wide.
    pub broadcasts: u64,
    /// Filesystem faults injected by the script.
    pub fs_faults: u64,
    /// Invariant violations (empty on a passing run).
    pub violations: Vec<String>,
    /// The replayable event trace.
    pub trace: Vec<String>,
}

impl FleetSimReport {
    /// `true` when no invariant was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// FNV-1a fingerprint of the trace; byte-identical replays match.
    pub fn trace_hash(&self) -> u64 {
        mtperf_obs::fsio::fnv1a_64(self.trace.join("\n").as_bytes())
    }

    /// Writes the trace (one event per line) for offline diffing.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from writing `path`.
    pub fn write_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut body = self.trace.join("\n");
        body.push('\n');
        std::fs::write(path, body)
    }
}

/// Breaker parameters for simulated replicas: open fast (2 consecutive
/// failures) and cool down briefly, so a sweep exercises many
/// open/probe/close cycles per seed.
const SIM_FAIL_THRESHOLD: u32 = 2;
const SIM_BASE_COOLDOWN: Duration = Duration::from_millis(20);
const SIM_MAX_COOLDOWN: Duration = Duration::from_millis(500);

/// One simulated replica's mutable backend state, shared between the
/// router's [`SimLink`] and the fault script driver.
struct ReplicaState {
    /// The live engine, or `None` while killed.
    shared: Option<Arc<Shared>>,
    /// Added service latency per exchange.
    latency: Duration,
    /// Exchanges to fail with a connection reset before recovering.
    drop_next: u32,
    /// Total exchanges attempted against this replica (including while
    /// down), for the circuit-discipline invariant.
    exchanges: u64,
    model_path: PathBuf,
    manifest_path: PathBuf,
}

/// The simulated [`ReplicaLink`]: in-process engine behind a scripted
/// faulty transport.
struct SimLink {
    state: Arc<Mutex<ReplicaState>>,
}

fn lock_state(state: &Arc<Mutex<ReplicaState>>) -> std::sync::MutexGuard<'_, ReplicaState> {
    state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs one request line through a replica engine synchronously (the
/// replica's queue is drained on the spot) and returns its one response
/// line.
fn engine_exchange(shared: &Arc<Shared>, line: &str) -> String {
    let sink = Arc::new(Mutex::new(Vec::<u8>::new()));
    let writer: SharedWriter = Arc::new(Mutex::new(Box::new(VecWriter(Arc::clone(&sink)))));
    let control = handle_line(shared, line, &writer);
    while let Some(job) = shared.queue.try_pop() {
        answer(shared, job);
    }
    // The router never forwards `shutdown`, but keep the engine honest if
    // that ever changes: a replica-side drain must not wedge the sim.
    if matches!(control, SessionControl::Shutdown) {
        SHUTDOWN.store(false, Ordering::SeqCst);
    }
    let raw = sink.lock().unwrap_or_else(|e| e.into_inner()).clone();
    String::from_utf8_lossy(&raw).trim_end().to_string()
}

impl ReplicaLink for SimLink {
    fn exchange(&mut self, line: &str, wait: Duration) -> io::Result<String> {
        let (shared, latency) = {
            let mut st = lock_state(&self.state);
            st.exchanges += 1;
            let Some(shared) = st.shared.clone() else {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "replica is down",
                ));
            };
            if st.drop_next > 0 {
                st.drop_next -= 1;
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "connection dropped mid-exchange",
                ));
            }
            (shared, st.latency)
        };
        if latency > wait {
            // The slow replica still does the work — but the reply dies
            // with the connection the caller tears down on timeout. The
            // exactly-once invariant must hold anyway.
            clock::sleep(wait);
            let _ = engine_exchange(&shared, line);
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "exchange exceeded its wait",
            ));
        }
        clock::sleep(latency);
        Ok(engine_exchange(&shared, line))
    }

    fn reset(&mut self) {}
}

/// Lenient response mirror for auditing.
#[derive(Debug, Deserialize)]
struct WireResp {
    proto: Option<String>,
    id: Option<String>,
    ok: Option<bool>,
    error: Option<WireErr>,
}

#[derive(Debug, Deserialize)]
struct WireErr {
    kind: Option<String>,
}

fn fleet_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("mtperf-dst-fleet-{seed:016x}"))
}

/// Audits one dispatched response: exactly one well-formed line, id
/// routed back to the issuing request, error kinds from the closed set.
fn audit_response(
    si: usize,
    oi: usize,
    resp: &str,
    want_id: Option<&str>,
    typed_errors: &mut u64,
    violations: &mut Vec<String>,
) {
    let newlines = resp.matches('\n').count();
    if newlines != 1 || !resp.ends_with('\n') {
        violations.push(format!(
            "s={si} o={oi}: expected exactly one response line, got {newlines}: {resp:?}"
        ));
        return;
    }
    let line = resp.trim_end();
    match serde_json::from_str::<WireResp>(line) {
        Ok(w) => {
            if w.proto.as_deref() != Some(protocol::PROTOCOL) {
                violations.push(format!("s={si} o={oi}: missing proto marker: {line}"));
            }
            if w.ok.is_none() {
                violations.push(format!("s={si} o={oi}: missing ok field: {line}"));
            }
            if w.id.as_deref() != want_id {
                violations.push(format!(
                    "s={si} o={oi}: response routed to the wrong request \
                     (want id {want_id:?}, got {:?})",
                    w.id
                ));
            }
            if let Some(err) = w.error {
                *typed_errors += 1;
                match err.kind.as_deref() {
                    Some(kind) if KNOWN_KINDS.contains(&kind) => {}
                    other => violations.push(format!(
                        "s={si} o={oi}: error kind {other:?} is not in the closed set"
                    )),
                }
            }
        }
        Err(e) => violations.push(format!("s={si} o={oi}: unparsable response ({e}): {line}")),
    }
}

/// Runs one seeded fleet simulation. Seams are installed for the
/// duration (shared lock with the single-daemon sim) and restored on
/// exit, panics included.
#[allow(clippy::too_many_lines)]
pub fn run_fleet_sim(cfg: &FleetSimConfig) -> FleetSimReport {
    let _exclusive = SIM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut report = FleetSimReport {
        seed: cfg.seed,
        sessions: cfg.sessions,
        requests: 0,
        responses: 0,
        typed_errors: 0,
        replica_kills: 0,
        replica_restarts: 0,
        circuit_opens: 0,
        hedged_predicts: 0,
        failovers: 0,
        unavailable: 0,
        broadcasts: 0,
        fs_faults: 0,
        violations: Vec::new(),
        trace: Vec::new(),
    };

    // Clean per-seed working directory so replays see identical disk.
    let dir = fleet_dir(cfg.seed);
    let dir_str = dir.display().to_string();
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        report
            .violations
            .push(format!("setup: cannot create {}: {e}", dir.display()));
        return report;
    }
    let model_path = dir.join("model.json");
    let alt_path = dir.join("alt.json");
    let poison_path = dir.join("poison.json");
    if let Err(e) = sim_model(2.0).save(&model_path) {
        report
            .violations
            .push(format!("setup: cannot save model: {e}"));
        return report;
    }
    if let Err(e) = sim_model(-3.0).save(&alt_path) {
        report
            .violations
            .push(format!("setup: cannot save alt model: {e}"));
        return report;
    }
    if let Err(e) = std::fs::write(&poison_path, b"{ definitely not a model }") {
        report
            .violations
            .push(format!("setup: cannot write poison artifact: {e}"));
        return report;
    }

    // Install the simulators; the guard restores everything on exit.
    let fs_script = Arc::new(FaultScript::new());
    clock::install(VirtualClock::auto());
    rng::install(Arc::new(SimRng::seed_from_u64(derive_seed(
        cfg.seed,
        "fleet-jitter",
    ))));
    simfs::install(Arc::clone(&fs_script) as Arc<dyn simfs::FaultHook>);
    parallel::set_global(Parallelism::Off);
    SHUTDOWN.store(false, Ordering::SeqCst);
    let _restore = SeamGuard::new();

    let script = SimRng::seed_from_u64(derive_seed(cfg.seed, "fleet-script"));
    let rows_rng = SimRng::seed_from_u64(derive_seed(cfg.seed, "fleet-rows"));

    // 2–4 replicas, each with its own manifest (crash-survivable state).
    let n_replicas = 2 + script.gen_index(3);
    let mut states: Vec<Arc<Mutex<ReplicaState>>> = Vec::with_capacity(n_replicas);
    let mut slots: Vec<ReplicaSlot> = Vec::with_capacity(n_replicas);
    for i in 0..n_replicas {
        let manifest_path = dir.join(format!("registry-r{i}.json"));
        let reg = match Registry::open(&model_path, Some(&manifest_path)) {
            Ok(r) => r,
            Err(e) => {
                report
                    .violations
                    .push(format!("setup: replica r{i} open failed: {e}"));
                return report;
            }
        };
        let state = Arc::new(Mutex::new(ReplicaState {
            shared: Some(new_shared(reg)),
            latency: Duration::ZERO,
            drop_next: 0,
            exchanges: 0,
            model_path: model_path.clone(),
            manifest_path,
        }));
        slots.push(ReplicaSlot::new(
            format!("r{i}"),
            Box::new(SimLink {
                state: Arc::clone(&state),
            }),
            ReplicaHealth::new(SIM_FAIL_THRESHOLD, SIM_BASE_COOLDOWN, SIM_MAX_COOLDOWN),
        ));
        states.push(state);
    }
    let fleet = Fleet {
        replicas: slots,
        hedge_after: Duration::from_millis(4),
        retry_attempts: 3,
        retry_base: Duration::from_millis(1),
        retry_cap: Duration::from_millis(50),
        stats: FleetStats::default(),
    };
    report.trace.push(format!(
        "run seed={} sessions={} replicas={n_replicas} model=<sim>/model.json",
        cfg.seed, cfg.sessions,
    ));

    let restart =
        |i: usize, states: &[Arc<Mutex<ReplicaState>>], report: &mut FleetSimReport| -> bool {
            let mut st = lock_state(&states[i]);
            match Registry::open(&st.model_path, Some(&st.manifest_path)) {
                Ok(reg) => {
                    st.shared = Some(new_shared(reg));
                    report.replica_restarts += 1;
                    true
                }
                Err(e) => {
                    report.violations.push(format!(
                        "replica r{i} lost its last known good across a kill: {e}"
                    ));
                    false
                }
            }
        };

    for si in 0..cfg.sessions {
        // ---- scripted fault events for this session ----
        let mut events = String::new();
        if script.gen_bool(0.12) {
            let r = script.gen_index(n_replicas);
            let was_alive = lock_state(&states[r]).shared.take().is_some();
            if was_alive {
                report.replica_kills += 1;
                events.push_str(&format!(" kill=r{r}"));
            }
        }
        if script.gen_bool(0.15) {
            let r = script.gen_index(n_replicas);
            if lock_state(&states[r]).shared.is_none() {
                fs_script.clear();
                if restart(r, &states, &mut report) {
                    events.push_str(&format!(" restart=r{r}"));
                }
            }
        }
        if script.gen_bool(0.20) {
            let r = script.gen_index(n_replicas);
            let ms = 1 + script.gen_index(20) as u64;
            lock_state(&states[r]).latency = Duration::from_millis(ms);
            events.push_str(&format!(" lat=r{r}:{ms}ms"));
        }
        if script.gen_bool(0.20) {
            let r = script.gen_index(n_replicas);
            lock_state(&states[r]).latency = Duration::ZERO;
        }
        if script.gen_bool(0.10) {
            let r = script.gen_index(n_replicas);
            let n = 1 + script.gen_index(3) as u32;
            lock_state(&states[r]).drop_next = n;
            events.push_str(&format!(" drop=r{r}:{n}"));
        }
        if script.gen_bool(0.04) {
            // Partition: every replica but one survivor goes dark at once.
            let survivor = script.gen_index(n_replicas);
            let mut downed = 0;
            for (r, state) in states.iter().enumerate() {
                if r != survivor && lock_state(state).shared.take().is_some() {
                    report.replica_kills += 1;
                    downed += 1;
                }
            }
            if downed > 0 {
                events.push_str(&format!(" partition=survivor:r{survivor}"));
            }
        }
        if script.gen_bool(0.06) {
            // Heal: every dead replica restarts together.
            fs_script.clear();
            let mut healed = 0;
            for r in 0..n_replicas {
                if lock_state(&states[r]).shared.is_none() && restart(r, &states, &mut report) {
                    healed += 1;
                }
            }
            if healed > 0 {
                events.push_str(&format!(" heal={healed}"));
            }
        }
        if script.gen_bool(0.05) {
            // A single replica's manifest write fails on the next
            // persist: the promote broadcast then poisons a *subset*.
            let r = script.gen_index(n_replicas);
            fs_script.fail_times(
                Some(FsOp::Write),
                &format!("registry-r{r}"),
                std::io::ErrorKind::PermissionDenied,
                1,
            );
            events.push_str(&format!(" manifest_fault=r{r}"));
        }

        // ---- client ops for this session ----
        let n_ops = 1 + script.gen_index(5);
        let mut out_all = String::new();
        for oi in 0..n_ops {
            let roll = script.gen_f64();
            let (line, id) = if roll < 0.62 {
                let id = format!("s{si}-o{oi}");
                let row = fmt_f64_row(&[
                    (rows_rng.next_u64() % 110) as f64 / 10.0,
                    (rows_rng.next_u64() % 50) as f64 / 10.0,
                ]);
                let deadline = if script.gen_bool(0.3) {
                    format!(",\"deadline_ms\":{}", 5 + script.gen_index(60))
                } else {
                    String::new()
                };
                (
                    format!("{{\"op\":\"predict\",\"id\":\"{id}\",\"rows\":[{row}]{deadline}}}"),
                    Some(id),
                )
            } else if roll < 0.72 {
                let id = format!("s{si}-o{oi}");
                (format!("{{\"op\":\"health\",\"id\":\"{id}\"}}"), Some(id))
            } else if roll < 0.77 {
                let id = format!("s{si}-o{oi}");
                (format!("{{\"op\":\"ready\",\"id\":\"{id}\"}}"), Some(id))
            } else if roll < 0.85 {
                let id = format!("s{si}-o{oi}");
                let target = if script.gen_bool(0.4) {
                    &poison_path
                } else {
                    &alt_path
                };
                (
                    format!(
                        "{{\"op\":\"promote\",\"id\":\"{id}\",\"path\":{}}}",
                        json_path(target)
                    ),
                    Some(id),
                )
            } else if roll < 0.90 {
                let id = format!("s{si}-o{oi}");
                (format!("{{\"op\":\"rollback\",\"id\":\"{id}\"}}"), Some(id))
            } else if roll < 0.96 {
                let id = format!("s{si}-o{oi}");
                (format!("{{\"op\":\"list\",\"id\":\"{id}\"}}"), Some(id))
            } else {
                let id = format!("s{si}-o{oi}");
                (format!("{{\"op\":\"save\",\"id\":\"{id}\"}}"), Some(id))
            };

            // Snapshot breaker/exchange counters for the circuit-traffic
            // discipline check.
            let pre: Vec<(HealthState, u64, u64)> = fleet
                .replicas
                .iter()
                .enumerate()
                .map(|(i, slot)| {
                    let h = slot.health_snapshot();
                    (h.state(), h.probes(), lock_state(&states[i]).exchanges)
                })
                .collect();

            let (resp, _control) = dispatch_line(&fleet, &line);
            report.requests += 1;
            report.responses += 1;
            audit_response(
                si,
                oi,
                &resp,
                id.as_deref(),
                &mut report.typed_errors,
                &mut report.violations,
            );
            out_all.push_str(&resp);

            for (i, (pre_state, pre_probes, pre_ex)) in pre.iter().enumerate() {
                if matches!(pre_state, HealthState::CircuitOpen | HealthState::HalfOpen) {
                    let h = fleet.replicas[i].health_snapshot();
                    let d_ex = lock_state(&states[i]).exchanges - pre_ex;
                    let d_probes = h.probes() - pre_probes;
                    if d_ex > d_probes {
                        report.violations.push(format!(
                            "s={si} o={oi}: circuit-open replica r{i} received \
                             {d_ex} exchanges but only {d_probes} probe admissions"
                        ));
                    }
                }
            }
        }

        let alive = states
            .iter()
            .filter(|s| lock_state(s).shared.is_some())
            .count();
        report.trace.push(format!(
            "s={si} ops={n_ops} alive={alive}/{n_replicas}{events} t_us={} out_hash={:016x}",
            clock::now().as_micros(),
            mtperf_obs::fsio::fnv1a_64(sanitize(out_all.as_bytes(), &dir_str).as_bytes()),
        ));
    }

    // ---- end of run: heal the fleet and prove nothing was lost ----
    fs_script.clear();
    for r in 0..n_replicas {
        if lock_state(&states[r]).shared.is_none() {
            restart(r, &states, &mut report);
        }
    }
    for (r, state) in states.iter().enumerate() {
        let st = lock_state(state);
        if let Some(shared) = &st.shared {
            let reg = shared.registry.lock().unwrap_or_else(|e| e.into_inner());
            if reg.resolve(None, None).is_err() {
                report.violations.push(format!(
                    "end: replica r{r} default model is not servable after recovery"
                ));
            }
        }
    }
    report.circuit_opens = fleet.circuit_opens();
    report.hedged_predicts = fleet.stats.hedged_predicts.load(Ordering::Relaxed);
    report.failovers = fleet.stats.failovers.load(Ordering::Relaxed);
    report.unavailable = fleet.stats.unavailable.load(Ordering::Relaxed);
    report.broadcasts = fleet.stats.broadcasts.load(Ordering::Relaxed);
    report.fs_faults = fs_script.injected();
    report.trace.push(format!(
        "end t_us={} requests={} responses={} typed_errors={} kills={} restarts={} \
         circuit_opens={} hedged={} failovers={} unavailable={} broadcasts={} fs_faults={}",
        clock::now().as_micros(),
        report.requests,
        report.responses,
        report.typed_errors,
        report.replica_kills,
        report.replica_restarts,
        report.circuit_opens,
        report.hedged_predicts,
        report.failovers,
        report.unavailable,
        report.broadcasts,
        report.fs_faults,
    ));
    let _ = std::fs::remove_dir_all(&dir);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_sim_passes_and_replays_bit_identically() {
        let cfg = FleetSimConfig {
            seed: 4007,
            sessions: 40,
        };
        let a = run_fleet_sim(&cfg);
        assert!(a.passed(), "violations: {:#?}", a.violations);
        assert_eq!(a.requests, a.responses, "exactly-once accounting broke");
        let b = run_fleet_sim(&cfg);
        assert_eq!(a.trace, b.trace, "same seed must replay byte-identically");
        assert_eq!(a.trace_hash(), b.trace_hash());
    }

    #[test]
    fn fleet_fault_coverage_shows_up() {
        // A moderate run must actually exercise the failure machinery —
        // a fleet sim that never kills a replica or opens a circuit is a
        // silently weakened harness.
        let report = run_fleet_sim(&FleetSimConfig {
            seed: 4100,
            sessions: 160,
        });
        assert!(report.passed(), "violations: {:#?}", report.violations);
        assert!(report.replica_kills > 0, "no replica kills simulated");
        assert!(report.circuit_opens > 0, "no circuit ever opened");
        assert!(report.failovers > 0, "no failover ever happened");
        assert!(report.typed_errors > 0, "no typed error surfaced");
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_fleet_sim(&FleetSimConfig {
            seed: 5001,
            sessions: 30,
        });
        let b = run_fleet_sim(&FleetSimConfig {
            seed: 5002,
            sessions: 30,
        });
        assert_ne!(a.trace_hash(), b.trace_hash());
    }
}
