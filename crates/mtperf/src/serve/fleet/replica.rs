//! Per-replica health: a circuit-breaker state machine.
//!
//! The router judges each replica purely from the outcomes of its own
//! exchanges — there is no out-of-band health channel — so the state
//! machine is driven by three events: an admission decision (`admit`), a
//! completed exchange (`on_success`), and a failed one (`on_failure`).
//!
//! ```text
//!            on_failure (< threshold consecutive)
//!          ┌──────────────────────────────┐
//!          ▼                              │
//!     ┌─────────┐  on_success        ┌─────────┐
//!     │ Healthy │ ◄───────────────── │ Suspect │
//!     └─────────┘                    └─────────┘
//!          ▲                              │ on_failure
//!          │ on_success                   ▼ (threshold reached)
//!     ┌──────────┐  admit after     ┌─────────────┐
//!     │ HalfOpen │ ◄─────────────── │ CircuitOpen │
//!     └──────────┘  cooldown        └─────────────┘
//!          │ on_failure (cooldown doubles, capped)  ▲
//!          └────────────────────────────────────────┘
//! ```
//!
//! While `CircuitOpen`, `admit` refuses all traffic until the cooldown
//! elapses; the first admission afterwards transitions to `HalfOpen` and
//! is a **probe** — real client work, but the caller knows a failure is
//! likelier than usual and should have a fallback ready. A failed probe
//! reopens the circuit with a doubled (capped) cooldown; a success fully
//! closes it.
//!
//! Time is passed in by the caller (taken from the `clock` seam), never
//! read here — that keeps the machine a pure function of its event
//! sequence, which is what the property tests exercise.

use std::time::Duration;

/// The observable health state of one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Recent exchanges succeeded; full traffic.
    Healthy,
    /// Some consecutive failures, below the open threshold; still taking
    /// full traffic (failures may be the request's fault, not the
    /// replica's).
    Suspect,
    /// Too many consecutive failures: no traffic until the cooldown ends.
    CircuitOpen,
    /// Cooldown elapsed; probing with live requests until one resolves.
    HalfOpen,
}

/// What the router may send this replica right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Dispatch normally.
    Normal,
    /// Dispatch as a recovery probe — expect failure, keep a fallback.
    Probe,
    /// Send nothing (circuit open, cooldown running).
    Refuse,
}

/// The per-replica circuit breaker. See the module docs for the diagram.
#[derive(Debug, Clone)]
pub struct ReplicaHealth {
    state: HealthState,
    consecutive_failures: u32,
    threshold: u32,
    base_cooldown: Duration,
    max_cooldown: Duration,
    /// Current cooldown; doubles on failed probes, always within
    /// `[base_cooldown, max_cooldown]`.
    cooldown: Duration,
    /// Instant (on the caller's clock) the open circuit starts probing.
    open_until: Duration,
    circuit_opens: u64,
    probes: u64,
}

impl ReplicaHealth {
    /// A healthy breaker that opens after `threshold` consecutive
    /// failures (clamped to at least 1) and then refuses traffic for
    /// `base_cooldown`, doubling up to `max_cooldown` on failed probes.
    pub fn new(threshold: u32, base_cooldown: Duration, max_cooldown: Duration) -> ReplicaHealth {
        let max_cooldown = max_cooldown.max(base_cooldown);
        ReplicaHealth {
            state: HealthState::Healthy,
            consecutive_failures: 0,
            threshold: threshold.max(1),
            base_cooldown,
            max_cooldown,
            cooldown: base_cooldown,
            open_until: Duration::ZERO,
            circuit_opens: 0,
            probes: 0,
        }
    }

    /// The current state (for health merges and invariant checks).
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// How many times the circuit has opened over this breaker's life.
    pub fn circuit_opens(&self) -> u64 {
        self.circuit_opens
    }

    /// How many admissions were granted as probes.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Decides what may be sent to the replica at instant `now`.
    ///
    /// This is where the `CircuitOpen → HalfOpen` transition happens: the
    /// first admission after the cooldown is a probe, and every admission
    /// stays a probe until `on_success`/`on_failure` resolves it.
    pub fn admit(&mut self, now: Duration) -> Admission {
        match self.state {
            HealthState::Healthy | HealthState::Suspect => Admission::Normal,
            HealthState::CircuitOpen => {
                if now >= self.open_until {
                    self.state = HealthState::HalfOpen;
                    self.probes += 1;
                    Admission::Probe
                } else {
                    Admission::Refuse
                }
            }
            HealthState::HalfOpen => {
                self.probes += 1;
                Admission::Probe
            }
        }
    }

    /// A completed, well-formed exchange: fully closes the circuit and
    /// resets the failure streak and cooldown.
    pub fn on_success(&mut self) {
        self.state = HealthState::Healthy;
        self.consecutive_failures = 0;
        self.cooldown = self.base_cooldown;
    }

    /// A failed exchange (connect error, reset, timeout, malformed
    /// response) observed at instant `now`.
    pub fn on_failure(&mut self, now: Duration) {
        match self.state {
            HealthState::Healthy | HealthState::Suspect => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    self.open(now);
                } else {
                    self.state = HealthState::Suspect;
                }
            }
            HealthState::HalfOpen => {
                // Failed probe: back off harder before the next one.
                self.cooldown = (self.cooldown * 2).min(self.max_cooldown);
                self.open(now);
            }
            // No traffic is admitted while open; a straggling failure
            // report (e.g. from an exchange admitted just before the
            // circuit opened) must not extend the cooldown it already
            // charged for.
            HealthState::CircuitOpen => {}
        }
    }

    fn open(&mut self, now: Duration) {
        self.state = HealthState::CircuitOpen;
        self.open_until = now + self.cooldown;
        self.consecutive_failures = 0;
        self.circuit_opens += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    fn breaker() -> ReplicaHealth {
        ReplicaHealth::new(2, 10 * MS, 80 * MS)
    }

    #[test]
    fn failures_open_the_circuit_at_the_threshold() {
        let mut h = breaker();
        h.on_failure(Duration::ZERO);
        assert_eq!(h.state(), HealthState::Suspect);
        assert_eq!(h.admit(Duration::ZERO), Admission::Normal);
        h.on_failure(Duration::ZERO);
        assert_eq!(h.state(), HealthState::CircuitOpen);
        assert_eq!(h.circuit_opens(), 1);
        assert_eq!(h.admit(5 * MS), Admission::Refuse);
    }

    #[test]
    fn cooldown_expiry_admits_a_probe_and_success_closes() {
        let mut h = breaker();
        h.on_failure(Duration::ZERO);
        h.on_failure(Duration::ZERO);
        assert_eq!(h.admit(10 * MS), Admission::Probe);
        assert_eq!(h.state(), HealthState::HalfOpen);
        // Until the probe resolves, further admissions stay probes.
        assert_eq!(h.admit(10 * MS), Admission::Probe);
        h.on_success();
        assert_eq!(h.state(), HealthState::Healthy);
        assert_eq!(h.admit(10 * MS), Admission::Normal);
    }

    #[test]
    fn failed_probe_reopens_with_doubled_capped_cooldown() {
        let mut h = breaker();
        let mut now = Duration::ZERO;
        for round in 0..5 {
            h.on_failure(now);
            if round == 0 {
                h.on_failure(now); // reach the threshold the first time
            }
            assert_eq!(h.state(), HealthState::CircuitOpen);
            // 10, 20, 40, 80, 80 (capped) ms of refusal.
            let expect = (10u64 << round).min(80);
            assert_eq!(
                h.admit(now + Duration::from_millis(expect - 1)),
                Admission::Refuse
            );
            now += Duration::from_millis(expect);
            assert_eq!(h.admit(now), Admission::Probe);
        }
        assert_eq!(h.circuit_opens(), 5);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut h = breaker();
        h.on_failure(Duration::ZERO);
        h.on_success();
        h.on_failure(Duration::ZERO);
        // Two non-consecutive failures: still below threshold.
        assert_eq!(h.state(), HealthState::Suspect);
        assert_eq!(h.circuit_opens(), 0);
    }

    #[test]
    fn straggler_failure_while_open_does_not_extend_the_cooldown() {
        let mut h = breaker();
        h.on_failure(Duration::ZERO);
        h.on_failure(Duration::ZERO);
        h.on_failure(9 * MS); // straggler
        assert_eq!(h.circuit_opens(), 1);
        assert_eq!(h.admit(10 * MS), Admission::Probe);
    }
}

/// Satellite property suite: arbitrary success/failure/admission
/// sequences, at arbitrary (monotone) times, never reach an invalid
/// transition or an inconsistent internal state.
#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Event {
        Admit(u64),
        Success,
        Failure(u64),
    }

    fn event() -> impl Strategy<Value = Event> {
        prop_oneof![
            (0u64..50).prop_map(Event::Admit),
            Just(Event::Success),
            (0u64..50).prop_map(Event::Failure),
        ]
    }

    proptest! {
        #[test]
        fn arbitrary_sequences_never_reach_an_invalid_transition(
            threshold in 1u32..6,
            base_ms in 1u64..40,
            max_ms in 1u64..200,
            events in prop::collection::vec(event(), 0..200),
        ) {
            let base = Duration::from_millis(base_ms);
            let max = Duration::from_millis(max_ms);
            let mut h = ReplicaHealth::new(threshold, base, max);
            let mut now = Duration::ZERO;
            let mut opens_before = 0;
            for ev in events {
                let prev = h.state();
                match ev {
                    Event::Admit(dt) => {
                        now += Duration::from_millis(dt);
                        let adm = h.admit(now);
                        // Admission is consistent with the post-state.
                        match adm {
                            Admission::Normal => prop_assert!(matches!(
                                h.state(),
                                HealthState::Healthy | HealthState::Suspect
                            )),
                            Admission::Probe => {
                                prop_assert_eq!(h.state(), HealthState::HalfOpen);
                            }
                            Admission::Refuse => {
                                prop_assert_eq!(h.state(), HealthState::CircuitOpen);
                            }
                        }
                        // admit never changes state except CircuitOpen → HalfOpen.
                        if h.state() != prev {
                            prop_assert_eq!(prev, HealthState::CircuitOpen);
                            prop_assert_eq!(h.state(), HealthState::HalfOpen);
                        }
                    }
                    Event::Success => {
                        h.on_success();
                        prop_assert_eq!(h.state(), HealthState::Healthy);
                    }
                    Event::Failure(dt) => {
                        now += Duration::from_millis(dt);
                        h.on_failure(now);
                        // Valid transitions out of each state under failure.
                        match prev {
                            HealthState::Healthy | HealthState::Suspect => prop_assert!(matches!(
                                h.state(),
                                HealthState::Suspect | HealthState::CircuitOpen
                            )),
                            HealthState::HalfOpen => {
                                prop_assert_eq!(h.state(), HealthState::CircuitOpen);
                            }
                            HealthState::CircuitOpen => {
                                prop_assert_eq!(h.state(), HealthState::CircuitOpen);
                            }
                        }
                    }
                }
                // Internal consistency after every event.
                prop_assert!(h.cooldown >= h.base_cooldown && h.cooldown <= h.max_cooldown);
                prop_assert!(h.consecutive_failures < h.threshold.max(1));
                if h.state() == HealthState::Healthy && matches!(ev, Event::Success) {
                    prop_assert_eq!(h.consecutive_failures, 0);
                }
                // The opens counter only moves on a Failure event.
                if h.circuit_opens() > opens_before {
                    prop_assert!(matches!(ev, Event::Failure(_)));
                    prop_assert_eq!(h.circuit_opens(), opens_before + 1);
                }
                opens_before = h.circuit_opens();
            }
        }
    }
}
