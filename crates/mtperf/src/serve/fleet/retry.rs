//! Deadline-aware retry budgets with decorrelated-jitter backoff.
//!
//! Every failed-over request carries a [`RetryBudget`]: a bounded number
//! of attempts whose inter-attempt delays follow the decorrelated-jitter
//! schedule (each delay drawn uniformly from `[prev, min(3·prev, cap)]`,
//! seeded from the process `rng` seam so simulations replay it exactly).
//! Two hard rules shape every schedule:
//!
//! * **monotone spacing** — a delay is never shorter than the previous
//!   one, so a flapping replica sees strictly decreasing retry pressure;
//! * **deadline respect** — a delay that would sleep past the request's
//!   remaining `deadline_ms` is not taken at all: the budget reports
//!   exhaustion instead, and the caller answers the client while the
//!   deadline still has meaning.
//!
//! The budget computes delays; the *caller* sleeps (through the `clock`
//! seam). That split keeps this module a pure, property-testable
//! function of (rng stream, remaining deadline).

use std::time::Duration;

use mtperf_detsim::rng::GenericRng;

/// The retry schedule for one request. See the module docs.
#[derive(Debug)]
pub struct RetryBudget {
    attempts_left: u32,
    base: Duration,
    cap: Duration,
    prev: Option<Duration>,
}

impl RetryBudget {
    /// A budget of `attempts` retries, starting near `base` and never
    /// exceeding `cap` (clamped to at least `base`) between attempts.
    pub fn new(attempts: u32, base: Duration, cap: Duration) -> RetryBudget {
        RetryBudget {
            attempts_left: attempts,
            base: base.max(Duration::from_micros(1)),
            cap: cap.max(base).max(Duration::from_micros(1)),
            prev: None,
        }
    }

    /// Retries not yet consumed.
    pub fn attempts_left(&self) -> u32 {
        self.attempts_left
    }

    /// The next backoff delay, or `None` when the budget is exhausted or
    /// the delay would overrun `remaining` (the request's outstanding
    /// deadline; `None` means no deadline). Returning `None` for a
    /// deadline reason also exhausts the budget: once a schedule cannot
    /// fit, no later (longer) delay can either.
    pub fn next_delay(
        &mut self,
        rng: &dyn GenericRng,
        remaining: Option<Duration>,
    ) -> Option<Duration> {
        if self.attempts_left == 0 {
            return None;
        }
        let delay = match self.prev {
            // First delay: base plus up to one base of jitter, so
            // simultaneous retriers decorrelate from the first attempt.
            None => {
                let jitter = rng.next_u64() % (self.base.as_micros().max(1) as u64);
                (self.base + Duration::from_micros(jitter)).min(self.cap)
            }
            // Decorrelated jitter, clamped monotone: uniform in
            // [prev, min(3·prev, cap)]. `prev <= cap` is an invariant,
            // so the interval is never empty.
            Some(prev) => {
                let lo = prev.as_micros() as u64;
                let hi = (prev.saturating_mul(3)).min(self.cap).as_micros() as u64;
                let span = hi.saturating_sub(lo);
                let jitter = if span == 0 {
                    0
                } else {
                    rng.next_u64() % (span + 1)
                };
                Duration::from_micros(lo + jitter)
            }
        };
        if let Some(rem) = remaining {
            if delay > rem {
                self.attempts_left = 0;
                return None;
            }
        }
        self.attempts_left -= 1;
        self.prev = Some(delay);
        Some(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtperf_detsim::rng::SimRng;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn budget_yields_at_most_its_attempts() {
        let rng = SimRng::seed_from_u64(7);
        let mut b = RetryBudget::new(3, MS, 50 * MS);
        let mut n = 0;
        while b.next_delay(&rng, None).is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
        assert_eq!(b.attempts_left(), 0);
    }

    #[test]
    fn deadline_overrun_exhausts_instead_of_oversleeping() {
        let rng = SimRng::seed_from_u64(7);
        let mut b = RetryBudget::new(10, 4 * MS, 50 * MS);
        // Remaining budget smaller than the smallest possible first
        // delay (base): no retry may be scheduled at all.
        assert_eq!(b.next_delay(&rng, Some(3 * MS)), None);
        assert_eq!(b.attempts_left(), 0);
        assert_eq!(b.next_delay(&rng, None), None);
    }

    #[test]
    fn zero_attempt_budget_never_delays() {
        let rng = SimRng::seed_from_u64(7);
        let mut b = RetryBudget::new(0, MS, 50 * MS);
        assert_eq!(b.next_delay(&rng, None), None);
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let schedule = |seed: u64| -> Vec<Duration> {
            let rng = SimRng::seed_from_u64(seed);
            let mut b = RetryBudget::new(5, 2 * MS, 40 * MS);
            std::iter::from_fn(|| b.next_delay(&rng, None)).collect()
        };
        assert_eq!(schedule(11), schedule(11));
        assert_ne!(schedule(11), schedule(12));
    }
}

/// Satellite property suite: the schedule is monotone nondecreasing,
/// bounded by the cap, and never sleeps past the remaining deadline —
/// for every seed, shape, and deadline.
#[cfg(test)]
mod proptests {
    use super::*;
    use mtperf_detsim::rng::SimRng;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn schedule_is_monotone_and_capped(
            seed in 0u64..1_000_000,
            attempts in 0u32..12,
            base_us in 1u64..5_000,
            cap_us in 1u64..50_000,
        ) {
            let rng = SimRng::seed_from_u64(seed);
            let base = Duration::from_micros(base_us);
            let cap = Duration::from_micros(cap_us);
            let mut b = RetryBudget::new(attempts, base, cap);
            let mut prev = Duration::ZERO;
            let mut n = 0u32;
            while let Some(d) = b.next_delay(&rng, None) {
                n += 1;
                prop_assert!(d >= prev, "delay shrank: {prev:?} -> {d:?}");
                prop_assert!(d <= cap.max(base), "delay {d:?} above cap {cap:?}");
                prop_assert!(n == 1 || d <= prev.saturating_mul(3),
                    "delay {d:?} grew past 3x prev {prev:?}");
                prev = d;
            }
            prop_assert_eq!(n, attempts);
        }

        #[test]
        fn no_sleep_past_the_deadline_budget(
            seed in 0u64..1_000_000,
            attempts in 0u32..12,
            base_us in 1u64..5_000,
            cap_us in 1u64..50_000,
            deadline_us in 0u64..20_000,
        ) {
            let rng = SimRng::seed_from_u64(seed);
            let mut b = RetryBudget::new(
                attempts,
                Duration::from_micros(base_us),
                Duration::from_micros(cap_us),
            );
            let mut remaining = Duration::from_micros(deadline_us);
            let mut slept = Duration::ZERO;
            while let Some(d) = b.next_delay(&rng, Some(remaining)) {
                prop_assert!(d <= remaining, "scheduled {d:?} past remaining {remaining:?}");
                remaining -= d;
                slept += d;
            }
            // Total sleep fits the original deadline, and a refusal is
            // terminal: the budget reports exhausted afterwards.
            prop_assert!(slept <= Duration::from_micros(deadline_us));
            prop_assert_eq!(b.attempts_left(), 0);
        }
    }
}
