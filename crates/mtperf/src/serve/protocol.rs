//! Wire protocol of the serving daemon (schema `mtperf-serve-v2`).
//!
//! Requests and responses are newline-delimited JSON objects — one request
//! per line in, one response per line out — over stdin/stdout, a Unix
//! domain socket, or TCP. The same schema is spoken on every transport.
//!
//! # Requests
//!
//! ```json
//! {"op":"predict","id":"r1","rows":[[0.1,0.2, ...]],"deadline_ms":50}
//! {"op":"predict","id":"r2","model":"candidate","version":"v2","rows":[[0.1]]}
//! {"op":"health","id":"h1"}
//! {"op":"load","id":"l1","model":"candidate","version":"v1","path":"cand.json"}
//! {"op":"promote","id":"g1","model":"candidate","path":"cand-v2.json"}
//! {"op":"rollback","id":"b1","model":"candidate"}
//! {"op":"list","id":"ls"}
//! {"op":"reload","id":"g1","path":"new-model.json"}
//! {"op":"save","id":"s1","path":"snapshot.json"}
//! {"op":"shutdown"}
//! ```
//!
//! * `op` — required: `predict`, `health` (alias `ready`), `load`,
//!   `promote`, `rollback`, `list`, `reload`, `save`, or `shutdown`.
//! * `id` — optional string echoed back verbatim, for request/response
//!   correlation on pipelined connections.
//! * `model` — optional tenant name in the model registry. Absent means
//!   the default model, which is exactly the v1 one-daemon-one-model
//!   behavior: every valid `mtperf-serve-v1` request is a valid v2 request
//!   with identical semantics.
//! * `version` — optional version id within a model. For `predict` it
//!   pins a specific resident version (side-by-side what-if comparison);
//!   absent means the promoted (active) version. For `load`/`promote` it
//!   names the version being installed.
//! * `rows` — `predict` only: an array of equal-length rows of finite
//!   numbers, at least as wide as the model's attribute count.
//! * `deadline_ms` — `predict` only: per-request compute budget. When it
//!   expires the request fails fast with `deadline_exceeded` instead of
//!   occupying a worker.
//! * `path` — artifact file for `load`/`promote`/`reload`/`save`.
//!
//! # Responses
//!
//! Every response line carries `proto`, the echoed `id` (or `null`), `ok`,
//! and `degraded`. At most one of `predictions`, `error`, `health`, or
//! `models` is non-null; the others serialize as `null` (the vendored
//! serde emits every field). `degraded: true` means the answer came from a
//! fallback path — the daemon is alive but not at full health (see
//! [`crate::serve::engine`]).
//!
//! Error `kind`s are machine-readable and closed: [`E_BAD_REQUEST`],
//! [`E_OVERLOADED`], [`E_DEADLINE`], [`E_SHUTTING_DOWN`],
//! [`E_RELOAD_FAILED`], [`E_SAVE_FAILED`], [`E_UNKNOWN_MODEL`],
//! [`E_PROMOTE_FAILED`], [`E_ROLLBACK_FAILED`], [`E_INTERNAL`].
//!
//! # v1 → v2 compatibility
//!
//! v2 is a strict superset of v1: the new request fields are optional and
//! default to the v1 meaning, the new response field (`models`) is `null`
//! except on `list`, and the error-kind set only grew. Clients that pin
//! the schema string should accept both [`PROTOCOL`] and [`PROTOCOL_V1`].

use std::io::{self, BufRead};

use serde::{Deserialize, Serialize};

/// Protocol schema identifier, present in every response.
pub const PROTOCOL: &str = "mtperf-serve-v2";

/// The previous schema identifier. Every v1 request parses and behaves
/// identically under v2; clients checking `proto` should accept both.
pub const PROTOCOL_V1: &str = "mtperf-serve-v1";

/// Hard cap on one request line, so a stream missing its newlines cannot
/// buffer unboundedly inside the daemon.
pub const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Hard cap on rows in one `predict` request; batch bigger workloads into
/// several requests so the queue stays a meaningful backpressure signal.
pub const MAX_ROWS_PER_REQUEST: usize = 65_536;

/// The request was syntactically or semantically malformed.
pub const E_BAD_REQUEST: &str = "bad_request";
/// The bounded request queue is full: explicit backpressure, retry later.
pub const E_OVERLOADED: &str = "overloaded";
/// The request's deadline expired before its computation finished.
pub const E_DEADLINE: &str = "deadline_exceeded";
/// The daemon is draining and no longer accepts work.
pub const E_SHUTTING_DOWN: &str = "shutting_down";
/// A hot reload failed validation; the previous model keeps serving.
pub const E_RELOAD_FAILED: &str = "reload_failed";
/// A model snapshot could not be persisted.
pub const E_SAVE_FAILED: &str = "save_failed";
/// The request named a model (or version) the registry does not hold.
pub const E_UNKNOWN_MODEL: &str = "unknown_model";
/// A promote failed validation; the previously active version keeps
/// serving (the registry's last-known-good contract).
pub const E_PROMOTE_FAILED: &str = "promote_failed";
/// A rollback had no previously-active validated version to land on.
pub const E_ROLLBACK_FAILED: &str = "rollback_failed";
/// Every fallback in the degradation ladder failed.
pub const E_INTERNAL: &str = "internal";
/// No replica can serve the request right now (fleet brown-out): every
/// replica holding the model is down, circuit-open, or unreachable. The
/// request was not (fully) attempted; idempotent ops are safe to retry.
pub const E_UNAVAILABLE: &str = "unavailable";

/// One parsed request line. Every field is optional at the parse layer;
/// op-specific validation happens in the session handler so that a missing
/// field yields a `bad_request` *response*, never a dropped connection.
#[derive(Debug, Clone, Deserialize)]
pub struct Request {
    /// Correlation id echoed back in the response.
    pub id: Option<String>,
    /// Operation name.
    pub op: Option<String>,
    /// Prediction input rows.
    pub rows: Option<Vec<Vec<f64>>>,
    /// Per-request compute budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Model path override for `load`/`promote`/`reload`/`save`.
    pub path: Option<String>,
    /// Registry tenant name; absent means the default model (v1 shape).
    pub model: Option<String>,
    /// Version id within the model; absent means the active version.
    pub version: Option<String>,
}

/// Machine-readable failure payload.
#[derive(Debug, Clone, Serialize)]
pub struct ErrorBody {
    /// One of the `E_*` kinds.
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
}

/// Payload of a `health`/`ready` response.
#[derive(Debug, Clone, Serialize)]
pub struct Health {
    /// Accepting new work (model loaded, not draining).
    pub ready: bool,
    /// Serving from a fallback path (e.g. after a poisoned reload).
    pub degraded: bool,
    /// Model file the daemon (re)loads from and saves to.
    pub model: String,
    /// Prediction worker threads.
    pub workers: usize,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Total `predict` requests accepted for parsing.
    pub requests: u64,
    /// Requests refused with `overloaded`.
    pub overloaded: u64,
    /// Requests that missed their deadline.
    pub deadline_misses: u64,
    /// Responses answered via a degraded fallback path.
    pub degraded_responses: u64,
    /// Successful hot reloads.
    pub reloads: u64,
    /// Models resident in the registry.
    pub models: usize,
    /// Model versions resident across all registry entries.
    pub versions: usize,
    /// Prediction-cache hits (answer reused, bit-identical by contract).
    pub cache_hits: u64,
    /// Prediction-cache misses (answer computed fresh).
    pub cache_misses: u64,
    /// Predicts refused because their tenant's queue quota was full.
    pub quota_refusals: u64,
    /// Per-model degraded/last-known-good status, one row per registry
    /// entry. The top-level `degraded` flag is the OR of these rows; a
    /// fleet router merges the rows, not the flag, so one poisoned model
    /// on one replica cannot mark the whole fleet degraded.
    pub per_model: Vec<ModelHealth>,
    /// Drain in progress (SIGTERM or `shutdown` op received).
    pub draining: bool,
}

/// One model's health row inside a [`Health`] payload.
#[derive(Debug, Clone, Serialize)]
pub struct ModelHealth {
    /// Model name in the registry.
    pub name: String,
    /// Serving last known good after a failed promote/reload.
    pub degraded: bool,
    /// Active version id — the last-known-good version while degraded.
    pub active: String,
    /// What the last failed promote/reload reported, when degraded.
    pub last_error: Option<String>,
}

/// One version row of a `list` response.
#[derive(Debug, Clone, Serialize)]
pub struct VersionInfo {
    /// Version id within its model.
    pub id: String,
    /// Artifact path the version validated from.
    pub path: String,
    /// Whether this is the version `predict` routes to by default.
    pub active: bool,
}

/// One model row of a `list` response.
#[derive(Debug, Clone, Serialize)]
pub struct ModelInfo {
    /// Tenant name in the registry.
    pub name: String,
    /// Active (promoted) version id.
    pub active: String,
    /// Whether the last promote/reload of this model failed validation
    /// (serving last known good).
    pub degraded: bool,
    /// Resident validated versions, in load order.
    pub versions: Vec<VersionInfo>,
}

/// One response line.
#[derive(Debug, Clone, Serialize)]
pub struct Response {
    /// Always [`PROTOCOL`].
    pub proto: String,
    /// Echo of the request id.
    pub id: Option<String>,
    /// Whether the operation succeeded.
    pub ok: bool,
    /// Whether a fallback path produced this answer.
    pub degraded: bool,
    /// Predicted CPI per input row (in input order), for `predict`.
    pub predictions: Option<Vec<f64>>,
    /// Failure payload when `ok` is false.
    pub error: Option<ErrorBody>,
    /// Probe payload for `health`/`ready`.
    pub health: Option<Health>,
    /// Registry payload for `list`.
    pub models: Option<Vec<ModelInfo>>,
}

impl Response {
    fn base(id: Option<String>) -> Response {
        Response {
            proto: PROTOCOL.to_string(),
            id,
            ok: true,
            degraded: false,
            predictions: None,
            error: None,
            health: None,
            models: None,
        }
    }

    /// A successful `predict` response.
    pub fn predictions(id: Option<String>, predictions: Vec<f64>, degraded: bool) -> Response {
        Response {
            degraded,
            predictions: Some(predictions),
            ..Response::base(id)
        }
    }

    /// A bare acknowledgement (`reload`, `save`, `shutdown`).
    pub fn ack(id: Option<String>) -> Response {
        Response::base(id)
    }

    /// A failure response of the given kind. Reload and promote failures
    /// mark the response degraded: the daemon keeps serving last known
    /// good, but the caller's deploy did not land.
    pub fn error(id: Option<String>, kind: &str, message: impl Into<String>) -> Response {
        Response {
            ok: false,
            degraded: kind == E_RELOAD_FAILED || kind == E_PROMOTE_FAILED,
            error: Some(ErrorBody {
                kind: kind.to_string(),
                message: message.into(),
            }),
            ..Response::base(id)
        }
    }

    /// A `health`/`ready` response.
    pub fn health(id: Option<String>, health: Health) -> Response {
        let degraded = health.degraded;
        Response {
            degraded,
            health: Some(health),
            ..Response::base(id)
        }
    }

    /// A `list` response carrying the registry inventory.
    pub fn models(id: Option<String>, models: Vec<ModelInfo>) -> Response {
        let degraded = models.iter().any(|m| m.degraded);
        Response {
            degraded,
            models: Some(models),
            ..Response::base(id)
        }
    }

    /// Serializes to one newline-terminated JSON line.
    pub fn to_line(&self) -> String {
        let mut line = serde_json::to_string(self).unwrap_or_else(|_| {
            // The response types above always serialize; this arm guards a
            // future refactor, not a reachable path.
            format!("{{\"proto\":\"{PROTOCOL}\",\"ok\":false}}")
        });
        line.push('\n');
        line
    }
}

/// Outcome of one bounded line read.
#[derive(Debug, PartialEq, Eq)]
pub enum LineRead {
    /// A complete line (without its newline).
    Line(String),
    /// The line exceeded [`MAX_LINE_BYTES`]; its remainder was discarded.
    TooLong,
    /// End of stream.
    Eof,
}

/// Reads one `\n`-terminated line with a hard length bound, retrying
/// transient interruptions. Unlike [`BufRead::read_line`] this cannot be
/// driven into unbounded buffering by a newline-free stream: past
/// [`MAX_LINE_BYTES`] the overflow is drained and reported as
/// [`LineRead::TooLong`].
///
/// # Errors
///
/// Propagates non-transient I/O errors from the underlying reader.
pub fn read_bounded_line<R: BufRead>(reader: &mut R) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // EOF. A trailing unterminated line still counts as a line.
            return Ok(match (overflow, buf.is_empty()) {
                (true, _) => LineRead::TooLong,
                (false, true) => LineRead::Eof,
                (false, false) => LineRead::Line(String::from_utf8_lossy(&buf).into_owned()),
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i + 1);
        if !overflow {
            let payload = &chunk[..newline.unwrap_or(take)];
            if buf.len() + payload.len() > MAX_LINE_BYTES {
                overflow = true;
                buf.clear();
            } else {
                buf.extend_from_slice(payload);
            }
        }
        reader.consume(take);
        if newline.is_some() {
            return Ok(if overflow {
                LineRead::TooLong
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_parses_with_missing_fields() {
        let r: Request = serde_json::from_str(r#"{"op":"health"}"#).unwrap();
        assert_eq!(r.op.as_deref(), Some("health"));
        assert!(r.id.is_none() && r.rows.is_none() && r.deadline_ms.is_none());

        let r: Request =
            serde_json::from_str(r#"{"op":"predict","id":"a","rows":[[1.0,2.0]],"deadline_ms":9}"#)
                .unwrap();
        assert_eq!(r.rows.unwrap(), vec![vec![1.0, 2.0]]);
        assert_eq!(r.deadline_ms, Some(9));
    }

    #[test]
    fn response_lines_are_single_json_lines() {
        let ok = Response::predictions(Some("r1".into()), vec![1.5], false).to_line();
        assert!(ok.ends_with('\n') && !ok.trim_end().contains('\n'));
        assert!(ok.contains("\"proto\":\"mtperf-serve-v2\""), "{ok}");
        assert!(ok.contains("\"id\":\"r1\""), "{ok}");
        assert!(ok.contains("\"ok\":true"), "{ok}");

        let err = Response::error(None, E_OVERLOADED, "queue full").to_line();
        assert!(err.contains("\"ok\":false"), "{err}");
        assert!(err.contains("\"kind\":\"overloaded\""), "{err}");
        assert!(err.contains("\"id\":null"), "{err}");
    }

    #[test]
    fn v1_requests_parse_identically_under_v2() {
        // The exact request shapes of the v1 protocol docs: every one must
        // parse with the new fields defaulting to the v1 meaning.
        for line in [
            r#"{"op":"predict","id":"r1","rows":[[0.1,0.2]],"deadline_ms":50}"#,
            r#"{"op":"health","id":"h1"}"#,
            r#"{"op":"reload","id":"g1","path":"new-model.json"}"#,
            r#"{"op":"save","id":"s1","path":"snapshot.json"}"#,
            r#"{"op":"shutdown"}"#,
        ] {
            let r: Request = serde_json::from_str(line).unwrap();
            assert!(r.model.is_none(), "{line}");
            assert!(r.version.is_none(), "{line}");
        }
        let r: Request =
            serde_json::from_str(r#"{"op":"predict","model":"m","version":"v2","rows":[[1.0]]}"#)
                .unwrap();
        assert_eq!(r.model.as_deref(), Some("m"));
        assert_eq!(r.version.as_deref(), Some("v2"));
    }

    #[test]
    fn reload_and_promote_failures_mark_degraded() {
        let e = Response::error(None, E_RELOAD_FAILED, "poisoned");
        assert!(e.degraded && !e.ok);
        let e = Response::error(None, E_PROMOTE_FAILED, "poisoned");
        assert!(e.degraded && !e.ok);
        let e = Response::error(None, E_BAD_REQUEST, "nope");
        assert!(!e.degraded);
    }

    #[test]
    fn list_response_carries_models_and_degradation() {
        let resp = Response::models(
            Some("ls".into()),
            vec![ModelInfo {
                name: "default".into(),
                active: "v1".into(),
                degraded: true,
                versions: vec![VersionInfo {
                    id: "v1".into(),
                    path: "m.json".into(),
                    active: true,
                }],
            }],
        );
        assert!(resp.degraded, "a degraded model degrades the listing");
        let line = resp.to_line();
        assert!(line.contains("\"models\":["), "{line}");
        assert!(line.contains("\"name\":\"default\""), "{line}");
        assert!(line.contains("\"active\":\"v1\""), "{line}");
    }

    #[test]
    fn bounded_reader_splits_lines() {
        let mut r = BufReader::new(&b"one\ntwo\nthree"[..]);
        assert_eq!(
            read_bounded_line(&mut r).unwrap(),
            LineRead::Line("one".into())
        );
        assert_eq!(
            read_bounded_line(&mut r).unwrap(),
            LineRead::Line("two".into())
        );
        // Unterminated trailing line still delivered, then EOF.
        assert_eq!(
            read_bounded_line(&mut r).unwrap(),
            LineRead::Line("three".into())
        );
        assert_eq!(read_bounded_line(&mut r).unwrap(), LineRead::Eof);
    }

    #[test]
    fn bounded_reader_caps_line_length() {
        // One huge newline-free prefix, then a normal line: the huge line is
        // reported TooLong (not buffered), the next line survives.
        let mut data = vec![b'x'; MAX_LINE_BYTES + 10];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        // A tiny BufReader capacity forces many fill_buf cycles.
        let mut r = BufReader::with_capacity(64, &data[..]);
        assert_eq!(read_bounded_line(&mut r).unwrap(), LineRead::TooLong);
        assert_eq!(
            read_bounded_line(&mut r).unwrap(),
            LineRead::Line("ok".into())
        );
        assert_eq!(read_bounded_line(&mut r).unwrap(), LineRead::Eof);
    }
}

/// Property tests: the protocol edge the daemon exposes to arbitrary
/// clients must never panic, never hang, and never mangle a well-formed
/// line — under any byte content, any buffering boundary, and any faulty
/// transport behavior the simulated stream can script.
#[cfg(test)]
mod proptests {
    use super::*;
    use mtperf_detsim::{Fault, SimStream};
    use proptest::prelude::*;
    use std::io::BufReader;

    /// Any byte value, including invalid-UTF-8 lead/continuation bytes.
    fn arb_byte() -> impl Strategy<Value = u8> {
        #[allow(clippy::cast_possible_truncation)]
        (0u32..256).prop_map(|b| b as u8)
    }

    /// Any byte except `\n` (newlines are the line separator under test;
    /// the vendored proptest has no filter combinator, so remap instead).
    fn arb_line_byte() -> impl Strategy<Value = u8> {
        arb_byte().prop_map(|b| if b == b'\n' { b'x' } else { b })
    }

    /// Lines of arbitrary non-newline bytes (including invalid UTF-8).
    fn arb_lines() -> impl Strategy<Value = Vec<Vec<u8>>> {
        prop::collection::vec(prop::collection::vec(arb_line_byte(), 0..160), 0..16)
    }

    proptest! {
        /// Arbitrary bytes, arbitrary buffer capacity: the reader always
        /// terminates (EOF) and never panics. Invalid UTF-8 is replaced,
        /// not fatal.
        #[test]
        fn arbitrary_bytes_terminate_without_panic(
            data in prop::collection::vec(arb_byte(), 0..2048),
            cap in 1usize..96,
        ) {
            let mut r = BufReader::with_capacity(cap, &data[..]);
            let mut reads = 0usize;
            loop {
                match read_bounded_line(&mut r).unwrap() {
                    LineRead::Eof => break,
                    LineRead::Line(_) | LineRead::TooLong => reads += 1,
                }
                // Each read consumes at least one byte of input, so the
                // loop is bounded by the input length (no-hang property).
                prop_assert!(reads <= data.len() + 1);
            }
        }

        /// Splitting the byte stream at any buffer boundary never changes
        /// what lines come out: reassembly is exact, byte for byte (after
        /// lossy UTF-8 replacement, which is the documented behavior).
        #[test]
        fn split_reads_reassemble_lines_exactly(lines in arb_lines(), cap in 1usize..64) {
            let mut data = Vec::new();
            for l in &lines {
                data.extend_from_slice(l);
                data.push(b'\n');
            }
            let mut r = BufReader::with_capacity(cap, &data[..]);
            for l in &lines {
                let want = String::from_utf8_lossy(l).into_owned();
                match read_bounded_line(&mut r).unwrap() {
                    LineRead::Line(got) => prop_assert_eq!(got, want),
                    other => panic!("expected line, got {other:?}"),
                }
            }
            prop_assert_eq!(read_bounded_line(&mut r).unwrap(), LineRead::Eof);
        }

        /// A transport that delivers the same bytes through scripted
        /// partial reads and transient interruptions yields the same
        /// lines: the reader absorbs `ErrorKind::Interrupted` and short
        /// reads without losing or duplicating data.
        #[test]
        fn faulty_transport_reassembles_lines_exactly(
            lines in arb_lines(),
            shorts in prop::collection::vec(1usize..9, 0..8),
            interrupts in 0usize..4,
        ) {
            let stream = SimStream::new();
            for (i, n) in shorts.iter().enumerate() {
                stream.script_read_fault(Fault::ShortRead(*n));
                if i < interrupts {
                    stream.script_read_fault(Fault::InterruptRead);
                }
            }
            for l in &lines {
                stream.push_input(l);
                stream.push_input(b"\n");
            }
            stream.close_input();
            let mut r = BufReader::with_capacity(32, stream);
            for l in &lines {
                let want = String::from_utf8_lossy(l).into_owned();
                match read_bounded_line(&mut r).unwrap() {
                    LineRead::Line(got) => prop_assert_eq!(got, want),
                    other => panic!("expected line, got {other:?}"),
                }
            }
            prop_assert_eq!(read_bounded_line(&mut r).unwrap(), LineRead::Eof);
        }

        /// Request parsing accepts or rejects arbitrary text without
        /// panicking, and a rejection is an `Err` (which the session layer
        /// turns into a typed `bad_request`), never a crash.
        #[test]
        fn arbitrary_text_parses_or_errors_cleanly(
            bytes in prop::collection::vec(arb_byte(), 0..256),
        ) {
            let text = String::from_utf8_lossy(&bytes);
            let _ = serde_json::from_str::<Request>(&text);
        }

    }

    proptest! {
        // Each case scans >8 MiB; a handful of cases is plenty.
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// An oversized line is reported `TooLong` wherever the newline
        /// falls relative to the cap, and the following line survives
        /// intact — one poison request cannot take later requests with it.
        #[test]
        fn oversized_lines_are_contained(extra in 1usize..64, cap in 512usize..4096) {
            let mut data = vec![b'y'; MAX_LINE_BYTES + extra];
            data.push(b'\n');
            data.extend_from_slice(b"{\"op\":\"health\"}\n");
            let mut r = BufReader::with_capacity(cap, &data[..]);
            prop_assert_eq!(read_bounded_line(&mut r).unwrap(), LineRead::TooLong);
            match read_bounded_line(&mut r).unwrap() {
                LineRead::Line(got) => prop_assert_eq!(got, "{\"op\":\"health\"}"),
                other => panic!("expected line, got {other:?}"),
            }
            prop_assert_eq!(read_bounded_line(&mut r).unwrap(), LineRead::Eof);
        }
    }
}
