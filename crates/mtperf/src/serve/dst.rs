//! Deterministic simulation testing (DST) of the serving stack.
//!
//! One `u64` seed fully determines a simulated serving run: virtual time,
//! the client workload, the transport fault script, and the filesystem
//! fault script are all derived from it through
//! [`mtperf_detsim::derive_seed`]. The harness drives the *production*
//! session code — [`super::router::handle_line`],
//! [`super::router::run_session`], [`super::answer`], the real
//! [`super::registry::Registry`] — on a single logical thread, with the
//! global clock/RNG/fs seams pointed at simulators:
//!
//! * **Wire sessions** feed a scripted [`SimStream`] (short reads,
//!   interrupts, latency, connection drops, oversized lines, invalid
//!   UTF-8) through `run_session`, exercising the bounded-line reader and
//!   the full parse/dispatch path.
//! * **Structured sessions** call `handle_line` directly, interleaving
//!   queue drains and virtual-clock advances between requests to
//!   exercise deadline races and backpressure.
//! * **Multi-connection sessions** simulate the accept loop: 2–4
//!   concurrent connections round-robined under virtual time, each with
//!   its own writer, issuing registry ops (`load`/`promote`/`rollback`/
//!   `list` across the `default`/`alpha`/`beta` tenants, including
//!   poisoned promotes and manifest-save faults) interleaved with
//!   predictions against named models — promote/rollback races with
//!   in-flight predicts, per-tenant overload against the quota'd queue,
//!   and repeated sections that exercise the prediction cache.
//! * **Fault days**: reloads of poisoned artifacts, saves under injected
//!   transient and permanent I/O errors, overload storms against a tiny
//!   queue, drain/restart cycles after `shutdown`, and crash/restart
//!   cycles that drop queued work on the floor.
//!
//! After every session the harness checks the serving invariants: no
//! panic escapes, every response line is well-formed protocol JSON with a
//! known error kind, request/response accounting balances on non-lossy
//! sessions, **responses route to the issuing connection** (multi-conn
//! outputs only ever hold their own connection's request ids), the queue
//! drains fairly (each pop serves the rotation head, so no tenant with
//! queued work is starved), every model's active version stays servable
//! (a rollback can only land on a previously-validated version), **a
//! cached prediction is bit-identical to a fresh one**, and — after every
//! restart — the registry reopens with the promoted version or a clean
//! prior one (**last known good is never lost**).
//!
//! # Replay
//!
//! Everything observable is folded into an event trace (one line per
//! session plus lifecycle events) whose FNV-1a hash is the run's
//! fingerprint: running the same seed twice produces byte-identical
//! traces. Paths under the per-seed working directory are rewritten to a
//! `<sim>` token before hashing, so fingerprints are stable across
//! machines and checked-in regression seeds stay valid anywhere. A
//! failing seed from CI is replayed locally with `mtperf dst --seed
//! <seed>` (or `MTPERF_SIM_SEED=<seed>`), which reproduces the exact
//! schedule, faults, and verdict.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mtperf_detsim::clock::{self, VirtualClock};
use mtperf_detsim::fs as simfs;
use mtperf_detsim::net::{Fault, SimStream};
use mtperf_detsim::rng::{self, derive_seed, GenericRng, SimRng};
use mtperf_detsim::{FaultScript, FsOp};
use mtperf_linalg::parallel::{self, Parallelism};
use mtperf_mtree::{Dataset, M5Params, ModelTree};
use serde::Deserialize;

use super::admission::FairQueue;
use super::cache::PredictionCache;
use super::registry::Registry;
use super::router::{handle_line, run_session};
use super::{answer, protocol, Shared, SharedWriter, Stats, SHUTDOWN};

/// One simulated run's parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Root seed; every stream in the run derives from it.
    pub seed: u64,
    /// Number of client sessions to simulate.
    pub sessions: usize,
}

/// Outcome of one simulated run.
#[derive(Debug)]
pub struct SimReport {
    /// The seed that produced this run (replay key).
    pub seed: u64,
    /// Sessions simulated.
    pub sessions: usize,
    /// Request lines fed to the stack.
    pub requests: u64,
    /// Response lines observed.
    pub responses: u64,
    /// Responses that were typed protocol errors.
    pub typed_errors: u64,
    /// Drain/restart and crash/restart cycles performed.
    pub restarts: u64,
    /// I/O faults the filesystem script injected.
    pub faults_injected: u64,
    /// Sessions that drove ≥2 interleaved connections.
    pub multi_conn_sessions: u64,
    /// Registry operations (`load`/`promote`/`rollback`/`list`) issued.
    pub registry_ops: u64,
    /// Prediction-cache hits observed by the daemon.
    pub cache_hits: u64,
    /// Prediction-cache misses observed by the daemon.
    pub cache_misses: u64,
    /// Per-tenant quota refusals observed by the daemon.
    pub quota_refusals: u64,
    /// Invariant violations (empty = run passed).
    pub violations: Vec<String>,
    /// The deterministic event trace (replay fingerprint source).
    pub trace: Vec<String>,
}

impl SimReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// FNV-1a hash of the event trace: the run's replay fingerprint. Two
    /// runs of the same seed must produce equal hashes (and equal traces)
    /// — including across processes and machines, because sim-dir paths
    /// are sanitized out of the trace.
    pub fn trace_hash(&self) -> u64 {
        let mut joined = String::new();
        for line in &self.trace {
            joined.push_str(line);
            joined.push('\n');
        }
        mtperf_obs::fsio::fnv1a_64(joined.as_bytes())
    }

    /// Writes the event trace to `path` atomically (one line per event,
    /// with a header naming the seed and verdict).
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn write_trace(&self, path: &Path) -> std::io::Result<()> {
        let mut text = format!(
            "# mtperf dst trace seed={} sessions={} hash={:016x} verdict={}\n",
            self.seed,
            self.sessions,
            self.trace_hash(),
            if self.passed() { "pass" } else { "FAIL" }
        );
        for v in &self.violations {
            text.push_str(&format!("# violation: {v}\n"));
        }
        for line in &self.trace {
            text.push_str(line);
            text.push('\n');
        }
        mtperf_obs::fsio::atomic_write(path, text.as_bytes())
    }
}

/// Serializes simulated runs process-wide: the seams are global, so two
/// concurrent simulations would corrupt each other's time and faults.
pub(crate) static SIM_LOCK: Mutex<()> = Mutex::new(());

/// Restores every global seam on scope exit (including panic unwinds), so
/// a failing simulation cannot leave the process on virtual time.
pub(crate) struct SeamGuard {
    saved_parallelism: Parallelism,
}

impl SeamGuard {
    /// Captures the current parallelism setting; the seams themselves are
    /// restored unconditionally on drop.
    pub(crate) fn new() -> SeamGuard {
        SeamGuard {
            saved_parallelism: parallel::global(),
        }
    }
}

impl Drop for SeamGuard {
    fn drop(&mut self) {
        clock::uninstall();
        rng::uninstall();
        simfs::uninstall();
        parallel::set_global(self.saved_parallelism);
        SHUTDOWN.store(false, Ordering::SeqCst);
    }
}

/// Lenient mirror of the response schema, for invariant checking.
#[derive(Debug, Deserialize)]
struct SimResponse {
    proto: Option<String>,
    id: Option<String>,
    ok: Option<bool>,
    error: Option<SimError>,
}

#[derive(Debug, Deserialize)]
struct SimError {
    kind: Option<String>,
}

pub(crate) const KNOWN_KINDS: [&str; 11] = [
    protocol::E_BAD_REQUEST,
    protocol::E_OVERLOADED,
    protocol::E_DEADLINE,
    protocol::E_SHUTTING_DOWN,
    protocol::E_RELOAD_FAILED,
    protocol::E_SAVE_FAILED,
    protocol::E_INTERNAL,
    protocol::E_UNKNOWN_MODEL,
    protocol::E_PROMOTE_FAILED,
    protocol::E_ROLLBACK_FAILED,
    protocol::E_UNAVAILABLE,
];

/// A deterministic tiny model: same shape as the serve unit-test fixture,
/// trained from a fixed arithmetic dataset so every run of every seed
/// serves byte-identical predictions. `slope` distinguishes the default
/// artifact from the alternate one promotes install.
pub(crate) fn sim_model(slope: f64) -> ModelTree {
    let names = vec!["a0".to_string(), "a1".to_string()];
    let rows: Vec<Vec<f64>> = (0..24)
        .map(|r| vec![((r * 7) % 11) as f64, ((r * 3) % 5) as f64])
        .collect();
    let targets: Vec<f64> = rows.iter().map(|r| 1.0 + slope * r[0] - r[1]).collect();
    let data = Dataset::from_rows(names, &rows, &targets).expect("static dataset is valid");
    ModelTree::fit(&data, &M5Params::default().with_min_instances(4)).expect("fit cannot fail")
}

/// Seed-derived working directory: stable across replays of the same seed
/// (no PID, no timestamp). Paths under it are sanitized to `<sim>` in the
/// hashed trace, so the *fingerprint* is additionally stable across
/// machines with different temp directories.
fn sim_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("mtperf-dst-{seed:016x}"))
}

/// Rewrites sim-dir paths to a stable token before hashing.
pub(crate) fn sanitize(raw: &[u8], dir: &str) -> String {
    String::from_utf8_lossy(raw).replace(dir, "<sim>")
}

pub(crate) fn json_path(path: &Path) -> String {
    serde_json::to_string(&path.display().to_string()).unwrap_or_default()
}

/// One request the script generator planned.
enum Op {
    Line(String),
    Shutdown(String),
}

/// The per-session plan: request lines, transport faults, and bookkeeping
/// for the response-accounting invariant.
struct SessionPlan {
    wire: bool,
    ops: Vec<Op>,
    read_faults: Vec<Fault>,
    /// Response lines this session must produce, when countable.
    expected: u64,
    /// Responses may legitimately be lost (connection drop, crash).
    lossy: bool,
    /// Advance virtual time this much between intake and drain (arms
    /// queued-deadline races).
    advance_before_drain: Duration,
    /// Drop queued work instead of draining (kill -9 behavior), then
    /// require a clean restart.
    crash_after: bool,
    /// This session scripted filesystem faults; verify last-known-good
    /// afterwards.
    touched_fs: bool,
}

pub(crate) fn fmt_f64_row(row: &[f64]) -> String {
    let cells: Vec<String> = row.iter().map(|v| format!("{v:?}")).collect();
    format!("[{}]", cells.join(","))
}

/// Generates one single-connection session's plan from the script/rows
/// streams — the protocol-v1 shape (no `model` fields), which must keep
/// passing unchanged under the v2 daemon.
#[allow(clippy::too_many_lines)]
fn plan_session(
    si: usize,
    script: &SimRng,
    rows_rng: &SimRng,
    fs_script: &FaultScript,
    model_path: &Path,
    poison_path: &Path,
) -> SessionPlan {
    let wire = script.gen_bool(0.5);
    let mut plan = SessionPlan {
        wire,
        ops: Vec::new(),
        read_faults: Vec::new(),
        expected: 0,
        lossy: false,
        advance_before_drain: Duration::from_micros(script.next_u64() % 10_000),
        crash_after: script.gen_bool(0.04),
        touched_fs: false,
    };
    let n_ops = 1 + script.gen_index(6);
    for oi in 0..n_ops {
        let id = format!("s{si}-{oi}");
        let roll = script.gen_f64();
        let line = if roll < 0.40 {
            // Well-formed predict, sometimes with a tight deadline.
            let n_rows = 1 + rows_rng.gen_index(4);
            let rows: Vec<String> = (0..n_rows)
                .map(|_| {
                    fmt_f64_row(&[
                        (rows_rng.next_u64() % 110) as f64 / 10.0,
                        (rows_rng.next_u64() % 50) as f64 / 10.0,
                    ])
                })
                .collect();
            let deadline = if script.gen_bool(0.25) {
                format!(",\"deadline_ms\":{}", script.gen_index(3))
            } else {
                String::new()
            };
            format!(
                "{{\"op\":\"predict\",\"id\":\"{id}\",\"rows\":[{}]{deadline}}}",
                rows.join(",")
            )
        } else if roll < 0.52 {
            // Malformed requests: every variant must get a typed error.
            match script.gen_index(7) {
                0 => "this is not json".to_string(),
                1 => format!("{{\"id\":\"{id}\"}}"),
                2 => format!("{{\"op\":\"frobnicate\",\"id\":\"{id}\"}}"),
                3 => format!("{{\"op\":\"predict\",\"id\":\"{id}\",\"rows\":[]}}"),
                4 => format!("{{\"op\":\"predict\",\"id\":\"{id}\",\"rows\":[[1.0]]}}"),
                5 => format!(
                    "{{\"op\":\"predict\",\"id\":\"{id}\",\"rows\":[[1.0,2.0],[1.0,2.0,3.0]]}}"
                ),
                _ => format!("{{\"op\":\"predict\",\"id\":\"{id}\",\"rows\":[[1.0,1e999]]}}"),
            }
        } else if roll < 0.62 {
            format!("{{\"op\":\"health\",\"id\":\"{id}\"}}")
        } else if roll < 0.72 {
            // Overload burst: enough predicts to overflow the tiny queue
            // (and, for one tenant, its quota).
            for k in 0..6 {
                plan.ops.push(Op::Line(format!(
                    "{{\"op\":\"predict\",\"id\":\"{id}b{k}\",\"rows\":[[1.0,2.0]]}}"
                )));
                plan.expected += 1;
            }
            continue;
        } else if roll < 0.80 {
            // Reload: poisoned artifact (typed failure, keeps serving) or
            // the good artifact (heals a degraded registry).
            let target = if script.gen_bool(0.5) {
                poison_path
            } else {
                model_path
            };
            format!(
                "{{\"op\":\"reload\",\"id\":\"{id}\",\"path\":{}}}",
                json_path(target)
            )
        } else if roll < 0.88 {
            // Save, sometimes under injected I/O faults (transient bursts
            // the retry ladder absorbs, or a hard mid-save failure whose
            // torn write must not damage the destination).
            if script.gen_bool(0.5) {
                plan.touched_fs = true;
                let kind = match script.gen_index(3) {
                    0 => std::io::ErrorKind::Interrupted,
                    1 => std::io::ErrorKind::TimedOut,
                    _ => std::io::ErrorKind::PermissionDenied,
                };
                let op = match script.gen_index(3) {
                    0 => FsOp::Write,
                    1 => FsOp::Sync,
                    _ => FsOp::Rename,
                };
                let times = 1 + script.gen_index(6) as u64;
                fs_script.fail_times(Some(op), "model.json", kind, times);
            }
            format!("{{\"op\":\"save\",\"id\":\"{id}\"}}")
        } else if roll < 0.93 {
            String::new() // blank line: skipped, no response
        } else {
            // Drain request; ends the session and triggers a restart.
            plan.ops.push(Op::Shutdown(format!(
                "{{\"op\":\"shutdown\",\"id\":\"{id}\"}}"
            )));
            plan.expected += 1;
            break;
        };
        if !line.trim().is_empty() {
            plan.expected += 1;
        }
        plan.ops.push(Op::Line(line));
    }
    if wire {
        // Transport faults only exist on the wire path.
        if script.gen_bool(0.30) {
            plan.read_faults
                .push(Fault::ShortRead(1 + script.gen_index(16)));
        }
        if script.gen_bool(0.15) {
            plan.read_faults.push(Fault::InterruptRead);
        }
        if script.gen_bool(0.20) {
            plan.read_faults.push(Fault::Latency(Duration::from_millis(
                1 + script.next_u64() % 40,
            )));
        }
        if script.gen_bool(0.05) {
            plan.read_faults.push(Fault::Drop);
            plan.lossy = true;
        }
        if script.gen_bool(0.03) {
            // An oversized line: must come back as one typed bad_request.
            let huge = "x".repeat(protocol::MAX_LINE_BYTES + 1);
            plan.ops.push(Op::Line(huge));
            plan.expected += 1;
        }
    }
    if plan.crash_after {
        plan.lossy = true;
    }
    plan
}

/// One simulated connection of a multi-connection session.
struct ConnPlan {
    ops: Vec<String>,
}

/// Generates a multi-connection session: 2–4 interleaved connections
/// mixing named-model predictions with registry ops. Every op is
/// well-formed JSON with a connection-prefixed id, so response routing is
/// checkable per connection.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn plan_multi_session(
    si: usize,
    script: &SimRng,
    rows_rng: &SimRng,
    fs_script: &FaultScript,
    alt_path: &Path,
    poison_path: &Path,
    registry_ops: &mut u64,
    touched_fs: &mut bool,
) -> (Vec<ConnPlan>, bool) {
    let n_conns = 2 + script.gen_index(3);
    let mut conns = Vec::with_capacity(n_conns);
    for ci in 0..n_conns {
        let mut ops = Vec::new();
        let n_ops = 2 + script.gen_index(4);
        for oi in 0..n_ops {
            let id = format!("s{si}c{ci}-{oi}");
            let roll = script.gen_f64();
            if roll < 0.45 {
                // Predict, against the default model or a named tenant
                // (which may not be resident yet: a typed unknown_model).
                let model_field = match script.gen_index(4) {
                    0 | 1 => String::new(),
                    2 => ",\"model\":\"alpha\"".to_string(),
                    _ => ",\"model\":\"beta\"".to_string(),
                };
                let n_rows = 1 + rows_rng.gen_index(3);
                let rows: Vec<String> = (0..n_rows)
                    .map(|_| {
                        fmt_f64_row(&[
                            (rows_rng.next_u64() % 110) as f64 / 10.0,
                            (rows_rng.next_u64() % 50) as f64 / 10.0,
                        ])
                    })
                    .collect();
                let line = format!(
                    "{{\"op\":\"predict\",\"id\":\"{id}\",\"rows\":[{}]{model_field}}}",
                    rows.join(",")
                );
                if script.gen_bool(0.30) {
                    // Send the identical section twice (distinct ids):
                    // the second may answer from the prediction cache.
                    let dup =
                        line.replace(&format!("\"id\":\"{id}\""), &format!("\"id\":\"{id}d\""));
                    ops.push(line);
                    ops.push(dup);
                } else {
                    ops.push(line);
                }
            } else if roll < 0.55 {
                ops.push(format!("{{\"op\":\"health\",\"id\":\"{id}\"}}"));
            } else if roll < 0.68 {
                *registry_ops += 1;
                let m = if script.gen_bool(0.5) {
                    "alpha"
                } else {
                    "beta"
                };
                let v = 1 + script.gen_index(3);
                ops.push(format!(
                    "{{\"op\":\"load\",\"id\":\"{id}\",\"model\":\"{m}\",\"version\":\"w{v}\",\"path\":{}}}",
                    json_path(alt_path)
                ));
            } else if roll < 0.80 {
                *registry_ops += 1;
                let m = match script.gen_index(3) {
                    0 => "default",
                    1 => "alpha",
                    _ => "beta",
                };
                if script.gen_bool(0.20) {
                    // Fault the manifest save under the promote: the
                    // promote applies in memory but reports a typed
                    // failure, and restart must land on the prior
                    // manifest cleanly.
                    *touched_fs = true;
                    fs_script.fail_times(
                        Some(FsOp::Write),
                        "registry.json",
                        std::io::ErrorKind::PermissionDenied,
                        1 + script.gen_index(2) as u64,
                    );
                }
                let target = if script.gen_bool(0.30) {
                    poison_path
                } else {
                    alt_path
                };
                ops.push(format!(
                    "{{\"op\":\"promote\",\"id\":\"{id}\",\"model\":\"{m}\",\"path\":{}}}",
                    json_path(target)
                ));
            } else if roll < 0.88 {
                *registry_ops += 1;
                let m = match script.gen_index(3) {
                    0 => "default",
                    1 => "alpha",
                    _ => "beta",
                };
                ops.push(format!(
                    "{{\"op\":\"rollback\",\"id\":\"{id}\",\"model\":\"{m}\"}}"
                ));
            } else if roll < 0.95 {
                *registry_ops += 1;
                ops.push(format!("{{\"op\":\"list\",\"id\":\"{id}\"}}"));
            } else {
                ops.push(format!("{{\"op\":\"save\",\"id\":\"{id}\"}}"));
            }
        }
        conns.push(ConnPlan { ops });
    }
    (conns, script.gen_bool(0.03))
}

/// Collects response lines from raw output bytes and validates each
/// against the protocol invariants, appending violations. With
/// `id_prefix`, every response must carry an id with that prefix — the
/// response-routing invariant for multi-connection sessions.
fn audit_responses(
    si: usize,
    raw: &[u8],
    typed_errors: &mut u64,
    violations: &mut Vec<String>,
    id_prefix: Option<&str>,
) -> u64 {
    let text = String::from_utf8_lossy(raw);
    let mut n = 0u64;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        n += 1;
        match serde_json::from_str::<SimResponse>(line) {
            Ok(resp) => {
                if resp.proto.as_deref() != Some(protocol::PROTOCOL) {
                    violations.push(format!("s={si}: response missing proto marker: {line}"));
                }
                if resp.ok.is_none() {
                    violations.push(format!("s={si}: response missing ok field: {line}"));
                }
                if let Some(prefix) = id_prefix {
                    match resp.id.as_deref() {
                        Some(id) if id.starts_with(prefix) => {}
                        other => violations.push(format!(
                            "s={si}: response routed to wrong connection \
                             (want id prefix {prefix:?}, got {other:?}): {line}"
                        )),
                    }
                }
                if let Some(err) = resp.error {
                    *typed_errors += 1;
                    match err.kind.as_deref() {
                        Some(kind) if KNOWN_KINDS.contains(&kind) => {}
                        other => violations.push(format!(
                            "s={si}: error kind {other:?} is not in the closed set"
                        )),
                    }
                }
            }
            Err(e) => violations.push(format!("s={si}: unparsable response line ({e}): {line}")),
        }
    }
    n
}

pub(crate) fn new_shared(reg: Registry) -> Arc<Shared> {
    Arc::new(Shared {
        registry: Mutex::new(reg),
        queue: FairQueue::new(4, 2),
        cache: Mutex::new(PredictionCache::new(8)),
        stats: Stats::default(),
        draining: AtomicBool::new(false),
        workers: 1,
        default_deadline_ms: None,
    })
}

/// Folds a retiring `Shared`'s counters into the report (once per
/// daemon incarnation: before each restart and at run end).
fn absorb_stats(report: &mut SimReport, shared: &Shared) {
    report.cache_hits += shared.stats.cache_hits.load(Ordering::Relaxed);
    report.cache_misses += shared.stats.cache_misses.load(Ordering::Relaxed);
    report.quota_refusals += shared.stats.quota_refusals.load(Ordering::Relaxed);
}

/// Drains every queued job on the calling thread, checking the
/// fair-dequeue invariant: each pop must serve the head of the tenant
/// rotation, so a tenant with queued work is never starved.
fn drain(shared: &Arc<Shared>, si: usize, violations: &mut Vec<String>) {
    loop {
        let rotation = shared.queue.queued_tenants();
        let Some(job) = shared.queue.try_pop() else {
            break;
        };
        if rotation.first().map(String::as_str) != Some(job.tenant.as_str()) {
            violations.push(format!(
                "s={si}: unfair dequeue: served tenant {:?} but rotation head was {:?}",
                job.tenant,
                rotation.first()
            ));
        }
        answer(shared, job);
    }
}

/// Checks the registry's structural invariants: every model's active
/// version must be servable (so promotes and rollbacks can only land on
/// validated versions) and exactly one version is flagged active.
fn check_registry(shared: &Arc<Shared>, si: usize, violations: &mut Vec<String>) {
    let reg = super::lock_registry(shared);
    for m in reg.list() {
        if reg.resolve(Some(&m.name), None).is_err() {
            violations.push(format!(
                "s={si}: model {:?} active version {:?} is not servable",
                m.name, m.active
            ));
        }
        let active_flags = m.versions.iter().filter(|v| v.active).count();
        if active_flags != 1 {
            violations.push(format!(
                "s={si}: model {:?} has {active_flags} versions flagged active",
                m.name
            ));
        }
    }
}

/// Extracts the `"predictions":[...]` payload of the first response line.
fn predictions_payload(raw: &[u8]) -> Option<String> {
    let text = String::from_utf8_lossy(raw);
    let after = text.split("\"predictions\":").nth(1)?;
    Some(after.split(']').next()?.to_string())
}

/// The cache-consistency probe: predict one section twice with a drain in
/// between. The second answer may come from the prediction cache; either
/// way it must be **bit-identical** to the first (fresh) answer.
fn cache_probe(shared: &Arc<Shared>, si: usize, rows_rng: &SimRng, report: &mut SimReport) {
    let row = fmt_f64_row(&[
        (rows_rng.next_u64() % 110) as f64 / 10.0,
        (rows_rng.next_u64() % 50) as f64 / 10.0,
    ]);
    let hits_before = shared.stats.cache_hits.load(Ordering::Relaxed);
    let mut payloads = Vec::new();
    for tag in ["a", "b"] {
        let sink = Arc::new(Mutex::new(Vec::<u8>::new()));
        let writer: SharedWriter = Arc::new(Mutex::new(Box::new(VecWriter(Arc::clone(&sink)))));
        let line = format!("{{\"op\":\"predict\",\"id\":\"s{si}-probe-{tag}\",\"rows\":[{row}]}}");
        let _ = handle_line(shared, &line, &writer);
        drain(shared, si, &mut report.violations);
        let raw = sink.lock().unwrap_or_else(|e| e.into_inner()).clone();
        report.requests += 1;
        report.responses += audit_responses(
            si,
            &raw,
            &mut report.typed_errors,
            &mut report.violations,
            None,
        );
        payloads.push(predictions_payload(&raw));
    }
    if payloads[0].is_none() || payloads[0] != payloads[1] {
        report.violations.push(format!(
            "s={si}: cache probe not bit-identical: {:?} vs {:?}",
            payloads[0], payloads[1]
        ));
    }
    let hit = shared.stats.cache_hits.load(Ordering::Relaxed) > hits_before;
    report
        .trace
        .push(format!("s={si} probe row={row} cache_hit={hit}"));
}

pub(crate) struct VecWriter(pub(crate) Arc<Mutex<Vec<u8>>>);
impl std::io::Write for VecWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs one seeded simulation of the serving stack. See the module docs.
///
/// Process-global seams (clock, RNG, filesystem faults) are installed for
/// the duration and restored on exit; concurrent calls serialize on an
/// internal lock.
#[allow(clippy::too_many_lines)]
pub fn run_sim(cfg: &SimConfig) -> SimReport {
    let _exclusive = SIM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let saved_parallelism = parallel::global();
    let mut report = SimReport {
        seed: cfg.seed,
        sessions: cfg.sessions,
        requests: 0,
        responses: 0,
        typed_errors: 0,
        restarts: 0,
        faults_injected: 0,
        multi_conn_sessions: 0,
        registry_ops: 0,
        cache_hits: 0,
        cache_misses: 0,
        quota_refusals: 0,
        violations: Vec::new(),
        trace: Vec::new(),
    };

    // Working directory and artifacts, reset to a clean slate so a replay
    // starts from the same filesystem state.
    let dir = sim_dir(cfg.seed);
    let dir_str = dir.display().to_string();
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        report
            .violations
            .push(format!("setup: cannot create {}: {e}", dir.display()));
        return report;
    }
    let model_path = dir.join("model.json");
    let alt_path = dir.join("alt.json");
    let poison_path = dir.join("poison.json");
    let manifest_path = dir.join("registry.json");
    let tree = sim_model(2.0);
    if let Err(e) = tree.save(&model_path) {
        report
            .violations
            .push(format!("setup: cannot save model: {e}"));
        return report;
    }
    if let Err(e) = sim_model(-3.0).save(&alt_path) {
        report
            .violations
            .push(format!("setup: cannot save alt model: {e}"));
        return report;
    }
    if let Err(e) = std::fs::write(&poison_path, b"{ definitely not a model }") {
        report
            .violations
            .push(format!("setup: cannot write poison artifact: {e}"));
        return report;
    }

    // Install the simulators. Parallelism off: a single logical thread is
    // what makes the schedule (and therefore the trace) deterministic.
    let vclock = VirtualClock::auto();
    let fs_script = Arc::new(FaultScript::new());
    clock::install(vclock.clone());
    rng::install(Arc::new(SimRng::seed_from_u64(derive_seed(
        cfg.seed, "jitter",
    ))));
    simfs::install(Arc::clone(&fs_script) as Arc<dyn simfs::FaultHook>);
    parallel::set_global(Parallelism::Off);
    SHUTDOWN.store(false, Ordering::SeqCst);
    let _restore = SeamGuard { saved_parallelism };

    let script = SimRng::seed_from_u64(derive_seed(cfg.seed, "script"));
    let rows_rng = SimRng::seed_from_u64(derive_seed(cfg.seed, "rows"));

    let reg = match Registry::open(&model_path, Some(&manifest_path)) {
        Ok(r) => r,
        Err(e) => {
            report
                .violations
                .push(format!("setup: initial open failed: {e}"));
            return report;
        }
    };
    let mut shared = new_shared(reg);
    report.trace.push(format!(
        "run seed={} sessions={} model=<sim>/model.json",
        cfg.seed, cfg.sessions,
    ));

    for si in 0..cfg.sessions {
        // Session mode: single-connection wire/struct (the protocol-v1
        // shapes) or multi-connection (the simulated accept loop).
        let multi = script.gen_bool(0.30);
        let mut saw_shutdown = false;
        let lossy;
        let crashed;
        let mut touched_fs = false;
        let n_resp;
        let expected;
        let out_hash;
        let mode;
        let n_ops;
        // Extra trace detail for multi-connection sessions (connection
        // and promote counts let a replayed trace be audited for the
        // "promote raced in-flight predicts" scenario by inspection).
        let mut mode_detail = String::new();

        if multi {
            report.multi_conn_sessions += 1;
            mode = "multi";
            let (conns, crash) = plan_multi_session(
                si,
                &script,
                &rows_rng,
                &fs_script,
                &alt_path,
                &poison_path,
                &mut report.registry_ops,
                &mut touched_fs,
            );
            crashed = crash;
            lossy = crash;
            let promotes = conns
                .iter()
                .flat_map(|c| &c.ops)
                .filter(|l| l.contains("\"op\":\"promote\""))
                .count();
            mode_detail = format!(" conns={} promotes={promotes}", conns.len());
            let total_ops: u64 = conns.iter().map(|c| c.ops.len() as u64).sum();
            expected = total_ops;
            n_ops = total_ops as usize;
            report.requests += total_ops;
            let sinks: Vec<Arc<Mutex<Vec<u8>>>> = (0..conns.len())
                .map(|_| Arc::new(Mutex::new(Vec::new())))
                .collect();
            let writers: Vec<SharedWriter> = sinks
                .iter()
                .map(|s| {
                    Arc::new(Mutex::new(
                        Box::new(VecWriter(Arc::clone(s))) as Box<dyn std::io::Write + Send>
                    ))
                })
                .collect();
            let shared_ref = Arc::clone(&shared);
            let mut cursors = vec![0usize; conns.len()];
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // The simulated accept loop: round-robin over live
                // connections, with scripted skips, partial drains, and
                // clock movement between ops — registry ops on one
                // connection race predictions in flight on the others.
                loop {
                    let mut progressed = false;
                    for (ci, conn) in conns.iter().enumerate() {
                        if cursors[ci] >= conn.ops.len() {
                            continue;
                        }
                        if script.gen_bool(0.20) {
                            continue; // this connection stalls one round
                        }
                        if script.gen_bool(0.35) {
                            if let Some(job) = shared_ref.queue.try_pop() {
                                answer(&shared_ref, job);
                            }
                        }
                        if script.gen_bool(0.25) {
                            clock::sleep(Duration::from_micros(script.next_u64() % 3000));
                        }
                        let _ = handle_line(&shared_ref, &conn.ops[cursors[ci]], &writers[ci]);
                        cursors[ci] += 1;
                        progressed = true;
                    }
                    if !progressed && cursors.iter().zip(&conns).all(|(c, p)| *c >= p.ops.len()) {
                        break;
                    }
                }
            }));
            if outcome.is_err() {
                report
                    .violations
                    .push(format!("s={si}: panic escaped multi-conn session"));
            }
            if crashed {
                while shared.queue.try_pop().is_some() {}
            } else {
                drain(&shared, si, &mut report.violations);
            }
            let mut total_resp = 0u64;
            let mut all_out = Vec::new();
            for (ci, sink) in sinks.iter().enumerate() {
                let raw = sink.lock().unwrap_or_else(|e| e.into_inner()).clone();
                let prefix = format!("s{si}c{ci}-");
                total_resp += audit_responses(
                    si,
                    &raw,
                    &mut report.typed_errors,
                    &mut report.violations,
                    Some(&prefix),
                );
                all_out.extend_from_slice(&raw);
            }
            n_resp = total_resp;
            out_hash = mtperf_obs::fsio::fnv1a_64(sanitize(&all_out, &dir_str).as_bytes());
        } else {
            let plan = plan_session(
                si,
                &script,
                &rows_rng,
                &fs_script,
                &model_path,
                &poison_path,
            );
            mode = if plan.wire { "wire" } else { "struct" };
            crashed = plan.crash_after;
            lossy = plan.lossy;
            touched_fs = plan.touched_fs;
            expected = plan.expected;
            n_ops = plan.ops.len();
            report.requests += plan.expected;
            let shared_ref = Arc::clone(&shared);

            let raw_out: Vec<u8>;
            if plan.wire {
                let stream = SimStream::new();
                for f in &plan.read_faults {
                    stream.script_read_fault(f.clone());
                }
                for op in &plan.ops {
                    let line = match op {
                        Op::Line(l) | Op::Shutdown(l) => l,
                    };
                    stream.push_input(line.as_bytes());
                    stream.push_input(b"\n");
                }
                stream.close_input();
                let (reader, writer_half) = stream.split();
                let writer: SharedWriter = Arc::new(Mutex::new(Box::new(writer_half)));
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_session(&shared_ref, std::io::BufReader::new(reader), writer);
                }));
                if outcome.is_err() {
                    report
                        .violations
                        .push(format!("s={si}: panic escaped run_session"));
                }
                saw_shutdown = SHUTDOWN.load(Ordering::SeqCst);
                clock::sleep(plan.advance_before_drain);
                if plan.crash_after {
                    // Simulated kill -9: queued work is lost with the process.
                    while shared.queue.try_pop().is_some() {}
                } else {
                    drain(&shared, si, &mut report.violations);
                }
                raw_out = stream.output();
            } else {
                let sink = Arc::new(Mutex::new(Vec::<u8>::new()));
                let writer: SharedWriter =
                    Arc::new(Mutex::new(Box::new(VecWriter(Arc::clone(&sink)))));
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    for op in &plan.ops {
                        // Interleave intake with partial drains and clock
                        // movement: the deadline-race and backpressure
                        // scheduler of the structured mode.
                        if script.gen_bool(0.3) {
                            if let Some(job) = shared_ref.queue.try_pop() {
                                answer(&shared_ref, job);
                            }
                        }
                        if script.gen_bool(0.3) {
                            clock::sleep(Duration::from_micros(script.next_u64() % 3000));
                        }
                        match op {
                            Op::Line(l) => {
                                if l.trim().is_empty() {
                                    continue;
                                }
                                let _ = handle_line(&shared_ref, l, &writer);
                            }
                            Op::Shutdown(l) => {
                                let _ = handle_line(&shared_ref, l, &writer);
                                SHUTDOWN.store(true, Ordering::SeqCst);
                                break;
                            }
                        }
                    }
                }));
                if outcome.is_err() {
                    report
                        .violations
                        .push(format!("s={si}: panic escaped handle_line"));
                }
                saw_shutdown = saw_shutdown || SHUTDOWN.load(Ordering::SeqCst);
                clock::sleep(plan.advance_before_drain);
                if plan.crash_after {
                    while shared.queue.try_pop().is_some() {}
                } else {
                    drain(&shared, si, &mut report.violations);
                }
                raw_out = sink.lock().unwrap_or_else(|e| e.into_inner()).clone();
            }

            n_resp = audit_responses(
                si,
                &raw_out,
                &mut report.typed_errors,
                &mut report.violations,
                None,
            );
            out_hash = mtperf_obs::fsio::fnv1a_64(sanitize(&raw_out, &dir_str).as_bytes());
        }

        report.responses += n_resp;
        if !lossy && !saw_shutdown && n_resp != expected {
            report.violations.push(format!(
                "s={si}: expected {expected} responses, observed {n_resp}"
            ));
        }
        if saw_shutdown && !lossy && n_resp > expected {
            report.violations.push(format!(
                "s={si}: more responses ({n_resp}) than requests ({expected})"
            ));
        }
        if shared.queue.depth() != 0 && !crashed {
            report.violations.push(format!(
                "s={si}: queue not drained ({})",
                shared.queue.depth()
            ));
        }
        check_registry(&shared, si, &mut report.violations);

        let degraded = super::lock_registry(&shared).degraded();
        report.trace.push(format!(
            "s={si} mode={mode}{mode_detail} ops={n_ops} expected={expected} lossy={lossy} shutdown={saw_shutdown} crash={crashed} out={n_resp} out_hash={out_hash:016x} t_us={} deg={degraded} faults={}",
            clock::now().as_micros(),
            fs_script.injected(),
        ));

        // The cache-consistency probe: occasionally re-ask the same
        // section twice and require bit-identical answers.
        if !saw_shutdown && script.gen_bool(0.20) {
            cache_probe(&shared, si, &rows_rng, &mut report);
        }

        // Drain/restart (after a shutdown op) and crash/restart cycles:
        // the registry on disk must reopen with the promoted version or a
        // clean prior one — the last-known-good invariant. Scripted fs
        // faults are cleared first: a restart is a fresh process whose
        // I/O works.
        if saw_shutdown || crashed || touched_fs {
            if saw_shutdown {
                shared.draining.store(true, Ordering::SeqCst);
                shared.queue.close();
                drain(&shared, si, &mut report.violations);
                if shared
                    .queue
                    .try_push("default", sim_probe_job(&shared))
                    .is_ok()
                {
                    report
                        .violations
                        .push(format!("s={si}: closed queue accepted work"));
                }
            }
            fs_script.clear();
            absorb_stats(&mut report, &shared);
            match Registry::open(&model_path, Some(&manifest_path)) {
                Ok(fresh) => {
                    shared = new_shared(fresh);
                    report.restarts += 1;
                    report.trace.push(format!(
                        "s={si} restart ok t_us={}",
                        clock::now().as_micros()
                    ));
                }
                Err(e) => {
                    report.violations.push(format!(
                        "s={si}: LAST KNOWN GOOD LOST — restart open failed: {e}"
                    ));
                    report.trace.push(format!("s={si} restart FAILED: {e}"));
                    // Re-seed the artifacts so the rest of the run still
                    // exercises the stack (the violation is recorded).
                    let _ = std::fs::remove_file(&manifest_path);
                    let _ = tree.save(&model_path);
                    if let Ok(fresh) = Registry::open(&model_path, Some(&manifest_path)) {
                        shared = new_shared(fresh);
                    }
                }
            }
            SHUTDOWN.store(false, Ordering::SeqCst);
        }
    }

    // Final drain must always exit cleanly.
    shared.draining.store(true, Ordering::SeqCst);
    shared.queue.close();
    drain(&shared, usize::MAX, &mut report.violations);
    if shared.queue.depth() != 0 {
        report
            .violations
            .push("final drain left queued work".into());
    }
    absorb_stats(&mut report, &shared);
    fs_script.clear();
    if let Err(e) = Registry::open(&model_path, Some(&manifest_path)) {
        report
            .violations
            .push(format!("final registry unservable: {e}"));
    }
    report.faults_injected = fs_script.injected();
    report.trace.push(format!(
        "end t_us={} requests={} responses={} typed_errors={} restarts={} faults={} multi={} regops={} cache_hits={} cache_misses={} quota={}",
        clock::now().as_micros(),
        report.requests,
        report.responses,
        report.typed_errors,
        report.restarts,
        report.faults_injected,
        report.multi_conn_sessions,
        report.registry_ops,
        report.cache_hits,
        report.cache_misses,
        report.quota_refusals,
    ));

    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// A throwaway job used to probe that a closed queue refuses work.
fn sim_probe_job(shared: &Arc<Shared>) -> super::Job {
    struct NullWriter;
    impl std::io::Write for NullWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let resolved = super::lock_registry(shared)
        .resolve(None, None)
        .expect("default model is resident");
    super::Job {
        id: Some("probe".into()),
        tenant: "default".into(),
        version: resolved.version,
        model: resolved.model,
        model_degraded: resolved.degraded,
        raw_rows: None,
        rows: mtperf_linalg::Matrix::from_rows(&[&[0.0, 0.0][..]]).expect("static row"),
        token: mtperf_linalg::CancelToken::new(),
        writer: Arc::new(Mutex::new(Box::new(NullWriter))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sim_passes_and_replays_bit_identically() {
        let cfg = SimConfig {
            seed: 2007,
            sessions: 40,
        };
        let a = run_sim(&cfg);
        assert!(a.passed(), "violations: {:?}", a.violations);
        assert!(a.requests > 0 && a.responses > 0);
        let b = run_sim(&cfg);
        assert_eq!(a.trace, b.trace, "same seed must replay byte-identically");
        assert_eq!(a.trace_hash(), b.trace_hash());
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn multi_connection_and_registry_coverage_shows_up() {
        // A modest run must already exercise the new surfaces: several
        // multi-connection sessions and a healthy count of registry ops.
        let r = run_sim(&SimConfig {
            seed: 2026,
            sessions: 60,
        });
        assert!(r.passed(), "violations: {:?}", r.violations);
        assert!(r.multi_conn_sessions > 0, "no multi-connection sessions");
        assert!(r.registry_ops > 0, "no registry ops generated");
        assert!(
            r.cache_hits + r.cache_misses > 0,
            "prediction cache never consulted"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_sim(&SimConfig {
            seed: 1,
            sessions: 12,
        });
        let b = run_sim(&SimConfig {
            seed: 2,
            sessions: 12,
        });
        assert!(a.passed(), "{:?}", a.violations);
        assert!(b.passed(), "{:?}", b.violations);
        assert_ne!(a.trace_hash(), b.trace_hash());
    }

    #[test]
    fn seams_are_restored_after_a_sim() {
        let _ = run_sim(&SimConfig {
            seed: 3,
            sessions: 4,
        });
        // Real time flows again.
        let t0 = clock::now();
        std::thread::sleep(Duration::from_millis(2));
        assert!(clock::now() > t0, "clock seam not restored");
        assert!(!SHUTDOWN.load(Ordering::SeqCst));
    }
}
