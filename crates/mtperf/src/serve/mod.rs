//! `mtperf serve` — a resilient long-running prediction daemon.
//!
//! Speaks the newline-delimited JSON protocol of [`protocol`]
//! (`mtperf-serve-v1`) over stdin/stdout and, with `--socket <path>`, a
//! Unix domain socket. Robustness properties, each pinned by tests:
//!
//! * **Bounded queue, explicit backpressure** — parsing threads never
//!   block on a full queue; the client hears `overloaded` immediately and
//!   decides itself whether to retry.
//! * **Per-request deadlines** — `deadline_ms` arms a cooperative
//!   [`CancelToken`] consulted while queued and between row blocks inside
//!   the compiled batch path, so an expensive request returns
//!   `deadline_exceeded` instead of hanging a worker.
//! * **Graceful degradation** — a poisoned hot reload keeps the
//!   last-known-good model serving; a compiled-path failure falls back to
//!   the interpreted walk. Both mark responses `degraded: true`
//!   (see [`engine`]).
//! * **Crash-safe persistence** — `save` snapshots the served model
//!   through the atomic temp-file/fsync/rename protocol, so `kill -9` at
//!   any instant leaves the previous file intact.
//! * **Drain-then-exit** — SIGTERM, a `shutdown` request, or EOF on the
//!   primary stdio transport stop intake, finish queued work, and exit 0.
//!
//! Startup failures (missing/corrupt model, unbindable socket) exit with
//! code 69 (`EX_UNAVAILABLE`) so supervisors can tell "cannot start" from
//! "bad usage".

pub mod dst;
pub mod engine;
pub mod protocol;
pub mod queue;

use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use mtperf_linalg::{parallel, CancelToken, Matrix};

use crate::cli::Args;
use crate::errors::CliError;
use protocol::{LineRead, Request, Response};
use queue::{BoundedQueue, PushError};

/// Drain requested (SIGTERM from the binary's handler, a `shutdown`
/// request, or EOF on the primary transport). The main loop polls this.
pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const DEFAULT_WORKERS: usize = 2;
const DEFAULT_QUEUE_DEPTH: usize = 64;
const POLL_MS: u64 = 25;

/// Parsed configuration of one `mtperf serve` run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Model file to serve (reload/save default target).
    pub model: PathBuf,
    /// Unix-domain socket to listen on, if any.
    pub socket: Option<PathBuf>,
    /// Whether to run a session over stdin/stdout (default unless
    /// `--socket` is given without `--stdio`).
    pub stdio: bool,
    /// Prediction worker threads.
    pub workers: usize,
    /// Bounded queue capacity (backpressure threshold).
    pub queue_depth: usize,
    /// Default per-request deadline applied when a request carries none.
    pub default_deadline_ms: Option<u64>,
}

impl ServeConfig {
    /// Builds the configuration from parsed CLI arguments.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] on a missing model path or out-of-range
    /// numeric option.
    pub fn from_args(args: &Args) -> Result<ServeConfig, CliError> {
        let model = PathBuf::from(args.require("model")?);
        let socket = args.options.get("socket").map(PathBuf::from);
        let workers: usize = args.numeric("workers", DEFAULT_WORKERS)?;
        if workers == 0 {
            return Err(CliError::Usage(
                "option --workers must be at least 1".to_string(),
            ));
        }
        let queue_depth: usize = args.numeric("queue-depth", DEFAULT_QUEUE_DEPTH)?;
        if queue_depth == 0 {
            return Err(CliError::Usage(
                "option --queue-depth must be at least 1".to_string(),
            ));
        }
        let default_deadline_ms = match args.options.get("deadline-ms") {
            None => None,
            Some(v) => Some(v.parse::<u64>().map_err(|_| {
                CliError::Usage(format!("option --deadline-ms has invalid value {v:?}"))
            })?),
        };
        let stdio = socket.is_none() || args.flag("stdio");
        Ok(ServeConfig {
            model,
            socket,
            stdio,
            workers,
            queue_depth,
            default_deadline_ms,
        })
    }
}

/// A connection's shared, lock-guarded response writer. Workers and the
/// session's own parse loop interleave complete lines through it.
type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    overloaded: AtomicU64,
    deadline_misses: AtomicU64,
    degraded_responses: AtomicU64,
    reloads: AtomicU64,
    internal_errors: AtomicU64,
}

/// One queued prediction.
struct Job {
    id: Option<String>,
    rows: Matrix,
    token: CancelToken,
    writer: SharedWriter,
}

/// State shared by every session, worker, and the drain loop.
struct Shared {
    engine: Mutex<engine::Engine>,
    queue: BoundedQueue<Job>,
    stats: Stats,
    draining: AtomicBool,
    workers: usize,
    default_deadline_ms: Option<u64>,
}

fn send(writer: &SharedWriter, resp: &Response) {
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    // A vanished peer is not a daemon error; the session just winds down.
    let _ = w.write_all(resp.to_line().as_bytes());
    let _ = w.flush();
}

enum SessionControl {
    Continue,
    Shutdown,
}

fn lock_engine(shared: &Shared) -> std::sync::MutexGuard<'_, engine::Engine> {
    shared.engine.lock().unwrap_or_else(|e| e.into_inner())
}

fn handle_predict(shared: &Arc<Shared>, req: Request, writer: &SharedWriter) {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    mtperf_obs::add("serve.requests", 1);
    let id = req.id;
    if shared.draining.load(Ordering::SeqCst) {
        send(
            writer,
            &Response::error(id, protocol::E_SHUTTING_DOWN, "daemon is draining"),
        );
        return;
    }
    let rows = match req.rows {
        Some(rows) if !rows.is_empty() => rows,
        _ => {
            send(
                writer,
                &Response::error(
                    id,
                    protocol::E_BAD_REQUEST,
                    "predict requires a non-empty rows array",
                ),
            );
            return;
        }
    };
    if rows.len() > protocol::MAX_ROWS_PER_REQUEST {
        send(
            writer,
            &Response::error(
                id,
                protocol::E_BAD_REQUEST,
                format!(
                    "request has {} rows, limit is {}",
                    rows.len(),
                    protocol::MAX_ROWS_PER_REQUEST
                ),
            ),
        );
        return;
    }
    let n_attrs = lock_engine(shared).snapshot().0.n_attrs();
    let width = rows[0].len();
    if width < n_attrs {
        send(
            writer,
            &Response::error(
                id,
                protocol::E_BAD_REQUEST,
                format!("rows have {width} values, model expects {n_attrs}"),
            ),
        );
        return;
    }
    if rows.iter().any(|r| r.len() != width) {
        send(
            writer,
            &Response::error(id, protocol::E_BAD_REQUEST, "rows have unequal lengths"),
        );
        return;
    }
    if rows.iter().flatten().any(|v| !v.is_finite()) {
        send(
            writer,
            &Response::error(
                id,
                protocol::E_BAD_REQUEST,
                "rows contain non-finite values",
            ),
        );
        return;
    }
    let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    let matrix = match Matrix::from_rows(&refs) {
        Ok(m) => m,
        Err(e) => {
            send(
                writer,
                &Response::error(id, protocol::E_BAD_REQUEST, e.to_string()),
            );
            return;
        }
    };
    let token = match req.deadline_ms.or(shared.default_deadline_ms) {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::new(),
    };
    let job = Job {
        id: id.clone(),
        rows: matrix,
        token,
        writer: Arc::clone(writer),
    };
    match shared.queue.try_push(job) {
        Ok(depth) => mtperf_obs::gauge("serve.queue_depth", depth as f64),
        Err(PushError::Full) => {
            shared.stats.overloaded.fetch_add(1, Ordering::Relaxed);
            mtperf_obs::add("serve.overloaded", 1);
            send(
                writer,
                &Response::error(
                    id,
                    protocol::E_OVERLOADED,
                    format!("queue full ({} requests)", shared.queue.capacity()),
                ),
            );
        }
        Err(PushError::Closed) => {
            send(
                writer,
                &Response::error(id, protocol::E_SHUTTING_DOWN, "daemon is draining"),
            );
        }
    }
}

fn health_payload(shared: &Shared) -> protocol::Health {
    let (model_path, degraded) = {
        let eng = lock_engine(shared);
        (eng.model_path().display().to_string(), eng.degraded())
    };
    let draining = shared.draining.load(Ordering::SeqCst);
    protocol::Health {
        ready: !draining,
        degraded,
        model: model_path,
        workers: shared.workers,
        queue_depth: shared.queue.depth(),
        queue_capacity: shared.queue.capacity(),
        requests: shared.stats.requests.load(Ordering::Relaxed),
        overloaded: shared.stats.overloaded.load(Ordering::Relaxed),
        deadline_misses: shared.stats.deadline_misses.load(Ordering::Relaxed),
        degraded_responses: shared.stats.degraded_responses.load(Ordering::Relaxed),
        reloads: shared.stats.reloads.load(Ordering::Relaxed),
        draining,
    }
}

fn handle_line(shared: &Arc<Shared>, line: &str, writer: &SharedWriter) -> SessionControl {
    let req: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            send(
                writer,
                &Response::error(
                    None,
                    protocol::E_BAD_REQUEST,
                    format!("unparsable request: {e}"),
                ),
            );
            return SessionControl::Continue;
        }
    };
    match req.op.as_deref() {
        Some("predict") => handle_predict(shared, req, writer),
        Some("health" | "ready") => {
            send(writer, &Response::health(req.id, health_payload(shared)));
        }
        Some("reload") => {
            let path = req.path.as_ref().map(PathBuf::from);
            let result = lock_engine(shared).reload(path.as_deref());
            match result {
                Ok(()) => {
                    shared.stats.reloads.fetch_add(1, Ordering::Relaxed);
                    mtperf_obs::add("serve.reloads", 1);
                    send(writer, &Response::ack(req.id));
                }
                Err(e) => {
                    mtperf_obs::add("serve.reload_failures", 1);
                    send(
                        writer,
                        &Response::error(req.id, protocol::E_RELOAD_FAILED, e),
                    );
                }
            }
        }
        Some("save") => {
            let path = req.path.as_ref().map(PathBuf::from);
            let result = lock_engine(shared).save(path.as_deref());
            match result {
                Ok(_) => send(writer, &Response::ack(req.id)),
                Err(e) => send(writer, &Response::error(req.id, protocol::E_SAVE_FAILED, e)),
            }
        }
        Some("shutdown") => {
            send(writer, &Response::ack(req.id));
            return SessionControl::Shutdown;
        }
        Some(other) => send(
            writer,
            &Response::error(
                req.id,
                protocol::E_BAD_REQUEST,
                format!("unknown op {other:?}"),
            ),
        ),
        None => send(
            writer,
            &Response::error(req.id, protocol::E_BAD_REQUEST, "request is missing op"),
        ),
    }
    SessionControl::Continue
}

/// Drains one connection: reads bounded lines, dispatches, stops at EOF
/// or after a `shutdown` request (which also flags the daemon to drain).
fn run_session<R: BufRead>(shared: &Arc<Shared>, mut reader: R, writer: SharedWriter) {
    loop {
        match protocol::read_bounded_line(&mut reader) {
            Ok(LineRead::Eof) => return,
            Ok(LineRead::TooLong) => send(
                &writer,
                &Response::error(
                    None,
                    protocol::E_BAD_REQUEST,
                    format!("request line exceeds {} bytes", protocol::MAX_LINE_BYTES),
                ),
            ),
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                if let SessionControl::Shutdown = handle_line(shared, &line, &writer) {
                    SHUTDOWN.store(true, Ordering::SeqCst);
                    return;
                }
            }
            // A broken connection ends its session, never the daemon.
            Err(_) => return,
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        answer(shared, job);
    }
}

/// Answers one dequeued job: deadline check, engine snapshot, degradation
/// ladder, response. The body of [`worker_loop`], extracted so the
/// deterministic-simulation harness ([`dst`]) can drain the queue step by
/// step on a single logical thread via [`BoundedQueue::try_pop`].
fn answer(shared: &Arc<Shared>, job: Job) {
    mtperf_obs::gauge("serve.queue_depth", shared.queue.depth() as f64);
    if job.token.is_cancelled() {
        shared.stats.deadline_misses.fetch_add(1, Ordering::Relaxed);
        mtperf_obs::add("serve.deadline_miss", 1);
        send(
            &job.writer,
            &Response::error(
                job.id,
                protocol::E_DEADLINE,
                "deadline expired while queued",
            ),
        );
        return;
    }
    let (model, engine_degraded) = lock_engine(shared).snapshot();
    match engine::predict(&model, &job.rows, parallel::global(), &job.token) {
        engine::PredictOutcome::Ok {
            predictions,
            degraded: ladder_degraded,
        } => {
            let degraded = ladder_degraded || engine_degraded;
            if degraded {
                shared
                    .stats
                    .degraded_responses
                    .fetch_add(1, Ordering::Relaxed);
                mtperf_obs::add("serve.degraded", 1);
            }
            send(
                &job.writer,
                &Response::predictions(job.id, predictions, degraded),
            );
        }
        engine::PredictOutcome::DeadlineExceeded => {
            shared.stats.deadline_misses.fetch_add(1, Ordering::Relaxed);
            mtperf_obs::add("serve.deadline_miss", 1);
            send(
                &job.writer,
                &Response::error(
                    job.id,
                    protocol::E_DEADLINE,
                    "deadline expired during computation",
                ),
            );
        }
        engine::PredictOutcome::Failed(msg) => {
            shared.stats.internal_errors.fetch_add(1, Ordering::Relaxed);
            mtperf_obs::add("serve.internal_errors", 1);
            send(
                &job.writer,
                &Response::error(job.id, protocol::E_INTERNAL, msg),
            );
        }
    }
}

#[cfg(unix)]
fn accept_loop(shared: &Arc<Shared>, listener: std::os::unix::net::UnixListener) {
    loop {
        if SHUTDOWN.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst) {
            return;
        }
        // The bounded-backoff retry helper absorbs EINTR/EAGAIN bursts; a
        // still-idle listener then parks for a poll interval.
        match mtperf_obs::fsio::with_retry("serve_accept", || listener.accept()) {
            Ok((stream, _addr)) => {
                let reader = match stream.try_clone() {
                    Ok(s) => io::BufReader::new(s),
                    Err(_) => continue,
                };
                let writer: SharedWriter = Arc::new(Mutex::new(Box::new(stream)));
                let shared = Arc::clone(shared);
                thread::spawn(move || run_session(&shared, reader, writer));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(POLL_MS));
            }
            Err(e) => {
                eprintln!("mtperf serve: accept failed: {e}");
                thread::sleep(Duration::from_millis(POLL_MS));
            }
        }
    }
}

/// `mtperf serve` entry point.
///
/// # Errors
///
/// [`CliError::Usage`] for bad options; [`CliError::Unavailable`]
/// (exit 69, `EX_UNAVAILABLE`) when the model cannot be loaded/validated
/// or the socket cannot be bound.
pub fn cmd_serve(args: &Args) -> Result<(), CliError> {
    let cfg = ServeConfig::from_args(args)?;
    run(&cfg)
}

/// Runs the daemon until a drain trigger fires, then drains and returns.
///
/// # Errors
///
/// See [`cmd_serve`].
pub fn run(cfg: &ServeConfig) -> Result<(), CliError> {
    SHUTDOWN.store(false, Ordering::SeqCst);
    // Start the prediction pool and calibrate its dispatch overhead before
    // the first request arrives, so no client pays the one-time costs.
    parallel::warm_up();
    let eng = engine::Engine::open(&cfg.model)
        .map_err(|e| CliError::Unavailable(format!("cannot load model: {e}")))?;
    let shared = Arc::new(Shared {
        engine: Mutex::new(eng),
        queue: BoundedQueue::new(cfg.queue_depth),
        stats: Stats::default(),
        draining: AtomicBool::new(false),
        workers: cfg.workers,
        default_deadline_ms: cfg.default_deadline_ms,
    });
    let mut workers = Vec::with_capacity(cfg.workers);
    for _ in 0..cfg.workers {
        let shared = Arc::clone(&shared);
        workers.push(thread::spawn(move || worker_loop(&shared)));
    }
    if let Some(sock) = &cfg.socket {
        #[cfg(unix)]
        {
            if sock.exists() {
                std::fs::remove_file(sock).map_err(|e| {
                    CliError::Unavailable(format!(
                        "cannot replace stale socket {}: {e}",
                        sock.display()
                    ))
                })?;
            }
            let listener = std::os::unix::net::UnixListener::bind(sock).map_err(|e| {
                CliError::Unavailable(format!("cannot bind socket {}: {e}", sock.display()))
            })?;
            listener.set_nonblocking(true).map_err(|e| {
                CliError::Unavailable(format!("cannot configure socket {}: {e}", sock.display()))
            })?;
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&shared, listener));
        }
        #[cfg(not(unix))]
        {
            return Err(CliError::Unavailable(format!(
                "--socket {} requires a unix platform",
                sock.display()
            )));
        }
    }
    if cfg.stdio {
        let shared = Arc::clone(&shared);
        thread::spawn(move || {
            let writer: SharedWriter = Arc::new(Mutex::new(Box::new(io::stdout())));
            run_session(&shared, io::BufReader::new(io::stdin()), writer);
            // EOF on the primary transport means no more work can arrive:
            // drain and exit rather than idle forever.
            SHUTDOWN.store(true, Ordering::SeqCst);
        });
    }
    eprintln!(
        "mtperf serve: ready (model {}, {} workers, queue {}{}{})",
        cfg.model.display(),
        cfg.workers,
        cfg.queue_depth,
        cfg.socket
            .as_ref()
            .map(|s| format!(", socket {}", s.display()))
            .unwrap_or_default(),
        if cfg.stdio { ", stdio" } else { "" },
    );
    while !SHUTDOWN.load(Ordering::SeqCst) {
        thread::sleep(Duration::from_millis(POLL_MS));
    }
    eprintln!("mtperf serve: draining...");
    shared.draining.store(true, Ordering::SeqCst);
    shared.queue.close();
    for handle in workers {
        let _ = handle.join();
    }
    if let Some(sock) = &cfg.socket {
        let _ = std::fs::remove_file(sock);
    }
    eprintln!("mtperf serve: drained, exiting");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtperf_mtree::{Dataset, M5Params, ModelTree};

    /// A cloneable writer capturing every response line.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Capture {
        fn text(&self) -> String {
            String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
        }
        fn shared(&self) -> SharedWriter {
            Arc::new(Mutex::new(Box::new(self.clone())))
        }
    }

    fn tiny_tree() -> ModelTree {
        let names = vec!["a0".to_string(), "a1".to_string()];
        let rows: Vec<Vec<f64>> = (0..24)
            .map(|r| vec![((r * 7) % 11) as f64, ((r * 3) % 5) as f64])
            .collect();
        let targets: Vec<f64> = rows.iter().map(|r| 1.0 + 2.0 * r[0] - r[1]).collect();
        let data = Dataset::from_rows(names, &rows, &targets).unwrap();
        ModelTree::fit(&data, &M5Params::default().with_min_instances(4)).unwrap()
    }

    fn test_shared_with(
        tag: &str,
        queue_depth: usize,
        default_deadline_ms: Option<u64>,
    ) -> (Arc<Shared>, std::path::PathBuf, ModelTree) {
        let dir = std::env::temp_dir().join(format!(
            "mtperf-serve-mod-tests-{}-{tag}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let tree = tiny_tree();
        tree.save(&path).unwrap();
        let eng = engine::Engine::open(&path).unwrap();
        let shared = Arc::new(Shared {
            engine: Mutex::new(eng),
            queue: BoundedQueue::new(queue_depth),
            stats: Stats::default(),
            draining: AtomicBool::new(false),
            workers: 1,
            default_deadline_ms,
        });
        (shared, path, tree)
    }

    fn test_shared(tag: &str, queue_depth: usize) -> (Arc<Shared>, std::path::PathBuf, ModelTree) {
        test_shared_with(tag, queue_depth, None)
    }

    #[test]
    fn config_defaults_and_validation() {
        let parse =
            |v: &[&str]| Args::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap();
        let cfg = ServeConfig::from_args(&parse(&["serve", "--model", "m.json"])).unwrap();
        assert_eq!(cfg.workers, DEFAULT_WORKERS);
        assert_eq!(cfg.queue_depth, DEFAULT_QUEUE_DEPTH);
        assert!(cfg.stdio && cfg.socket.is_none());
        assert!(cfg.default_deadline_ms.is_none());

        // --socket alone turns the stdio transport off; --stdio restores it.
        let cfg = ServeConfig::from_args(&parse(&["serve", "--model", "m.json", "--socket", "s"]))
            .unwrap();
        assert!(!cfg.stdio);
        let cfg = ServeConfig::from_args(&parse(&[
            "serve", "--model", "m.json", "--socket", "s", "--stdio",
        ]))
        .unwrap();
        assert!(cfg.stdio);

        for bad in [
            vec!["serve"],
            vec!["serve", "--model", "m", "--workers", "0"],
            vec!["serve", "--model", "m", "--queue-depth", "0"],
            vec!["serve", "--model", "m", "--deadline-ms", "soon"],
        ] {
            let err = ServeConfig::from_args(&parse(&bad)).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?}");
        }
    }

    #[test]
    fn malformed_lines_get_bad_request_responses() {
        let (shared, _, _) = test_shared("malformed", 4);
        let cap = Capture::default();
        for line in [
            "this is not json",
            r#"{"id":"x"}"#,
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"predict"}"#,
            r#"{"op":"predict","rows":[]}"#,
            r#"{"op":"predict","rows":[[1.0]]}"#,
            r#"{"op":"predict","rows":[[1.0,2.0],[1.0,2.0,3.0]]}"#,
            r#"{"op":"predict","rows":[[1.0,1e999]]}"#,
        ] {
            assert!(matches!(
                handle_line(&shared, line, &cap.shared()),
                SessionControl::Continue
            ));
        }
        let out = cap.text();
        assert_eq!(out.lines().count(), 8, "{out}");
        assert_eq!(out.matches("\"kind\":\"bad_request\"").count(), 8, "{out}");
        // Malformed predicts never reach the queue.
        assert_eq!(shared.queue.depth(), 0);
    }

    #[test]
    fn giant_payloads_get_typed_errors_not_resource_exhaustion() {
        let (shared, _, _) = test_shared("giant", 4);

        // A predict with more rows than MAX_ROWS_PER_REQUEST: refused with
        // a typed bad_request before any matrix is built or queued.
        let cap = Capture::default();
        let mut line = String::from(r#"{"op":"predict","id":"big","rows":["#);
        for i in 0..=protocol::MAX_ROWS_PER_REQUEST {
            if i > 0 {
                line.push(',');
            }
            line.push_str("[1.0,2.0]");
        }
        line.push_str("]}");
        handle_line(&shared, &line, &cap.shared());
        let out = cap.text();
        assert!(out.contains("\"kind\":\"bad_request\""), "{out}");
        assert!(out.contains("\"id\":\"big\""), "{out}");
        assert_eq!(shared.queue.depth(), 0);

        // A line over MAX_LINE_BYTES arriving over a real session: the
        // overflow is discarded, a typed error goes back, and the next
        // request on the same connection still works.
        let stream = mtperf_detsim::SimStream::new();
        stream.push_input(&vec![b'z'; protocol::MAX_LINE_BYTES + 1]);
        stream.push_input(b"\n{\"op\":\"health\",\"id\":\"after\"}\n");
        // Invalid UTF-8 on the wire: lossy-decoded, answered as a typed
        // parse error, session continues.
        stream.push_input(&[0xFF, 0xFE, b'{', b'\n']);
        stream.close_input();
        let (reader, writer_half) = stream.split();
        let writer: SharedWriter = Arc::new(Mutex::new(Box::new(writer_half)));
        run_session(&shared, io::BufReader::new(reader), writer);
        let out = String::from_utf8_lossy(&stream.output()).into_owned();
        assert_eq!(out.lines().count(), 3, "{out}");
        assert!(
            out.contains(&format!(
                "request line exceeds {} bytes",
                protocol::MAX_LINE_BYTES
            )),
            "{out}"
        );
        assert!(out.contains("\"id\":\"after\""), "{out}");
        assert_eq!(out.matches("\"kind\":\"bad_request\"").count(), 2, "{out}");
    }

    #[test]
    fn full_queue_answers_overloaded_without_blocking() {
        // Queue of 1 and no workers draining it.
        let (shared, _, _) = test_shared("overload", 1);
        let cap = Capture::default();
        let predict = r#"{"op":"predict","id":"p","rows":[[1.0,2.0]]}"#;
        handle_line(&shared, predict, &cap.shared());
        assert_eq!(shared.queue.depth(), 1);
        assert_eq!(cap.text(), "", "first request queues silently");
        handle_line(&shared, predict, &cap.shared());
        let out = cap.text();
        assert!(out.contains("\"kind\":\"overloaded\""), "{out}");
        assert_eq!(shared.stats.overloaded.load(Ordering::Relaxed), 1);
        assert_eq!(shared.queue.depth(), 1, "refused request was not queued");
    }

    #[test]
    fn health_reports_stats_and_drain_state() {
        let (shared, path, _) = test_shared("health", 4);
        let cap = Capture::default();
        handle_line(
            &shared,
            r#"{"op":"predict","rows":[[1.0,2.0]]}"#,
            &cap.shared(),
        );
        handle_line(&shared, r#"{"op":"health","id":"h1"}"#, &cap.shared());
        let out = cap.text();
        assert!(out.contains("\"ready\":true"), "{out}");
        assert!(out.contains("\"queue_depth\":1"), "{out}");
        assert!(out.contains("\"requests\":1"), "{out}");
        assert!(
            out.contains(&format!(
                "\"model\":{}",
                serde_json::to_string(&path.display().to_string()).unwrap()
            )),
            "{out}"
        );

        shared.draining.store(true, Ordering::SeqCst);
        let cap2 = Capture::default();
        handle_line(&shared, r#"{"op":"ready"}"#, &cap2.shared());
        let out2 = cap2.text();
        assert!(out2.contains("\"ready\":false"), "{out2}");
        assert!(out2.contains("\"draining\":true"), "{out2}");

        // Draining daemons refuse new predictions explicitly.
        let cap3 = Capture::default();
        handle_line(
            &shared,
            r#"{"op":"predict","rows":[[1.0,2.0]]}"#,
            &cap3.shared(),
        );
        assert!(
            cap3.text().contains("\"kind\":\"shutting_down\""),
            "{}",
            cap3.text()
        );
    }

    #[test]
    fn worker_answers_queued_predictions_in_order_of_arrival() {
        let (shared, _, tree) = test_shared("worker", 8);
        let cap = Capture::default();
        handle_line(
            &shared,
            r#"{"op":"predict","id":"r1","rows":[[1.0,2.0],[3.0,0.5]]}"#,
            &cap.shared(),
        );
        shared.queue.close();
        worker_loop(&shared);
        let out = cap.text();
        assert!(out.contains("\"id\":\"r1\""), "{out}");
        assert!(out.contains("\"ok\":true"), "{out}");
        assert!(out.contains("\"degraded\":false"), "{out}");
        let want0 = tree.predict(&[1.0, 2.0]);
        let want1 = tree.predict(&[3.0, 0.5]);
        let line = out.trim();
        assert!(
            line.contains(&format!("{want0}")) && line.contains(&format!("{want1}")),
            "{line} missing {want0}/{want1}"
        );
    }

    #[test]
    fn queued_past_deadline_is_a_timeout_not_a_hang() {
        let (shared, _, _) = test_shared("deadline", 8);
        let cap = Capture::default();
        handle_line(
            &shared,
            r#"{"op":"predict","id":"late","rows":[[1.0,2.0]],"deadline_ms":0}"#,
            &cap.shared(),
        );
        shared.queue.close();
        worker_loop(&shared);
        let out = cap.text();
        assert!(out.contains("\"kind\":\"deadline_exceeded\""), "{out}");
        assert!(out.contains("\"id\":\"late\""), "{out}");
        assert_eq!(shared.stats.deadline_misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn default_deadline_applies_when_request_has_none() {
        // An already-expired default deadline: the worker must time the
        // request out even though the request itself named no deadline.
        let (shared, _, _) = test_shared_with("default-deadline", 8, Some(0));
        let cap = Capture::default();
        handle_line(
            &shared,
            r#"{"op":"predict","rows":[[1.0,2.0]]}"#,
            &cap.shared(),
        );
        shared.queue.close();
        worker_loop(&shared);
        assert!(
            cap.text().contains("\"kind\":\"deadline_exceeded\""),
            "{}",
            cap.text()
        );
    }

    #[test]
    fn poisoned_reload_degrades_but_keeps_serving() {
        let (shared, path, tree) = test_shared("reload", 8);
        let cap = Capture::default();

        std::fs::write(&path, "poisoned").unwrap();
        handle_line(&shared, r#"{"op":"reload","id":"g1"}"#, &cap.shared());
        let out = cap.text();
        assert!(out.contains("\"kind\":\"reload_failed\""), "{out}");
        assert!(out.contains("\"degraded\":true"), "{out}");

        // Predictions still flow, marked degraded, from last known good.
        let cap2 = Capture::default();
        handle_line(
            &shared,
            r#"{"op":"predict","id":"p1","rows":[[1.0,2.0]]}"#,
            &cap2.shared(),
        );
        shared.queue.close();
        worker_loop(&shared);
        let out2 = cap2.text();
        assert!(out2.contains("\"ok\":true"), "{out2}");
        assert!(out2.contains("\"degraded\":true"), "{out2}");
        assert_eq!(shared.stats.degraded_responses.load(Ordering::Relaxed), 1);

        // A good file heals it.
        tree.save(&path).unwrap();
        let cap3 = Capture::default();
        handle_line(&shared, r#"{"op":"reload","id":"g2"}"#, &cap3.shared());
        assert!(cap3.text().contains("\"ok\":true"), "{}", cap3.text());
        assert!(!lock_engine(&shared).degraded());
        assert_eq!(shared.stats.reloads.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn save_op_persists_and_reports_failures() {
        let (shared, path, tree) = test_shared("save", 8);
        let copy = path.with_file_name("snapshot.json");
        let cap = Capture::default();
        let line = format!(
            r#"{{"op":"save","id":"s1","path":{}}}"#,
            serde_json::to_string(&copy.display().to_string()).unwrap()
        );
        handle_line(&shared, &line, &cap.shared());
        assert!(cap.text().contains("\"ok\":true"), "{}", cap.text());
        assert_eq!(ModelTree::load(&copy).unwrap().to_json(), tree.to_json());

        let cap2 = Capture::default();
        handle_line(
            &shared,
            r#"{"op":"save","path":"/nonexistent-dir/x/y.json"}"#,
            &cap2.shared(),
        );
        assert!(
            cap2.text().contains("\"kind\":\"save_failed\""),
            "{}",
            cap2.text()
        );
    }

    #[test]
    fn shutdown_op_acks_then_signals_drain() {
        let (shared, _, _) = test_shared("shutdown", 8);
        let cap = Capture::default();
        assert!(matches!(
            handle_line(&shared, r#"{"op":"shutdown","id":"bye"}"#, &cap.shared()),
            SessionControl::Shutdown
        ));
        assert!(cap.text().contains("\"id\":\"bye\""), "{}", cap.text());
    }
}
