//! `mtperf serve` — a resilient multi-tenant prediction daemon.
//!
//! Speaks the newline-delimited JSON protocol of [`protocol`]
//! (`mtperf-serve-v2`, a strict superset of v1) over stdin/stdout and,
//! with `--socket <path>` / `--tcp <addr>`, Unix-domain and TCP
//! listeners. The daemon is layered:
//!
//! * [`transport`] — owns connections: the stdio session, the Unix and
//!   TCP accept loops, one framing buffer and one shared writer per
//!   connection, so responses always return on the issuing connection.
//! * [`router`] — parses and validates each line, resolves the target
//!   model through the registry, consults the prediction cache, and
//!   admits work through the fair queue.
//! * [`registry`] — many named models × validated versions with
//!   `load`/`promote`/`rollback`/`list`, last-known-good semantics, and
//!   a crash-safe manifest (`--registry <path>`).
//! * [`engine`] — validated loads and the per-request degradation ladder
//!   (compiled → interpreted → typed failure).
//!
//! Robustness properties, each pinned by tests:
//!
//! * **Bounded queue, explicit backpressure** — parsing threads never
//!   block on a full queue; the client hears `overloaded` immediately.
//!   Admission is per tenant ([`admission`]): one model's backlog cannot
//!   starve another's, and quota refusals are typed and counted.
//! * **Per-request deadlines** — `deadline_ms` arms a cooperative
//!   [`CancelToken`] consulted while queued and between row blocks, so an
//!   expensive request returns `deadline_exceeded` instead of hanging a
//!   worker.
//! * **Graceful degradation** — a poisoned hot reload or promote keeps
//!   the last-known-good version serving; a compiled-path failure falls
//!   back to the interpreted walk. Both mark responses `degraded: true`.
//! * **Prediction cache** — repeated small batches answer from a
//!   FNV-1a-keyed memo ([`cache`]), bit-identical to a fresh predict,
//!   with hit/miss counters in `health`.
//! * **Crash-safe persistence** — `save` and the registry manifest go
//!   through the atomic temp-file/fsync/rename protocol, so `kill -9` at
//!   any instant leaves the previous file intact.
//! * **Drain-then-exit** — SIGTERM, a `shutdown` request, or EOF on the
//!   primary stdio transport stop intake, finish queued work, and exit 0.
//!
//! Startup failures (missing/corrupt model, unbindable socket) exit with
//! code 69 (`EX_UNAVAILABLE`) so supervisors can tell "cannot start" from
//! "bad usage".

pub mod admission;
pub mod cache;
pub mod dst;
pub mod engine;
pub mod fleet;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod router;
pub mod transport;

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use mtperf_linalg::{parallel, CancelToken, Matrix};

use crate::cli::Args;
use crate::errors::CliError;
use admission::FairQueue;
use cache::PredictionCache;
use engine::LoadedModel;
use protocol::Response;
use registry::Registry;

/// Drain requested (SIGTERM from the binary's handler, a `shutdown`
/// request, or EOF on the primary transport). The main loop polls this.
pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const DEFAULT_WORKERS: usize = 2;
const DEFAULT_QUEUE_DEPTH: usize = 64;
const DEFAULT_CACHE_SIZE: usize = 256;
pub(crate) const POLL_MS: u64 = 25;

/// Parsed configuration of one `mtperf serve` run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Model file served as the default model (reload/save default target).
    pub model: PathBuf,
    /// Unix-domain socket to listen on, if any.
    pub socket: Option<PathBuf>,
    /// TCP address (`host:port`) to listen on, if any.
    pub tcp: Option<String>,
    /// Whether to run a session over stdin/stdout (default unless
    /// `--socket`/`--tcp` is given without `--stdio`).
    pub stdio: bool,
    /// Registry manifest path for crash-safe multi-model persistence.
    pub registry: Option<PathBuf>,
    /// Prediction worker threads.
    pub workers: usize,
    /// Bounded queue capacity (backpressure threshold).
    pub queue_depth: usize,
    /// Per-tenant queue quota (admission threshold; default: the full
    /// queue depth, i.e. no per-tenant bound below the global one).
    pub tenant_quota: usize,
    /// Prediction cache capacity in entries (0 disables the cache).
    pub cache_size: usize,
    /// Default per-request deadline applied when a request carries none.
    pub default_deadline_ms: Option<u64>,
    /// Rollback history bound per model (`--keep-versions N`): promotes
    /// garbage-collect versions beyond the newest `N`, never touching
    /// the active version or the last known good. `None` keeps all.
    pub keep_versions: Option<usize>,
}

impl ServeConfig {
    /// Builds the configuration from parsed CLI arguments.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] on a missing model path or out-of-range
    /// numeric option.
    pub fn from_args(args: &Args) -> Result<ServeConfig, CliError> {
        let model = PathBuf::from(args.require("model")?);
        let socket = args.options.get("socket").map(PathBuf::from);
        let tcp = args.options.get("tcp").cloned();
        let registry = args.options.get("registry").map(PathBuf::from);
        let workers: usize = args.numeric("workers", DEFAULT_WORKERS)?;
        if workers == 0 {
            return Err(CliError::Usage(
                "option --workers must be at least 1".to_string(),
            ));
        }
        let queue_depth: usize = args.numeric("queue-depth", DEFAULT_QUEUE_DEPTH)?;
        if queue_depth == 0 {
            return Err(CliError::Usage(
                "option --queue-depth must be at least 1".to_string(),
            ));
        }
        let tenant_quota: usize = args.numeric("tenant-quota", queue_depth)?;
        if tenant_quota == 0 {
            return Err(CliError::Usage(
                "option --tenant-quota must be at least 1".to_string(),
            ));
        }
        let cache_size: usize = args.numeric("cache-size", DEFAULT_CACHE_SIZE)?;
        let default_deadline_ms = match args.options.get("deadline-ms") {
            None => None,
            Some(v) => Some(v.parse::<u64>().map_err(|_| {
                CliError::Usage(format!("option --deadline-ms has invalid value {v:?}"))
            })?),
        };
        let keep_versions = match args.options.get("keep-versions") {
            None => None,
            Some(v) => {
                let n = v.parse::<usize>().map_err(|_| {
                    CliError::Usage(format!("option --keep-versions has invalid value {v:?}"))
                })?;
                if n == 0 {
                    return Err(CliError::Usage(
                        "option --keep-versions must be at least 1".to_string(),
                    ));
                }
                Some(n)
            }
        };
        let stdio = (socket.is_none() && tcp.is_none()) || args.flag("stdio");
        Ok(ServeConfig {
            model,
            socket,
            tcp,
            stdio,
            registry,
            workers,
            queue_depth,
            tenant_quota,
            cache_size,
            default_deadline_ms,
            keep_versions,
        })
    }
}

/// A connection's shared, lock-guarded response writer. Workers and the
/// connection's own parse loop interleave complete lines through it.
pub(crate) type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

#[derive(Default)]
pub(crate) struct Stats {
    pub(crate) requests: AtomicU64,
    pub(crate) overloaded: AtomicU64,
    pub(crate) deadline_misses: AtomicU64,
    pub(crate) degraded_responses: AtomicU64,
    pub(crate) reloads: AtomicU64,
    pub(crate) internal_errors: AtomicU64,
    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_misses: AtomicU64,
    pub(crate) quota_refusals: AtomicU64,
}

/// One queued prediction. The model is resolved at admission time, so a
/// promote that lands while the job is queued does not change what this
/// job scores with — the response matches what the client was admitted
/// against, and workers never need the registry lock.
pub(crate) struct Job {
    pub(crate) id: Option<String>,
    /// Admission lane and cache-key component (the model name).
    pub(crate) tenant: String,
    /// Resolved version id (cache-key component).
    pub(crate) version: String,
    pub(crate) model: Arc<LoadedModel>,
    /// Whether the owning registry entry was degraded at admission.
    pub(crate) model_degraded: bool,
    /// Original row values, kept only for cacheable (small) batches so
    /// the worker can memoize the fresh result.
    pub(crate) raw_rows: Option<Vec<Vec<f64>>>,
    pub(crate) rows: Matrix,
    pub(crate) token: CancelToken,
    pub(crate) writer: SharedWriter,
}

/// State shared by every session, worker, and the drain loop.
pub(crate) struct Shared {
    pub(crate) registry: Mutex<Registry>,
    pub(crate) queue: FairQueue<Job>,
    pub(crate) cache: Mutex<PredictionCache>,
    pub(crate) stats: Stats,
    pub(crate) draining: AtomicBool,
    pub(crate) workers: usize,
    pub(crate) default_deadline_ms: Option<u64>,
}

pub(crate) fn send(writer: &SharedWriter, resp: &Response) {
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    // A vanished peer is not a daemon error; the session just winds down.
    let _ = w.write_all(resp.to_line().as_bytes());
    let _ = w.flush();
}

#[derive(PartialEq, Eq)]
pub(crate) enum SessionControl {
    Continue,
    Shutdown,
}

pub(crate) fn lock_registry(shared: &Shared) -> std::sync::MutexGuard<'_, Registry> {
    shared.registry.lock().unwrap_or_else(|e| e.into_inner())
}

pub(crate) fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        answer(shared, job);
    }
}

/// Answers one dequeued job: deadline check, degradation ladder, cache
/// fill, response. The body of [`worker_loop`], extracted so the
/// deterministic-simulation harness ([`dst`]) can drain the queue step by
/// step on a single logical thread via [`FairQueue::try_pop`].
pub(crate) fn answer(shared: &Arc<Shared>, job: Job) {
    mtperf_obs::gauge("serve.queue_depth", shared.queue.depth() as f64);
    if job.token.is_cancelled() {
        shared.stats.deadline_misses.fetch_add(1, Ordering::Relaxed);
        mtperf_obs::add("serve.deadline_miss", 1);
        send(
            &job.writer,
            &Response::error(
                job.id,
                protocol::E_DEADLINE,
                "deadline expired while queued",
            ),
        );
        return;
    }
    match engine::predict(&job.model, &job.rows, parallel::global(), &job.token) {
        engine::PredictOutcome::Ok {
            predictions,
            degraded: ladder_degraded,
        } => {
            let degraded = ladder_degraded || job.model_degraded;
            if degraded {
                shared
                    .stats
                    .degraded_responses
                    .fetch_add(1, Ordering::Relaxed);
                mtperf_obs::add("serve.degraded", 1);
            } else if let Some(raw) = &job.raw_rows {
                shared
                    .cache
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(&job.tenant, &job.version, raw, &predictions);
            }
            send(
                &job.writer,
                &Response::predictions(job.id, predictions, degraded),
            );
        }
        engine::PredictOutcome::DeadlineExceeded => {
            shared.stats.deadline_misses.fetch_add(1, Ordering::Relaxed);
            mtperf_obs::add("serve.deadline_miss", 1);
            send(
                &job.writer,
                &Response::error(
                    job.id,
                    protocol::E_DEADLINE,
                    "deadline expired during computation",
                ),
            );
        }
        engine::PredictOutcome::Failed(msg) => {
            shared.stats.internal_errors.fetch_add(1, Ordering::Relaxed);
            mtperf_obs::add("serve.internal_errors", 1);
            send(
                &job.writer,
                &Response::error(job.id, protocol::E_INTERNAL, msg),
            );
        }
    }
}

/// `mtperf serve` entry point.
///
/// # Errors
///
/// [`CliError::Usage`] for bad options; [`CliError::Unavailable`]
/// (exit 69, `EX_UNAVAILABLE`) when the model cannot be loaded/validated
/// or a listener cannot be bound.
pub fn cmd_serve(args: &Args) -> Result<(), CliError> {
    if args.flag("fleet") {
        let cfg = fleet::FleetConfig::from_args(args)?;
        return fleet::run(&cfg);
    }
    let cfg = ServeConfig::from_args(args)?;
    run(&cfg)
}

/// Runs the daemon until a drain trigger fires, then drains and returns.
///
/// # Errors
///
/// See [`cmd_serve`].
pub fn run(cfg: &ServeConfig) -> Result<(), CliError> {
    SHUTDOWN.store(false, Ordering::SeqCst);
    // Start the prediction pool and calibrate its dispatch overhead before
    // the first request arrives, so no client pays the one-time costs.
    parallel::warm_up();
    let mut reg = Registry::open(&cfg.model, cfg.registry.as_deref())
        .map_err(|e| CliError::Unavailable(format!("cannot load model: {e}")))?;
    reg.set_keep_versions(cfg.keep_versions);
    let shared = Arc::new(Shared {
        registry: Mutex::new(reg),
        queue: FairQueue::new(cfg.queue_depth, cfg.tenant_quota),
        cache: Mutex::new(PredictionCache::new(cfg.cache_size)),
        stats: Stats::default(),
        draining: AtomicBool::new(false),
        workers: cfg.workers,
        default_deadline_ms: cfg.default_deadline_ms,
    });
    let mut workers = Vec::with_capacity(cfg.workers);
    for _ in 0..cfg.workers {
        let shared = Arc::clone(&shared);
        workers.push(thread::spawn(move || worker_loop(&shared)));
    }
    if let Some(sock) = &cfg.socket {
        #[cfg(unix)]
        {
            let listener = transport::bind_unix(sock)?;
            let shared = Arc::clone(&shared);
            thread::spawn(move || transport::accept_loop_unix(&shared, listener));
        }
        #[cfg(not(unix))]
        {
            return Err(CliError::Unavailable(format!(
                "--socket {} requires a unix platform",
                sock.display()
            )));
        }
    }
    if let Some(addr) = &cfg.tcp {
        let listener = transport::bind_tcp(addr)?;
        let shared = Arc::clone(&shared);
        thread::spawn(move || transport::accept_loop_tcp(&shared, listener));
    }
    if cfg.stdio {
        transport::spawn_stdio(&shared);
    }
    eprintln!(
        "mtperf serve: ready (model {}, {} workers, queue {}{}{}{})",
        cfg.model.display(),
        cfg.workers,
        cfg.queue_depth,
        cfg.socket
            .as_ref()
            .map(|s| format!(", socket {}", s.display()))
            .unwrap_or_default(),
        cfg.tcp
            .as_ref()
            .map(|a| format!(", tcp {a}"))
            .unwrap_or_default(),
        if cfg.stdio { ", stdio" } else { "" },
    );
    while !SHUTDOWN.load(Ordering::SeqCst) {
        thread::sleep(Duration::from_millis(POLL_MS));
    }
    eprintln!("mtperf serve: draining...");
    shared.draining.store(true, Ordering::SeqCst);
    shared.queue.close();
    for handle in workers {
        let _ = handle.join();
    }
    if let Some(sock) = &cfg.socket {
        let _ = std::fs::remove_file(sock);
    }
    eprintln!("mtperf serve: drained, exiting");
    Ok(())
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use mtperf_mtree::{Dataset, M5Params, ModelTree};
    use std::io;

    /// A cloneable writer capturing every response line.
    #[derive(Clone, Default)]
    pub(crate) struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Capture {
        pub(crate) fn text(&self) -> String {
            String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
        }
        pub(crate) fn shared(&self) -> SharedWriter {
            Arc::new(Mutex::new(Box::new(self.clone())))
        }
        pub(crate) fn append(&self, s: &str) {
            self.0.lock().unwrap().extend_from_slice(s.as_bytes());
        }
    }

    pub(crate) fn tiny_tree() -> ModelTree {
        let names = vec!["a0".to_string(), "a1".to_string()];
        let rows: Vec<Vec<f64>> = (0..24)
            .map(|r| vec![((r * 7) % 11) as f64, ((r * 3) % 5) as f64])
            .collect();
        let targets: Vec<f64> = rows.iter().map(|r| 1.0 + 2.0 * r[0] - r[1]).collect();
        let data = Dataset::from_rows(names, &rows, &targets).unwrap();
        ModelTree::fit(&data, &M5Params::default().with_min_instances(4)).unwrap()
    }

    pub(crate) fn test_shared_with(
        tag: &str,
        queue_depth: usize,
        default_deadline_ms: Option<u64>,
        tenant_quota: usize,
        cache_size: usize,
    ) -> (Arc<Shared>, std::path::PathBuf, ModelTree) {
        let dir = std::env::temp_dir().join(format!(
            "mtperf-serve-mod-tests-{}-{tag}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let tree = tiny_tree();
        tree.save(&path).unwrap();
        let reg = Registry::open(&path, None).unwrap();
        let shared = Arc::new(Shared {
            registry: Mutex::new(reg),
            queue: FairQueue::new(queue_depth, tenant_quota),
            cache: Mutex::new(PredictionCache::new(cache_size)),
            stats: Stats::default(),
            draining: AtomicBool::new(false),
            workers: 1,
            default_deadline_ms,
        });
        (shared, path, tree)
    }

    pub(crate) fn test_shared(
        tag: &str,
        queue_depth: usize,
    ) -> (Arc<Shared>, std::path::PathBuf, ModelTree) {
        test_shared_with(tag, queue_depth, None, queue_depth, 0)
    }

    #[test]
    fn config_defaults_and_validation() {
        let parse =
            |v: &[&str]| Args::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap();
        let cfg = ServeConfig::from_args(&parse(&["serve", "--model", "m.json"])).unwrap();
        assert_eq!(cfg.workers, DEFAULT_WORKERS);
        assert_eq!(cfg.queue_depth, DEFAULT_QUEUE_DEPTH);
        assert_eq!(cfg.tenant_quota, DEFAULT_QUEUE_DEPTH);
        assert_eq!(cfg.cache_size, DEFAULT_CACHE_SIZE);
        assert!(cfg.stdio && cfg.socket.is_none() && cfg.tcp.is_none());
        assert!(cfg.registry.is_none());
        assert!(cfg.default_deadline_ms.is_none());

        // --socket or --tcp alone turns the stdio transport off; --stdio
        // restores it.
        let cfg = ServeConfig::from_args(&parse(&["serve", "--model", "m.json", "--socket", "s"]))
            .unwrap();
        assert!(!cfg.stdio);
        let cfg = ServeConfig::from_args(&parse(&[
            "serve",
            "--model",
            "m.json",
            "--tcp",
            "127.0.0.1:0",
        ]))
        .unwrap();
        assert!(!cfg.stdio);
        assert_eq!(cfg.tcp.as_deref(), Some("127.0.0.1:0"));
        let cfg = ServeConfig::from_args(&parse(&[
            "serve", "--model", "m.json", "--socket", "s", "--stdio",
        ]))
        .unwrap();
        assert!(cfg.stdio);

        // The quota defaults to the queue depth and can sit below it.
        let cfg = ServeConfig::from_args(&parse(&[
            "serve",
            "--model",
            "m.json",
            "--queue-depth",
            "32",
            "--tenant-quota",
            "4",
        ]))
        .unwrap();
        assert_eq!((cfg.queue_depth, cfg.tenant_quota), (32, 4));

        for bad in [
            vec!["serve"],
            vec!["serve", "--model", "m", "--workers", "0"],
            vec!["serve", "--model", "m", "--queue-depth", "0"],
            vec!["serve", "--model", "m", "--tenant-quota", "0"],
            vec!["serve", "--model", "m", "--cache-size", "many"],
            vec!["serve", "--model", "m", "--deadline-ms", "soon"],
        ] {
            let err = ServeConfig::from_args(&parse(&bad)).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?}");
        }
    }

    #[test]
    fn worker_answers_queued_predictions_in_order_of_arrival() {
        let (shared, _, tree) = test_shared("worker", 8);
        let cap = Capture::default();
        router::handle_line(
            &shared,
            r#"{"op":"predict","id":"r1","rows":[[1.0,2.0],[3.0,0.5]]}"#,
            &cap.shared(),
        );
        shared.queue.close();
        worker_loop(&shared);
        let out = cap.text();
        assert!(out.contains("\"id\":\"r1\""), "{out}");
        assert!(out.contains("\"ok\":true"), "{out}");
        assert!(out.contains("\"degraded\":false"), "{out}");
        let want0 = tree.predict(&[1.0, 2.0]);
        let want1 = tree.predict(&[3.0, 0.5]);
        let line = out.trim();
        assert!(
            line.contains(&format!("{want0}")) && line.contains(&format!("{want1}")),
            "{line} missing {want0}/{want1}"
        );
    }

    #[test]
    fn queued_past_deadline_is_a_timeout_not_a_hang() {
        let (shared, _, _) = test_shared("deadline", 8);
        let cap = Capture::default();
        router::handle_line(
            &shared,
            r#"{"op":"predict","id":"late","rows":[[1.0,2.0]],"deadline_ms":0}"#,
            &cap.shared(),
        );
        shared.queue.close();
        worker_loop(&shared);
        let out = cap.text();
        assert!(out.contains("\"kind\":\"deadline_exceeded\""), "{out}");
        assert!(out.contains("\"id\":\"late\""), "{out}");
        assert_eq!(shared.stats.deadline_misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn default_deadline_applies_when_request_has_none() {
        // An already-expired default deadline: the worker must time the
        // request out even though the request itself named no deadline.
        let (shared, _, _) = test_shared_with("default-deadline", 8, Some(0), 8, 0);
        let cap = Capture::default();
        router::handle_line(
            &shared,
            r#"{"op":"predict","rows":[[1.0,2.0]]}"#,
            &cap.shared(),
        );
        shared.queue.close();
        worker_loop(&shared);
        assert!(
            cap.text().contains("\"kind\":\"deadline_exceeded\""),
            "{}",
            cap.text()
        );
    }
}
