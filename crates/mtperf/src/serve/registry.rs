//! The model registry: many named models × resident validated versions.
//!
//! This layer grows the PR 5 single-slot [`super::engine`] lifecycle into
//! the fleet shape: a [`Registry`] holds any number of *models* (tenants),
//! each with a list of *versions* that all passed the validated-load path
//! ([`engine::load_and_validate`]: parse, compile, smoke-predict), exactly
//! one of which is *active* — the version `predict` routes to when the
//! request does not pin one explicitly.
//!
//! # Last known good, at every layer
//!
//! * A version only becomes resident after full validation; the `versions`
//!   list is therefore an invariant-bearing set: **everything in it is
//!   servable**.
//! * [`Registry::promote`] with a path validates *before* swapping the
//!   active pointer. A poisoned artifact leaves the previously active
//!   version serving, marks the model degraded, and reports a typed error.
//! * [`Registry::rollback`] pops the promotion history, so it can only
//!   land on a previously-active — hence previously-validated — version.
//!
//! # Crash-safe manifest persistence
//!
//! With a manifest path configured, every mutating operation rewrites a
//! JSON manifest (`mtperf-registry-v1`) through the atomic
//! write/fsync/rename protocol of [`mtperf_obs::fsio::atomic_write`]: a
//! `kill -9` at any instant leaves either the old or the new manifest,
//! never a torn one. On restart, [`Registry::open`] revalidates every
//! listed artifact; a version that no longer validates is dropped, and if
//! the promoted version itself is gone the model falls back to its most
//! recent surviving validated version, marked degraded — the promoted
//! version or a clean prior one, never an unservable registry.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use super::engine::{self, LoadedModel};
use super::protocol::{ModelInfo, VersionInfo};

/// Name of the model that v1 requests (no `model` field) route to.
pub const DEFAULT_MODEL: &str = "default";

/// Manifest schema identifier.
pub const MANIFEST_SCHEMA: &str = "mtperf-registry-v1";

/// One resident, validated model version.
struct Version {
    id: String,
    path: PathBuf,
    model: Arc<LoadedModel>,
}

/// One model (tenant): its validated versions and the active pointer.
struct Entry {
    versions: Vec<Version>,
    active: usize,
    /// Previously-active indexes, most recent last (the rollback stack).
    history: Vec<usize>,
    degraded: bool,
    last_error: Option<String>,
}

impl Entry {
    fn version_index(&self, id: &str) -> Option<usize> {
        self.versions.iter().position(|v| v.id == id)
    }
}

/// A model + degradation snapshot resolved for one prediction.
pub struct Resolved {
    /// The validated model to score with.
    pub model: Arc<LoadedModel>,
    /// Whether the owning entry is serving under a failed promote/reload.
    pub degraded: bool,
    /// The resolved version id (cache-key component).
    pub version: String,
}

impl std::fmt::Debug for Resolved {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resolved")
            .field("version", &self.version)
            .field("degraded", &self.degraded)
            .finish_non_exhaustive()
    }
}

/// Why a model/version lookup failed.
#[derive(Debug, PartialEq, Eq)]
pub enum LookupError {
    /// No model of that name is resident.
    UnknownModel(String),
    /// The model exists but has no version of that id.
    UnknownVersion(String, String),
}

impl std::fmt::Display for LookupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LookupError::UnknownModel(m) => write!(f, "unknown model {m:?}"),
            LookupError::UnknownVersion(m, v) => {
                write!(f, "model {m:?} has no version {v:?}")
            }
        }
    }
}

#[derive(Serialize, Deserialize)]
struct ManifestVersion {
    id: String,
    path: String,
}

#[derive(Serialize, Deserialize)]
struct ManifestModel {
    name: String,
    active: String,
    versions: Vec<ManifestVersion>,
}

#[derive(Serialize, Deserialize)]
struct Manifest {
    schema: String,
    models: Vec<ManifestModel>,
}

/// The daemon's model registry. All methods take `&mut self`; the serving
/// layer wraps the registry in a mutex (registry ops are control-plane
/// rare, predictions only touch it for one Arc clone).
pub struct Registry {
    models: BTreeMap<String, Entry>,
    manifest: Option<PathBuf>,
    /// Rollback-history bound: promotes garbage-collect versions beyond
    /// the newest `N` per model (`None` keeps everything). The active
    /// version and every rollback target are never collected.
    keep_versions: Option<usize>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("models", &self.models.keys().collect::<Vec<_>>())
            .field("manifest", &self.manifest)
            .finish()
    }
}

impl Registry {
    /// Opens a registry serving `default_path` as the default model's
    /// first version. With a manifest path whose file exists, the resident
    /// set is rebuilt from it instead: every listed artifact is
    /// revalidated, unservable versions are dropped, and a model whose
    /// promoted version no longer validates falls back (degraded) to its
    /// most recent surviving version.
    ///
    /// # Errors
    ///
    /// A human-readable reason when no servable default model can be
    /// established (daemon cannot start).
    pub fn open(default_path: &Path, manifest: Option<&Path>) -> Result<Registry, String> {
        let mut reg = Registry {
            models: BTreeMap::new(),
            manifest: manifest.map(Path::to_path_buf),
            keep_versions: None,
        };
        let manifest_text = manifest.filter(|p| p.exists()).map(std::fs::read_to_string);
        match manifest_text {
            Some(Ok(text)) => reg.rebuild_from_manifest(&text, default_path)?,
            Some(Err(e)) => {
                return Err(format!(
                    "cannot read registry manifest {}: {e}",
                    manifest.expect("manifest path present").display()
                ))
            }
            None => {
                let model = engine::load_and_validate(default_path)?;
                reg.models.insert(
                    DEFAULT_MODEL.to_string(),
                    Entry {
                        versions: vec![Version {
                            id: "v1".to_string(),
                            path: default_path.to_path_buf(),
                            model: Arc::new(model),
                        }],
                        active: 0,
                        history: Vec::new(),
                        degraded: false,
                        last_error: None,
                    },
                );
            }
        }
        // Best-effort initial persist so a fresh daemon's manifest exists
        // before the first mutating op (failure is not fatal at startup:
        // the in-memory registry is servable).
        let _ = reg.persist();
        Ok(reg)
    }

    fn rebuild_from_manifest(&mut self, text: &str, default_path: &Path) -> Result<(), String> {
        let manifest: Manifest = serde_json::from_str(text)
            .map_err(|e| format!("registry manifest is not valid JSON: {e}"))?;
        if manifest.schema != MANIFEST_SCHEMA {
            return Err(format!(
                "registry manifest schema {:?} is not {MANIFEST_SCHEMA:?}",
                manifest.schema
            ));
        }
        for m in &manifest.models {
            let mut versions = Vec::new();
            let mut dropped = Vec::new();
            for v in &m.versions {
                let path = PathBuf::from(&v.path);
                match engine::load_and_validate(&path) {
                    Ok(model) => versions.push(Version {
                        id: v.id.clone(),
                        path,
                        model: Arc::new(model),
                    }),
                    Err(e) => dropped.push(format!("{}: {e}", v.id)),
                }
            }
            if versions.is_empty() {
                // Nothing servable for this tenant; the default model gets
                // one more chance below, others are simply gone.
                continue;
            }
            let (active, degraded, last_error) =
                match versions.iter().position(|v| v.id == m.active) {
                    Some(i) if dropped.is_empty() => (i, false, None),
                    Some(i) => (
                        i,
                        false,
                        Some(format!(
                            "versions dropped on restart: {}",
                            dropped.join("; ")
                        )),
                    ),
                    None => (
                        versions.len() - 1,
                        true,
                        Some(format!(
                            "promoted version {:?} failed validation on restart; \
                             serving {:?} (dropped: {})",
                            m.active,
                            versions[versions.len() - 1].id,
                            dropped.join("; "),
                        )),
                    ),
                };
            self.models.insert(
                m.name.clone(),
                Entry {
                    versions,
                    active,
                    history: Vec::new(),
                    degraded,
                    last_error,
                },
            );
        }
        if !self.models.contains_key(DEFAULT_MODEL) {
            // The manifest lost the default tenant entirely: fall back to
            // the artifact the daemon was started with.
            let model = engine::load_and_validate(default_path)?;
            self.models.insert(
                DEFAULT_MODEL.to_string(),
                Entry {
                    versions: vec![Version {
                        id: "v1".to_string(),
                        path: default_path.to_path_buf(),
                        model: Arc::new(model),
                    }],
                    active: 0,
                    history: Vec::new(),
                    degraded: true,
                    last_error: Some("default model restored from startup artifact".to_string()),
                },
            );
        }
        Ok(())
    }

    /// Writes the manifest atomically, when one is configured.
    ///
    /// # Errors
    ///
    /// The I/O failure, rendered. The in-memory registry is unaffected.
    pub fn persist(&self) -> Result<(), String> {
        let Some(path) = &self.manifest else {
            return Ok(());
        };
        let manifest = Manifest {
            schema: MANIFEST_SCHEMA.to_string(),
            models: self
                .models
                .iter()
                .map(|(name, e)| ManifestModel {
                    name: name.clone(),
                    active: e.versions[e.active].id.clone(),
                    versions: e
                        .versions
                        .iter()
                        .map(|v| ManifestVersion {
                            id: v.id.clone(),
                            path: v.path.display().to_string(),
                        })
                        .collect(),
                })
                .collect(),
        };
        let mut text =
            serde_json::to_string(&manifest).map_err(|e| format!("manifest serialization: {e}"))?;
        text.push('\n');
        mtperf_obs::fsio::atomic_write(path, text.as_bytes())
            .map_err(|e| format!("manifest save {}: {e}", path.display()))
    }

    fn persist_after_mutation(&self) -> Result<(), String> {
        self.persist().map_err(|e| {
            format!("applied in memory, but the registry manifest could not be saved: {e}")
        })
    }

    /// Loads and validates a new version into the registry without
    /// touching any active pointer — except that the first version of a
    /// brand-new model becomes its active version.
    ///
    /// # Errors
    ///
    /// Validation failures, duplicate version ids, and manifest-persist
    /// failures (the version stays resident in the latter case).
    pub fn load(&mut self, name: &str, version: Option<&str>, path: &Path) -> Result<(), String> {
        let model = Arc::new(engine::load_and_validate(path)?);
        let entry = self
            .models
            .entry(name.to_string())
            .or_insert_with(|| Entry {
                versions: Vec::new(),
                active: 0,
                history: Vec::new(),
                degraded: false,
                last_error: None,
            });
        let id = match version {
            Some(v) => {
                if entry.version_index(v).is_some() {
                    return Err(format!("model {name:?} already has a version {v:?}"));
                }
                v.to_string()
            }
            None => Registry::fresh_id(entry),
        };
        entry.versions.push(Version {
            id,
            path: path.to_path_buf(),
            model,
        });
        self.persist_after_mutation()
    }

    fn fresh_id(entry: &Entry) -> String {
        let mut n = entry.versions.len() + 1;
        loop {
            let candidate = format!("v{n}");
            if entry.version_index(&candidate).is_none() {
                return candidate;
            }
            n += 1;
        }
    }

    /// Bounds each model's rollback history to the newest `keep`
    /// versions. `None` (the default) disables garbage collection;
    /// `Some(0)` is treated as `Some(1)` (the active version is never
    /// collectable).
    pub fn set_keep_versions(&mut self, keep: Option<usize>) {
        self.keep_versions = keep.map(|n| n.max(1));
    }

    /// Garbage-collects `name`'s oldest versions down to the configured
    /// bound, then deletes artifact files no remaining version of any
    /// model references. The active version and every rollback target
    /// still on the history stack (including the last known good) are
    /// refused — the version list may therefore stay above the bound
    /// when everything in it is protected.
    fn gc_versions(&mut self, name: &str) {
        let Some(keep) = self.keep_versions else {
            return;
        };
        let removed_paths: Vec<PathBuf> = {
            let Some(entry) = self.models.get_mut(name) else {
                return;
            };
            // The history stack itself is bounded first: only the newest
            // `keep` rollback targets stay protected.
            if entry.history.len() > keep {
                let excess = entry.history.len() - keep;
                entry.history.drain(..excess);
            }
            let mut removed = Vec::new();
            while entry.versions.len() > keep {
                let protected: std::collections::BTreeSet<usize> = entry
                    .history
                    .iter()
                    .copied()
                    .chain(std::iter::once(entry.active))
                    .collect();
                let Some(victim) = (0..entry.versions.len()).find(|i| !protected.contains(i))
                else {
                    break;
                };
                let gone = entry.versions.remove(victim);
                removed.push(gone.path);
                if entry.active > victim {
                    entry.active -= 1;
                }
                for h in &mut entry.history {
                    if *h > victim {
                        *h -= 1;
                    }
                }
            }
            removed
        };
        for path in removed_paths {
            let still_referenced = self
                .models
                .values()
                .any(|e| e.versions.iter().any(|v| v.path == path));
            if !still_referenced {
                // Best-effort: a surviving file is disk waste, not a
                // correctness problem, and deletion goes through the
                // fault-injectable seam like every other mutation.
                let _ = mtperf_obs::fsio::remove_file(&path);
            }
        }
    }

    /// Promotes a version to active. With `path`, the artifact is
    /// validated first and installed as a fresh version (id from
    /// `version`, else generated); a validation failure keeps the current
    /// active version serving and marks the model degraded. With only
    /// `version`, an already-resident (hence already-validated) version
    /// becomes active.
    ///
    /// # Errors
    ///
    /// Unknown model/version, validation failures, or manifest-persist
    /// failures (the promote stays applied in memory in the last case).
    pub fn promote(
        &mut self,
        name: &str,
        version: Option<&str>,
        path: Option<&Path>,
    ) -> Result<(), String> {
        let entry = self
            .models
            .get_mut(name)
            .ok_or_else(|| LookupError::UnknownModel(name.to_string()).to_string())?;
        match (path, version) {
            (Some(path), version) => {
                let model = match engine::load_and_validate(path) {
                    Ok(m) => Arc::new(m),
                    Err(e) => {
                        entry.degraded = true;
                        entry.last_error = Some(e.clone());
                        return Err(e);
                    }
                };
                let id = match version {
                    Some(v) => {
                        if entry.version_index(v).is_some() {
                            return Err(format!("model {name:?} already has a version {v:?}"));
                        }
                        v.to_string()
                    }
                    None => Registry::fresh_id(entry),
                };
                entry.versions.push(Version {
                    id,
                    path: path.to_path_buf(),
                    model,
                });
                entry.history.push(entry.active);
                entry.active = entry.versions.len() - 1;
            }
            (None, Some(v)) => {
                let idx = entry.version_index(v).ok_or_else(|| {
                    LookupError::UnknownVersion(name.to_string(), v.to_string()).to_string()
                })?;
                if idx != entry.active {
                    entry.history.push(entry.active);
                    entry.active = idx;
                }
            }
            (None, None) => {
                return Err("promote requires a version or a path".to_string());
            }
        }
        entry.degraded = false;
        entry.last_error = None;
        self.gc_versions(name);
        self.persist_after_mutation()
    }

    /// Rolls the active pointer back to the previously-active version
    /// (the top of the promotion history). Because only validated
    /// versions ever become active, a rollback always lands on a
    /// previously-validated version.
    ///
    /// # Errors
    ///
    /// When the model is unknown or has no promotion history, or the
    /// manifest cannot be persisted (rollback stays applied in memory).
    pub fn rollback(&mut self, name: &str) -> Result<String, String> {
        let entry = self
            .models
            .get_mut(name)
            .ok_or_else(|| LookupError::UnknownModel(name.to_string()).to_string())?;
        let prior = entry
            .history
            .pop()
            .ok_or_else(|| format!("model {name:?} has no prior version to roll back to"))?;
        entry.active = prior;
        entry.degraded = false;
        entry.last_error = None;
        let id = entry.versions[prior].id.clone();
        self.persist_after_mutation()?;
        Ok(id)
    }

    /// v1-compatible hot reload of the default model: validate `path`
    /// (default: the active version's artifact path) and swap it in. A
    /// reload of the active version's own path replaces that version in
    /// place (the v1 redeploy idiom — the version list does not grow); a
    /// different path installs and activates a fresh version.
    ///
    /// # Errors
    ///
    /// The validation failure verbatim; the model is marked degraded and
    /// the previous version keeps serving.
    pub fn reload(&mut self, path: Option<&Path>) -> Result<(), String> {
        let entry = self
            .models
            .get_mut(DEFAULT_MODEL)
            .ok_or_else(|| LookupError::UnknownModel(DEFAULT_MODEL.to_string()).to_string())?;
        let target = path
            .unwrap_or(&entry.versions[entry.active].path)
            .to_path_buf();
        match engine::load_and_validate(&target) {
            Ok(model) => {
                if entry.versions[entry.active].path == target {
                    entry.versions[entry.active].model = Arc::new(model);
                } else {
                    let id = Registry::fresh_id(entry);
                    entry.versions.push(Version {
                        id,
                        path: target,
                        model: Arc::new(model),
                    });
                    entry.history.push(entry.active);
                    entry.active = entry.versions.len() - 1;
                }
                entry.degraded = false;
                entry.last_error = None;
                self.gc_versions(DEFAULT_MODEL);
                let _ = self.persist();
                Ok(())
            }
            Err(e) => {
                entry.degraded = true;
                entry.last_error = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Atomically persists a model's active version to `path` (default:
    /// the version's own artifact path). Safe against `kill -9` at any
    /// instant.
    ///
    /// # Errors
    ///
    /// Unknown model, or the persistence failure rendered.
    pub fn save(&self, name: &str, path: Option<&Path>) -> Result<PathBuf, String> {
        let entry = self
            .models
            .get(name)
            .ok_or_else(|| LookupError::UnknownModel(name.to_string()).to_string())?;
        let version = &entry.versions[entry.active];
        let target = path.unwrap_or(&version.path).to_path_buf();
        version
            .model
            .tree
            .save(&target)
            .map_err(|e| format!("{}: {e}", target.display()))?;
        Ok(target)
    }

    /// Resolves a model (and optionally a pinned version) for prediction.
    ///
    /// # Errors
    ///
    /// [`LookupError`] when the model or version is not resident.
    pub fn resolve(
        &self,
        name: Option<&str>,
        version: Option<&str>,
    ) -> Result<Resolved, LookupError> {
        let name = name.unwrap_or(DEFAULT_MODEL);
        let entry = self
            .models
            .get(name)
            .ok_or_else(|| LookupError::UnknownModel(name.to_string()))?;
        let idx = match version {
            None => entry.active,
            Some(v) => entry
                .version_index(v)
                .ok_or_else(|| LookupError::UnknownVersion(name.to_string(), v.to_string()))?,
        };
        Ok(Resolved {
            model: Arc::clone(&entry.versions[idx].model),
            degraded: entry.degraded,
            version: entry.versions[idx].id.clone(),
        })
    }

    /// The registry inventory, for `list` responses.
    pub fn list(&self) -> Vec<ModelInfo> {
        self.models
            .iter()
            .map(|(name, e)| ModelInfo {
                name: name.clone(),
                active: e.versions[e.active].id.clone(),
                degraded: e.degraded,
                versions: e
                    .versions
                    .iter()
                    .enumerate()
                    .map(|(i, v)| VersionInfo {
                        id: v.id.clone(),
                        path: v.path.display().to_string(),
                        active: i == e.active,
                    })
                    .collect(),
            })
            .collect()
    }

    /// Whether `name` is a resident model (admission-control check).
    pub fn contains(&self, name: &str) -> bool {
        self.models.contains_key(name)
    }

    /// Whether `name` has a resident version `id`.
    pub fn has_version(&self, name: &str, id: &str) -> bool {
        self.models
            .get(name)
            .is_some_and(|e| e.version_index(id).is_some())
    }

    /// `(models, total resident versions)` for health reporting.
    pub fn counts(&self) -> (usize, usize) {
        (
            self.models.len(),
            self.models.values().map(|e| e.versions.len()).sum(),
        )
    }

    /// Whether any model is degraded (daemon-level health flag; v1 parity
    /// for the single-model case).
    pub fn degraded(&self) -> bool {
        self.models.values().any(|e| e.degraded)
    }

    /// The default model's active artifact path (health `model` field,
    /// reload/save default target).
    pub fn default_path(&self) -> PathBuf {
        self.models
            .get(DEFAULT_MODEL)
            .map(|e| e.versions[e.active].path.clone())
            .unwrap_or_default()
    }

    /// The failure that last degraded `name`, if any.
    pub fn last_error(&self, name: &str) -> Option<String> {
        self.models.get(name).and_then(|e| e.last_error.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtperf_mtree::{Dataset, M5Params, ModelTree};

    fn tiny_tree(slope: f64) -> ModelTree {
        let names = vec!["a0".to_string(), "a1".to_string()];
        let rows: Vec<Vec<f64>> = (0..24)
            .map(|r| vec![((r * 7) % 11) as f64, ((r * 3) % 5) as f64])
            .collect();
        let targets: Vec<f64> = rows.iter().map(|r| 1.0 + slope * r[0] - r[1]).collect();
        let data = Dataset::from_rows(names, &rows, &targets).unwrap();
        ModelTree::fit(&data, &M5Params::default().with_min_instances(4)).unwrap()
    }

    struct Fixture {
        dir: PathBuf,
        a: PathBuf,
        b: PathBuf,
        poison: PathBuf,
    }

    fn fixture(tag: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!(
            "mtperf-registry-tests-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        let poison = dir.join("poison.json");
        tiny_tree(2.0).save(&a).unwrap();
        tiny_tree(-3.0).save(&b).unwrap();
        std::fs::write(&poison, "{ not a model }").unwrap();
        Fixture { dir, a, b, poison }
    }

    #[test]
    fn open_serves_default_model_v1() {
        let fx = fixture("open");
        let reg = Registry::open(&fx.a, None).unwrap();
        assert!(reg.contains(DEFAULT_MODEL));
        assert_eq!(reg.counts(), (1, 1));
        let r = reg.resolve(None, None).unwrap();
        assert_eq!(r.version, "v1");
        assert!(!r.degraded);
        assert_eq!(reg.default_path(), fx.a);
        assert!(Registry::open(&fx.poison, None).is_err());
        let _ = std::fs::remove_dir_all(&fx.dir);
    }

    #[test]
    fn load_promote_rollback_lifecycle() {
        let fx = fixture("lifecycle");
        let mut reg = Registry::open(&fx.a, None).unwrap();

        // Load a second tenant: its first version becomes active.
        reg.load("cand", Some("v1"), &fx.b).unwrap();
        assert_eq!(reg.resolve(Some("cand"), None).unwrap().version, "v1");

        // A later load does not move the active pointer…
        reg.load("cand", Some("v2"), &fx.a).unwrap();
        assert_eq!(reg.resolve(Some("cand"), None).unwrap().version, "v1");
        // …but the version is resident and predict can pin it.
        assert_eq!(reg.resolve(Some("cand"), Some("v2")).unwrap().version, "v2");

        // Promote-by-version flips the pointer; rollback pops it back.
        reg.promote("cand", Some("v2"), None).unwrap();
        assert_eq!(reg.resolve(Some("cand"), None).unwrap().version, "v2");
        assert_eq!(reg.rollback("cand").unwrap(), "v1");
        assert_eq!(reg.resolve(Some("cand"), None).unwrap().version, "v1");
        // History exhausted: a second rollback is a typed failure.
        assert!(reg.rollback("cand").is_err());

        // Duplicate version id and unknown lookups are refused.
        assert!(reg.load("cand", Some("v1"), &fx.a).is_err());
        assert!(reg.promote("ghost", Some("v1"), None).is_err());
        assert_eq!(
            reg.resolve(Some("ghost"), None).unwrap_err(),
            LookupError::UnknownModel("ghost".to_string())
        );
        assert_eq!(
            reg.resolve(Some("cand"), Some("v9")).unwrap_err(),
            LookupError::UnknownVersion("cand".to_string(), "v9".to_string())
        );
        let _ = std::fs::remove_dir_all(&fx.dir);
    }

    #[test]
    fn poisoned_promote_keeps_last_known_good() {
        let fx = fixture("poisoned");
        let mut reg = Registry::open(&fx.a, None).unwrap();
        let before = reg.resolve(None, None).unwrap();
        let err = reg
            .promote(DEFAULT_MODEL, None, Some(&fx.poison))
            .unwrap_err();
        assert!(!err.is_empty());
        let after = reg.resolve(None, None).unwrap();
        assert!(after.degraded, "failed promote must mark degraded");
        assert_eq!(after.version, before.version);
        assert_eq!(
            after.model.tree.predict(&[3.0, 1.0]).to_bits(),
            before.model.tree.predict(&[3.0, 1.0]).to_bits(),
            "previous version must keep serving bit-identically"
        );
        assert!(reg.last_error(DEFAULT_MODEL).is_some());

        // A good promote heals the degradation.
        reg.promote(DEFAULT_MODEL, None, Some(&fx.b)).unwrap();
        assert!(!reg.resolve(None, None).unwrap().degraded);
        let _ = std::fs::remove_dir_all(&fx.dir);
    }

    #[test]
    fn reload_replaces_in_place_and_degrades_on_poison() {
        let fx = fixture("reload");
        let mut reg = Registry::open(&fx.a, None).unwrap();
        // Reloading the same path must not grow the version list (the v1
        // redeploy idiom).
        reg.reload(None).unwrap();
        reg.reload(None).unwrap();
        assert_eq!(reg.counts(), (1, 1));

        std::fs::write(&fx.a, "poisoned mid-deploy").unwrap();
        assert!(reg.reload(None).is_err());
        assert!(reg.degraded());
        // Still serving.
        assert!(reg.resolve(None, None).is_ok());

        tiny_tree(2.0).save(&fx.a).unwrap();
        reg.reload(None).unwrap();
        assert!(!reg.degraded());

        // A reload from a different path installs a fresh version.
        reg.reload(Some(&fx.b)).unwrap();
        assert_eq!(reg.counts(), (1, 2));
        assert_eq!(reg.default_path(), fx.b);
        let _ = std::fs::remove_dir_all(&fx.dir);
    }

    #[test]
    fn manifest_roundtrip_reopens_the_promoted_version() {
        let fx = fixture("manifest");
        let manifest = fx.dir.join("registry.json");
        {
            let mut reg = Registry::open(&fx.a, Some(&manifest)).unwrap();
            reg.load("cand", Some("exp"), &fx.b).unwrap();
            reg.promote(DEFAULT_MODEL, Some("vb"), Some(&fx.b)).unwrap();
            assert!(manifest.exists(), "mutations persist the manifest");
        }
        let reg = Registry::open(&fx.a, Some(&manifest)).unwrap();
        assert_eq!(reg.counts(), (2, 3));
        let r = reg.resolve(None, None).unwrap();
        assert_eq!(r.version, "vb", "restart must reopen the promoted version");
        assert!(!r.degraded);
        assert_eq!(reg.resolve(Some("cand"), None).unwrap().version, "exp");
        let _ = std::fs::remove_dir_all(&fx.dir);
    }

    #[test]
    fn restart_with_poisoned_promoted_version_falls_back_validated() {
        let fx = fixture("fallback");
        let manifest = fx.dir.join("registry.json");
        {
            let mut reg = Registry::open(&fx.a, Some(&manifest)).unwrap();
            reg.promote(DEFAULT_MODEL, Some("vb"), Some(&fx.b)).unwrap();
        }
        // The promoted artifact is destroyed between runs: restart must
        // fall back to the surviving validated version, degraded, never
        // fail to open.
        std::fs::write(&fx.b, "torn").unwrap();
        let reg = Registry::open(&fx.a, Some(&manifest)).unwrap();
        let r = reg.resolve(None, None).unwrap();
        assert_eq!(r.version, "v1", "fallback lands on a validated version");
        assert!(r.degraded);
        assert!(reg.last_error(DEFAULT_MODEL).is_some());
        let _ = std::fs::remove_dir_all(&fx.dir);
    }

    #[test]
    fn torn_manifest_never_happens_but_garbage_is_typed() {
        let fx = fixture("garbage");
        let manifest = fx.dir.join("registry.json");
        std::fs::write(&manifest, "{ torn mid-wr").unwrap();
        let err = Registry::open(&fx.a, Some(&manifest)).unwrap_err();
        assert!(err.contains("manifest"), "{err}");
        let _ = std::fs::remove_dir_all(&fx.dir);
    }

    #[test]
    fn save_persists_the_active_version() {
        let fx = fixture("save");
        let reg = Registry::open(&fx.a, None).unwrap();
        let copy = fx.dir.join("copy.json");
        let saved = reg.save(DEFAULT_MODEL, Some(&copy)).unwrap();
        assert_eq!(saved, copy);
        let reloaded = ModelTree::load(&copy).unwrap();
        assert_eq!(reloaded.to_json(), tiny_tree(2.0).to_json());
        assert!(reg.save("ghost", None).is_err());
        let _ = std::fs::remove_dir_all(&fx.dir);
    }

    #[test]
    fn keep_versions_bounds_history_and_deletes_unreferenced_artifacts() {
        let fx = fixture("gc");
        let mut reg = Registry::open(&fx.a, None).unwrap();
        reg.set_keep_versions(Some(2));
        // Promote a chain of freshly-copied artifacts so each version has
        // its own file: c1 -> c2 -> c3.
        let copies: Vec<PathBuf> = (1..=3)
            .map(|i| {
                let p = fx.dir.join(format!("c{i}.json"));
                std::fs::copy(&fx.b, &p).unwrap();
                p
            })
            .collect();
        for p in &copies {
            reg.promote(DEFAULT_MODEL, None, Some(p)).unwrap();
        }
        // The bound holds modulo protection: active (c3) plus the newest
        // two rollback targets survive; the original v1 and c1 are gone.
        let listing = reg.list();
        let default = listing.iter().find(|m| m.name == DEFAULT_MODEL).unwrap();
        assert!(
            default.versions.len() <= 3,
            "history unbounded: {default:?}"
        );
        assert!(copies[2].exists(), "active artifact must never be deleted");
        assert!(
            !default.versions.iter().any(|v| v.id == "v1"),
            "oldest unprotected version should have been collected: {default:?}"
        );
        assert!(!fx.a.exists(), "unreferenced artifact not deleted");
        // Rollback still works: every surviving history target is intact.
        reg.rollback(DEFAULT_MODEL).unwrap();
        assert!(reg.resolve(None, None).is_ok());
        let _ = std::fs::remove_dir_all(&fx.dir);
    }

    #[test]
    fn gc_refuses_active_and_rollback_targets() {
        let fx = fixture("gc-refuse");
        let mut reg = Registry::open(&fx.a, None).unwrap();
        reg.set_keep_versions(Some(1));
        // One promote: active = new version, history = [v1]. With a bound
        // of 1 both are protected, so nothing may be collected even
        // though the list exceeds the bound.
        reg.promote(DEFAULT_MODEL, None, Some(&fx.b)).unwrap();
        assert!(fx.a.exists(), "last-known-good artifact must survive GC");
        assert!(fx.b.exists(), "active artifact must survive GC");
        assert_eq!(reg.rollback(DEFAULT_MODEL).unwrap(), "v1");
        assert_eq!(reg.resolve(None, None).unwrap().version, "v1");
        let _ = std::fs::remove_dir_all(&fx.dir);
    }

    #[test]
    fn gc_keeps_artifacts_referenced_by_other_models() {
        let fx = fixture("gc-shared");
        let mut reg = Registry::open(&fx.a, None).unwrap();
        reg.set_keep_versions(Some(1));
        // Another tenant serves fx.a too: even when the default model's
        // v1 is collected, the shared artifact file must stay on disk.
        reg.load("other", None, &fx.a).unwrap();
        reg.promote(DEFAULT_MODEL, None, Some(&fx.b)).unwrap();
        // Second promote pushes v1 off the (bounded) history stack.
        let c = fx.dir.join("c.json");
        std::fs::copy(&fx.b, &c).unwrap();
        reg.promote(DEFAULT_MODEL, None, Some(&c)).unwrap();
        assert!(
            fx.a.exists(),
            "artifact referenced by another model was deleted"
        );
        assert_eq!(reg.resolve(Some("other"), None).unwrap().version, "v1");
        let _ = std::fs::remove_dir_all(&fx.dir);
    }

    #[test]
    fn list_reports_versions_and_active_markers() {
        let fx = fixture("list");
        let mut reg = Registry::open(&fx.a, None).unwrap();
        reg.load("cand", None, &fx.b).unwrap();
        let listing = reg.list();
        assert_eq!(listing.len(), 2);
        let cand = listing.iter().find(|m| m.name == "cand").unwrap();
        assert_eq!(cand.active, "v1");
        assert!(cand.versions[0].active);
        let _ = std::fs::remove_dir_all(&fx.dir);
    }
}
