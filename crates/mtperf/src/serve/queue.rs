//! Bounded MPMC job queue with explicit backpressure and drain semantics.
//!
//! The serving daemon needs three properties from its queue that
//! `std::sync::mpsc` does not give directly:
//!
//! 1. **Non-blocking bounded push** — when the queue is full the *client*
//!    must hear `overloaded` immediately (explicit backpressure), not have
//!    its session thread block and silently grow latency.
//! 2. **Multi-consumer pop** — N worker threads drain one queue.
//! 3. **Close-for-drain** — shutdown closes the queue; workers finish what
//!    is already queued and then observe end-of-work deterministically.
//!
//! A `Mutex<VecDeque>` plus one condvar is enough; contention is per-request
//! (microseconds of critical section), not per-row.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Queue is at capacity: backpressure, retry later.
    Full,
    /// Queue is closed for drain: no new work is accepted.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    open: bool,
}

/// A bounded multi-producer multi-consumer FIFO queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                open: true,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Capacity the queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes without blocking; on success returns the queue depth
    /// including the new item.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !s.open {
            return Err(PushError::Closed);
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks for the next item; `None` once the queue is closed *and*
    /// drained (the worker-exit signal).
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if !s.open {
                return None;
            }
            s = self.available.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pops the next item without blocking; `None` when the queue is
    /// currently empty (open or closed). The deterministic-simulation
    /// harness drains the queue with this from a single logical thread,
    /// where a blocking [`BoundedQueue::pop`] would deadlock.
    pub fn try_pop(&self) -> Option<T> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .pop_front()
    }

    /// Closes the queue: pushes start failing, already-queued items still
    /// drain, and blocked `pop`s wake to observe the close.
    pub fn close(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.open = false;
        drop(s);
        self.available.notify_all();
    }

    /// Current number of queued items.
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        !self.state.lock().unwrap_or_else(|e| e.into_inner()).open
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_fifo_and_depth() {
        let q = BoundedQueue::new(3);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_queue_refuses_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        // Popping one frees one slot.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(2));
    }

    #[test]
    fn try_pop_never_blocks() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_pop(), None, "empty open queue");
        q.try_push(5).unwrap();
        assert_eq!(q.try_pop(), Some(5));
        q.close();
        assert_eq!(q.try_pop(), None, "empty closed queue");
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(9).unwrap();
        assert_eq!(q.try_push(10), Err(PushError::Full));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(3), Err(PushError::Closed));
        // Already-queued work still drains, then pop reports end-of-work.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            })
            .collect();
        // Give consumers a moment to block, then close: all must return.
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn multi_producer_multi_consumer_delivers_everything() {
        let q = Arc::new(BoundedQueue::<u32>::new(64));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..16 {
                        // Bounded queue: spin on Full (tests only).
                        loop {
                            match q.try_push(p * 100 + i) {
                                Ok(_) => break,
                                Err(PushError::Full) => thread::yield_now(),
                                Err(PushError::Closed) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut want: Vec<u32> = (0..4)
            .flat_map(|p| (0..16).map(move |i| p * 100 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(all, want);
    }
}
