//! The router layer: one protocol line in, typed dispatch out.
//!
//! Sits between [`super::transport`] (which owns connections and framing
//! buffers) and the engine/registry layers (which own models and
//! compute). The router:
//!
//! * parses each bounded line into a [`Request`] and answers malformed
//!   input with typed `bad_request` errors — a bad line never kills its
//!   connection, let alone the daemon;
//! * validates predict payloads (shape, width, finiteness, row limits)
//!   *before* anything is queued;
//! * resolves the target model/version through the registry (v2 requests
//!   name them; v1 requests fall through to the default model), consults
//!   the prediction cache, and admits the job through the per-tenant
//!   fair queue;
//! * dispatches the control-plane ops: `health`/`ready`, `reload`
//!   (v1 default-model semantics), `save`, `load`, `promote`,
//!   `rollback`, `list`, `shutdown`.
//!
//! Every response goes back through the *issuing connection's* shared
//! writer — the routing invariant the DST harness checks across
//! interleaved connections.

use std::io::BufRead;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use mtperf_linalg::{CancelToken, Matrix};

use super::admission::PushError;
use super::cache::MAX_CACHED_ROWS;
use super::protocol::{self, LineRead, Request, Response};
use super::registry::{LookupError, DEFAULT_MODEL};
use super::{send, Job, SessionControl, Shared, SharedWriter, SHUTDOWN};

fn tenant_of(req: &Request) -> String {
    req.model
        .clone()
        .unwrap_or_else(|| DEFAULT_MODEL.to_string())
}

fn handle_predict(shared: &Arc<Shared>, req: Request, writer: &SharedWriter) {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    mtperf_obs::add("serve.requests", 1);
    let id = req.id;
    if shared.draining.load(Ordering::SeqCst) {
        send(
            writer,
            &Response::error(id, protocol::E_SHUTTING_DOWN, "daemon is draining"),
        );
        return;
    }
    let tenant = req
        .model
        .clone()
        .unwrap_or_else(|| DEFAULT_MODEL.to_string());
    let resolved =
        match super::lock_registry(shared).resolve(req.model.as_deref(), req.version.as_deref()) {
            Ok(r) => r,
            Err(e) => {
                send(
                    writer,
                    &Response::error(id, protocol::E_UNKNOWN_MODEL, e.to_string()),
                );
                return;
            }
        };
    let rows = match req.rows {
        Some(rows) if !rows.is_empty() => rows,
        _ => {
            send(
                writer,
                &Response::error(
                    id,
                    protocol::E_BAD_REQUEST,
                    "predict requires a non-empty rows array",
                ),
            );
            return;
        }
    };
    if rows.len() > protocol::MAX_ROWS_PER_REQUEST {
        send(
            writer,
            &Response::error(
                id,
                protocol::E_BAD_REQUEST,
                format!(
                    "request has {} rows, limit is {}",
                    rows.len(),
                    protocol::MAX_ROWS_PER_REQUEST
                ),
            ),
        );
        return;
    }
    let n_attrs = resolved.model.n_attrs();
    let width = rows[0].len();
    if width < n_attrs {
        send(
            writer,
            &Response::error(
                id,
                protocol::E_BAD_REQUEST,
                format!("rows have {width} values, model expects {n_attrs}"),
            ),
        );
        return;
    }
    if rows.iter().any(|r| r.len() != width) {
        send(
            writer,
            &Response::error(id, protocol::E_BAD_REQUEST, "rows have unequal lengths"),
        );
        return;
    }
    if rows.iter().flatten().any(|v| !v.is_finite()) {
        send(
            writer,
            &Response::error(
                id,
                protocol::E_BAD_REQUEST,
                "rows contain non-finite values",
            ),
        );
        return;
    }
    // The deadline outranks the cache: an already-expired request is a
    // deadline miss even when a memoized answer exists (v1 contract — a
    // `deadline_ms: 0` probe must report `deadline_exceeded`).
    let token = match req.deadline_ms.or(shared.default_deadline_ms) {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::new(),
    };
    if token.is_cancelled() {
        shared.stats.deadline_misses.fetch_add(1, Ordering::Relaxed);
        mtperf_obs::add("serve.deadline_miss", 1);
        send(
            writer,
            &Response::error(id, protocol::E_DEADLINE, "deadline expired while queued"),
        );
        return;
    }
    // The cache may answer without touching the queue at all. Degraded
    // entries bypass it both ways: a hit must never hide the degraded
    // health flag, and a degraded result must never be memoized.
    let mut cacheable = rows.len() <= MAX_CACHED_ROWS && !resolved.degraded;
    if cacheable {
        let cache = shared.cache.lock().unwrap_or_else(|e| e.into_inner());
        if !cache.enabled() {
            cacheable = false;
        } else if let Some(predictions) = cache.lookup(&tenant, &resolved.version, &rows) {
            drop(cache);
            shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            mtperf_obs::add("serve.cache_hits", 1);
            send(writer, &Response::predictions(id, predictions, false));
            return;
        } else {
            shared.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            mtperf_obs::add("serve.cache_misses", 1);
        }
    }
    let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    let matrix = match Matrix::from_rows(&refs) {
        Ok(m) => m,
        Err(e) => {
            send(
                writer,
                &Response::error(id, protocol::E_BAD_REQUEST, e.to_string()),
            );
            return;
        }
    };
    let job = Job {
        id: id.clone(),
        tenant: tenant.clone(),
        version: resolved.version,
        model: resolved.model,
        model_degraded: resolved.degraded,
        raw_rows: cacheable.then(|| rows.clone()),
        rows: matrix,
        token,
        writer: Arc::clone(writer),
    };
    match shared.queue.try_push(&tenant, job) {
        Ok(depth) => mtperf_obs::gauge("serve.queue_depth", depth as f64),
        Err(PushError::Full) => {
            shared.stats.overloaded.fetch_add(1, Ordering::Relaxed);
            mtperf_obs::add("serve.overloaded", 1);
            send(
                writer,
                &Response::error(
                    id,
                    protocol::E_OVERLOADED,
                    format!("queue full ({} requests)", shared.queue.capacity()),
                ),
            );
        }
        Err(PushError::Quota) => {
            shared.stats.quota_refusals.fetch_add(1, Ordering::Relaxed);
            mtperf_obs::add("serve.quota_refusals", 1);
            send(
                writer,
                &Response::error(
                    id,
                    protocol::E_OVERLOADED,
                    format!(
                        "tenant quota full ({} requests queued for model {tenant:?})",
                        shared.queue.quota()
                    ),
                ),
            );
        }
        Err(PushError::Closed) => {
            send(
                writer,
                &Response::error(id, protocol::E_SHUTTING_DOWN, "daemon is draining"),
            );
        }
    }
}

fn health_payload(shared: &Shared) -> protocol::Health {
    let (model_path, degraded, models, versions, per_model) = {
        let reg = super::lock_registry(shared);
        let (m, v) = reg.counts();
        // One health row per model: a fleet router merges these (a model
        // is fleet-degraded only when *no* replica serves it clean), which
        // the single global flag cannot express.
        let per_model: Vec<protocol::ModelHealth> = reg
            .list()
            .into_iter()
            .map(|info| protocol::ModelHealth {
                last_error: reg.last_error(&info.name),
                name: info.name,
                degraded: info.degraded,
                active: info.active,
            })
            .collect();
        (
            reg.default_path().display().to_string(),
            reg.degraded(),
            m,
            v,
            per_model,
        )
    };
    let draining = shared.draining.load(Ordering::SeqCst);
    protocol::Health {
        ready: !draining,
        degraded,
        model: model_path,
        workers: shared.workers,
        queue_depth: shared.queue.depth(),
        queue_capacity: shared.queue.capacity(),
        requests: shared.stats.requests.load(Ordering::Relaxed),
        overloaded: shared.stats.overloaded.load(Ordering::Relaxed),
        deadline_misses: shared.stats.deadline_misses.load(Ordering::Relaxed),
        degraded_responses: shared.stats.degraded_responses.load(Ordering::Relaxed),
        reloads: shared.stats.reloads.load(Ordering::Relaxed),
        models,
        versions,
        cache_hits: shared.stats.cache_hits.load(Ordering::Relaxed),
        cache_misses: shared.stats.cache_misses.load(Ordering::Relaxed),
        quota_refusals: shared.stats.quota_refusals.load(Ordering::Relaxed),
        per_model,
        draining,
    }
}

fn handle_reload(shared: &Arc<Shared>, req: Request, writer: &SharedWriter) {
    if req.model.as_deref().is_some_and(|m| m != DEFAULT_MODEL) {
        send(
            writer,
            &Response::error(
                req.id,
                protocol::E_BAD_REQUEST,
                "reload targets the default model; use promote for named models",
            ),
        );
        return;
    }
    let path = req.path.as_ref().map(PathBuf::from);
    let result = super::lock_registry(shared).reload(path.as_deref());
    match result {
        Ok(()) => {
            shared.stats.reloads.fetch_add(1, Ordering::Relaxed);
            mtperf_obs::add("serve.reloads", 1);
            // A reload can replace a resident version's model in place;
            // memoized predictions for it would be stale.
            shared
                .cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clear();
            send(writer, &Response::ack(req.id));
        }
        Err(e) => {
            mtperf_obs::add("serve.reload_failures", 1);
            send(
                writer,
                &Response::error(req.id, protocol::E_RELOAD_FAILED, e),
            );
        }
    }
}

fn handle_load(shared: &Arc<Shared>, req: Request, writer: &SharedWriter) {
    mtperf_obs::add("serve.registry_ops", 1);
    let Some(path) = req.path.as_ref().map(PathBuf::from) else {
        send(
            writer,
            &Response::error(req.id, protocol::E_BAD_REQUEST, "load requires a path"),
        );
        return;
    };
    let name = tenant_of(&req);
    let result = super::lock_registry(shared).load(&name, req.version.as_deref(), &path);
    match result {
        Ok(()) => send(writer, &Response::ack(req.id)),
        Err(e) => send(
            writer,
            &Response::error(req.id, protocol::E_RELOAD_FAILED, e),
        ),
    }
}

fn handle_promote(shared: &Arc<Shared>, req: Request, writer: &SharedWriter) {
    mtperf_obs::add("serve.registry_ops", 1);
    let name = tenant_of(&req);
    let path = req.path.as_ref().map(PathBuf::from);
    if path.is_none() && req.version.is_none() {
        send(
            writer,
            &Response::error(
                req.id,
                protocol::E_BAD_REQUEST,
                "promote requires a version or a path",
            ),
        );
        return;
    }
    {
        let reg = super::lock_registry(shared);
        if !reg.contains(&name) {
            send(
                writer,
                &Response::error(
                    req.id,
                    protocol::E_UNKNOWN_MODEL,
                    LookupError::UnknownModel(name).to_string(),
                ),
            );
            return;
        }
        if path.is_none() {
            let v = req.version.as_deref().expect("checked above");
            if !reg.has_version(&name, v) {
                send(
                    writer,
                    &Response::error(
                        req.id,
                        protocol::E_UNKNOWN_MODEL,
                        LookupError::UnknownVersion(name, v.to_string()).to_string(),
                    ),
                );
                return;
            }
        }
    }
    let result =
        super::lock_registry(shared).promote(&name, req.version.as_deref(), path.as_deref());
    match result {
        Ok(()) => send(writer, &Response::ack(req.id)),
        Err(e) => {
            mtperf_obs::add("serve.promote_failures", 1);
            send(
                writer,
                &Response::error(req.id, protocol::E_PROMOTE_FAILED, e),
            );
        }
    }
}

fn handle_rollback(shared: &Arc<Shared>, req: Request, writer: &SharedWriter) {
    mtperf_obs::add("serve.registry_ops", 1);
    let name = tenant_of(&req);
    if !super::lock_registry(shared).contains(&name) {
        send(
            writer,
            &Response::error(
                req.id,
                protocol::E_UNKNOWN_MODEL,
                LookupError::UnknownModel(name).to_string(),
            ),
        );
        return;
    }
    let result = super::lock_registry(shared).rollback(&name);
    match result {
        Ok(_) => send(writer, &Response::ack(req.id)),
        Err(e) => send(
            writer,
            &Response::error(req.id, protocol::E_ROLLBACK_FAILED, e),
        ),
    }
}

/// Dispatches one protocol line. Returns [`SessionControl::Shutdown`]
/// only for an acked `shutdown` request.
pub(crate) fn handle_line(
    shared: &Arc<Shared>,
    line: &str,
    writer: &SharedWriter,
) -> SessionControl {
    let req: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            send(
                writer,
                &Response::error(
                    None,
                    protocol::E_BAD_REQUEST,
                    format!("unparsable request: {e}"),
                ),
            );
            return SessionControl::Continue;
        }
    };
    match req.op.as_deref() {
        Some("predict") => handle_predict(shared, req, writer),
        Some("health" | "ready") => {
            send(writer, &Response::health(req.id, health_payload(shared)));
        }
        Some("reload") => handle_reload(shared, req, writer),
        Some("load") => handle_load(shared, req, writer),
        Some("promote") => handle_promote(shared, req, writer),
        Some("rollback") => handle_rollback(shared, req, writer),
        Some("list") => {
            mtperf_obs::add("serve.registry_ops", 1);
            let models = super::lock_registry(shared).list();
            send(writer, &Response::models(req.id, models));
        }
        Some("save") => {
            let name = tenant_of(&req);
            let path = req.path.as_ref().map(PathBuf::from);
            let result = super::lock_registry(shared).save(&name, path.as_deref());
            match result {
                Ok(_) => send(writer, &Response::ack(req.id)),
                Err(e) => send(writer, &Response::error(req.id, protocol::E_SAVE_FAILED, e)),
            }
        }
        Some("shutdown") => {
            send(writer, &Response::ack(req.id));
            return SessionControl::Shutdown;
        }
        Some(other) => send(
            writer,
            &Response::error(
                req.id,
                protocol::E_BAD_REQUEST,
                format!("unknown op {other:?}"),
            ),
        ),
        None => send(
            writer,
            &Response::error(req.id, protocol::E_BAD_REQUEST, "request is missing op"),
        ),
    }
    SessionControl::Continue
}

/// Drains one connection: reads bounded lines, dispatches, stops at EOF
/// or after a `shutdown` request (which also flags the daemon to drain).
pub(crate) fn run_session<R: BufRead>(shared: &Arc<Shared>, mut reader: R, writer: SharedWriter) {
    loop {
        match protocol::read_bounded_line(&mut reader) {
            Ok(LineRead::Eof) => return,
            Ok(LineRead::TooLong) => send(
                &writer,
                &Response::error(
                    None,
                    protocol::E_BAD_REQUEST,
                    format!("request line exceeds {} bytes", protocol::MAX_LINE_BYTES),
                ),
            ),
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                if let SessionControl::Shutdown = handle_line(shared, &line, &writer) {
                    SHUTDOWN.store(true, Ordering::SeqCst);
                    return;
                }
            }
            // A broken connection ends its session, never the daemon.
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{test_shared, test_shared_with, Capture};
    use super::super::worker_loop;
    use super::*;
    use mtperf_mtree::ModelTree;
    use std::io;
    use std::sync::Mutex;

    #[test]
    fn malformed_lines_get_bad_request_responses() {
        let (shared, _, _) = test_shared("malformed", 4);
        let cap = Capture::default();
        for line in [
            "this is not json",
            r#"{"id":"x"}"#,
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"predict"}"#,
            r#"{"op":"predict","rows":[]}"#,
            r#"{"op":"predict","rows":[[1.0]]}"#,
            r#"{"op":"predict","rows":[[1.0,2.0],[1.0,2.0,3.0]]}"#,
            r#"{"op":"predict","rows":[[1.0,1e999]]}"#,
            r#"{"op":"load"}"#,
            r#"{"op":"promote"}"#,
        ] {
            assert!(matches!(
                handle_line(&shared, line, &cap.shared()),
                SessionControl::Continue
            ));
        }
        let out = cap.text();
        assert_eq!(out.lines().count(), 10, "{out}");
        assert_eq!(out.matches("\"kind\":\"bad_request\"").count(), 10, "{out}");
        // Malformed predicts never reach the queue.
        assert_eq!(shared.queue.depth(), 0);
    }

    #[test]
    fn giant_payloads_get_typed_errors_not_resource_exhaustion() {
        let (shared, _, _) = test_shared("giant", 4);

        // A predict with more rows than MAX_ROWS_PER_REQUEST: refused with
        // a typed bad_request before any matrix is built or queued.
        let cap = Capture::default();
        let mut line = String::from(r#"{"op":"predict","id":"big","rows":["#);
        for i in 0..=protocol::MAX_ROWS_PER_REQUEST {
            if i > 0 {
                line.push(',');
            }
            line.push_str("[1.0,2.0]");
        }
        line.push_str("]}");
        handle_line(&shared, &line, &cap.shared());
        let out = cap.text();
        assert!(out.contains("\"kind\":\"bad_request\""), "{out}");
        assert!(out.contains("\"id\":\"big\""), "{out}");
        assert_eq!(shared.queue.depth(), 0);

        // A line over MAX_LINE_BYTES arriving over a real session: the
        // overflow is discarded, a typed error goes back, and the next
        // request on the same connection still works.
        let stream = mtperf_detsim::SimStream::new();
        stream.push_input(&vec![b'z'; protocol::MAX_LINE_BYTES + 1]);
        stream.push_input(b"\n{\"op\":\"health\",\"id\":\"after\"}\n");
        // Invalid UTF-8 on the wire: lossy-decoded, answered as a typed
        // parse error, session continues.
        stream.push_input(&[0xFF, 0xFE, b'{', b'\n']);
        stream.close_input();
        let (reader, writer_half) = stream.split();
        let writer: SharedWriter = Arc::new(Mutex::new(Box::new(writer_half)));
        run_session(&shared, io::BufReader::new(reader), writer);
        let out = String::from_utf8_lossy(&stream.output()).into_owned();
        assert_eq!(out.lines().count(), 3, "{out}");
        assert!(
            out.contains(&format!(
                "request line exceeds {} bytes",
                protocol::MAX_LINE_BYTES
            )),
            "{out}"
        );
        assert!(out.contains("\"id\":\"after\""), "{out}");
        assert_eq!(out.matches("\"kind\":\"bad_request\"").count(), 2, "{out}");
    }

    #[test]
    fn full_queue_answers_overloaded_without_blocking() {
        // Queue of 1 and no workers draining it.
        let (shared, _, _) = test_shared("overload", 1);
        let cap = Capture::default();
        let predict = r#"{"op":"predict","id":"p","rows":[[1.0,2.0]]}"#;
        handle_line(&shared, predict, &cap.shared());
        assert_eq!(shared.queue.depth(), 1);
        assert_eq!(cap.text(), "", "first request queues silently");
        handle_line(&shared, predict, &cap.shared());
        let out = cap.text();
        assert!(out.contains("\"kind\":\"overloaded\""), "{out}");
        assert_eq!(shared.stats.overloaded.load(Ordering::Relaxed), 1);
        assert_eq!(shared.queue.depth(), 1, "refused request was not queued");
    }

    #[test]
    fn tenant_quota_refusal_is_typed_and_counted() {
        // Global room for 8 but only 1 per tenant.
        let (shared, _, _) = test_shared_with("quota", 8, None, 1, 0);
        let cap = Capture::default();
        let predict = r#"{"op":"predict","id":"p","rows":[[1.0,2.0]]}"#;
        handle_line(&shared, predict, &cap.shared());
        handle_line(&shared, predict, &cap.shared());
        let out = cap.text();
        assert!(out.contains("tenant quota full"), "{out}");
        assert!(out.contains("\"kind\":\"overloaded\""), "{out}");
        assert_eq!(shared.stats.quota_refusals.load(Ordering::Relaxed), 1);
        assert_eq!(shared.stats.overloaded.load(Ordering::Relaxed), 0);
        // Health surfaces the refusal counter.
        let cap2 = Capture::default();
        handle_line(&shared, r#"{"op":"health"}"#, &cap2.shared());
        assert!(
            cap2.text().contains("\"quota_refusals\":1"),
            "{}",
            cap2.text()
        );
    }

    #[test]
    fn health_reports_stats_and_drain_state() {
        let (shared, path, _) = test_shared("health", 4);
        let cap = Capture::default();
        handle_line(
            &shared,
            r#"{"op":"predict","rows":[[1.0,2.0]]}"#,
            &cap.shared(),
        );
        handle_line(&shared, r#"{"op":"health","id":"h1"}"#, &cap.shared());
        let out = cap.text();
        assert!(out.contains("\"ready\":true"), "{out}");
        assert!(out.contains("\"queue_depth\":1"), "{out}");
        assert!(out.contains("\"requests\":1"), "{out}");
        assert!(out.contains("\"models\":1"), "{out}");
        assert!(out.contains("\"versions\":1"), "{out}");
        assert!(
            out.contains(&format!(
                "\"model\":{}",
                serde_json::to_string(&path.display().to_string()).unwrap()
            )),
            "{out}"
        );

        shared.draining.store(true, Ordering::SeqCst);
        let cap2 = Capture::default();
        handle_line(&shared, r#"{"op":"ready"}"#, &cap2.shared());
        let out2 = cap2.text();
        assert!(out2.contains("\"ready\":false"), "{out2}");
        assert!(out2.contains("\"draining\":true"), "{out2}");

        // Draining daemons refuse new predictions explicitly.
        let cap3 = Capture::default();
        handle_line(
            &shared,
            r#"{"op":"predict","rows":[[1.0,2.0]]}"#,
            &cap3.shared(),
        );
        assert!(
            cap3.text().contains("\"kind\":\"shutting_down\""),
            "{}",
            cap3.text()
        );
    }

    #[test]
    fn poisoned_reload_degrades_but_keeps_serving() {
        let (shared, path, tree) = test_shared("reload", 8);
        let cap = Capture::default();

        std::fs::write(&path, "poisoned").unwrap();
        handle_line(&shared, r#"{"op":"reload","id":"g1"}"#, &cap.shared());
        let out = cap.text();
        assert!(out.contains("\"kind\":\"reload_failed\""), "{out}");
        assert!(out.contains("\"degraded\":true"), "{out}");

        // Predictions still flow, marked degraded, from last known good.
        let cap2 = Capture::default();
        handle_line(
            &shared,
            r#"{"op":"predict","id":"p1","rows":[[1.0,2.0]]}"#,
            &cap2.shared(),
        );
        shared.queue.close();
        worker_loop(&shared);
        let out2 = cap2.text();
        assert!(out2.contains("\"ok\":true"), "{out2}");
        assert!(out2.contains("\"degraded\":true"), "{out2}");
        assert_eq!(shared.stats.degraded_responses.load(Ordering::Relaxed), 1);

        // A good file heals it.
        tree.save(&path).unwrap();
        let cap3 = Capture::default();
        handle_line(&shared, r#"{"op":"reload","id":"g2"}"#, &cap3.shared());
        assert!(cap3.text().contains("\"ok\":true"), "{}", cap3.text());
        assert!(!super::super::lock_registry(&shared).degraded());
        assert_eq!(shared.stats.reloads.load(Ordering::Relaxed), 1);

        // Reload is a default-model op; named models go through promote.
        let cap4 = Capture::default();
        handle_line(
            &shared,
            r#"{"op":"reload","model":"alpha"}"#,
            &cap4.shared(),
        );
        assert!(
            cap4.text().contains("\"kind\":\"bad_request\""),
            "{}",
            cap4.text()
        );
    }

    #[test]
    fn registry_ops_route_through_one_session() {
        let (shared, path, tree) = test_shared("registry-ops", 8);
        let alt = path.with_file_name("alt.json");
        tree.save(&alt).unwrap();
        let poison = path.with_file_name("poison.json");
        std::fs::write(&poison, "{ nope").unwrap();
        let alt_json = serde_json::to_string(&alt.display().to_string()).unwrap();
        let poison_json = serde_json::to_string(&poison.display().to_string()).unwrap();

        let cap = Capture::default();
        // load a second tenant, predict against it by name, promote a new
        // version, roll it back, list the inventory.
        for (line, want) in [
            (
                format!(
                    r#"{{"op":"load","id":"l1","model":"alpha","version":"v1","path":{alt_json}}}"#
                ),
                "\"ok\":true",
            ),
            (
                r#"{"op":"predict","id":"p1","model":"alpha","rows":[[1.0,2.0]]}"#.to_string(),
                "",
            ),
            (
                format!(r#"{{"op":"promote","id":"m1","model":"alpha","path":{alt_json}}}"#),
                "\"ok\":true",
            ),
            (
                r#"{"op":"rollback","id":"b1","model":"alpha"}"#.to_string(),
                "\"ok\":true",
            ),
            (
                r#"{"op":"rollback","id":"b2","model":"alpha"}"#.to_string(),
                "\"kind\":\"rollback_failed\"",
            ),
            (r#"{"op":"list","id":"ls"}"#.to_string(), "\"models\":["),
            (
                r#"{"op":"predict","id":"p2","model":"ghost","rows":[[1.0,2.0]]}"#.to_string(),
                "\"kind\":\"unknown_model\"",
            ),
            (
                r#"{"op":"promote","id":"m2","model":"ghost","version":"v1"}"#.to_string(),
                "\"kind\":\"unknown_model\"",
            ),
            (
                r#"{"op":"promote","id":"m3","model":"alpha","version":"v9"}"#.to_string(),
                "\"kind\":\"unknown_model\"",
            ),
            (
                format!(r#"{{"op":"promote","id":"m4","model":"alpha","path":{poison_json}}}"#),
                "\"kind\":\"promote_failed\"",
            ),
        ] {
            let cap_line = Capture::default();
            handle_line(&shared, &line, &cap_line.shared());
            let out = cap_line.text();
            assert!(out.contains(want), "line {line}\nout {out}");
            cap.append(&out);
        }
        // After the poisoned promote, alpha serves degraded from its
        // last-known-good version.
        let cap2 = Capture::default();
        handle_line(
            &shared,
            r#"{"op":"predict","id":"p3","model":"alpha","rows":[[1.0,2.0]]}"#,
            &cap2.shared(),
        );
        shared.queue.close();
        worker_loop(&shared);
        let out = cap2.text();
        assert!(out.contains("\"ok\":true"), "{out}");
        assert!(out.contains("\"degraded\":true"), "{out}");
        assert!(
            out.contains(&format!("{}", tree.predict(&[1.0, 2.0]))),
            "{out}"
        );
    }

    #[test]
    fn cache_hit_is_bit_identical_and_counted() {
        // Deep queue, cache enabled.
        let (shared, _, tree) = test_shared_with("cache", 8, None, 8, 64);
        let predict = r#"{"op":"predict","id":"c1","rows":[[1.0,2.0]]}"#;
        let cap = Capture::default();
        handle_line(&shared, predict, &cap.shared());
        assert_eq!(shared.stats.cache_misses.load(Ordering::Relaxed), 1);
        // Drain the queue so the worker memoizes the fresh result.
        while let Some(job) = shared.queue.try_pop() {
            super::super::answer(&shared, job);
        }
        let fresh = cap.text();
        assert!(fresh.contains("\"ok\":true"), "{fresh}");

        // Same rows again: answered from cache, no queueing, bit-identical.
        let cap2 = Capture::default();
        handle_line(&shared, predict, &cap2.shared());
        assert_eq!(shared.queue.depth(), 0, "hit must not queue");
        assert_eq!(shared.stats.cache_hits.load(Ordering::Relaxed), 1);
        let hit = cap2.text();
        let want = format!("{}", tree.predict(&[1.0, 2.0]));
        assert!(
            fresh.contains(&want) && hit.contains(&want),
            "{fresh} vs {hit}"
        );
        let fresh_preds = fresh.split("\"predictions\":").nth(1).unwrap();
        let hit_preds = hit.split("\"predictions\":").nth(1).unwrap();
        assert_eq!(
            fresh_preds.split(']').next(),
            hit_preds.split(']').next(),
            "cached predictions must be byte-identical to fresh ones"
        );
    }

    #[test]
    fn shutdown_op_acks_then_signals_drain() {
        let (shared, _, _) = test_shared("shutdown", 8);
        let cap = Capture::default();
        assert!(matches!(
            handle_line(&shared, r#"{"op":"shutdown","id":"bye"}"#, &cap.shared()),
            SessionControl::Shutdown
        ));
        assert!(cap.text().contains("\"id\":\"bye\""), "{}", cap.text());
    }

    #[test]
    fn save_op_persists_and_reports_failures() {
        let (shared, path, tree) = test_shared("save", 8);
        let copy = path.with_file_name("snapshot.json");
        let cap = Capture::default();
        let line = format!(
            r#"{{"op":"save","id":"s1","path":{}}}"#,
            serde_json::to_string(&copy.display().to_string()).unwrap()
        );
        handle_line(&shared, &line, &cap.shared());
        assert!(cap.text().contains("\"ok\":true"), "{}", cap.text());
        assert_eq!(ModelTree::load(&copy).unwrap().to_json(), tree.to_json());

        let cap2 = Capture::default();
        handle_line(
            &shared,
            r#"{"op":"save","path":"/nonexistent-dir/x/y.json"}"#,
            &cap2.shared(),
        );
        assert!(
            cap2.text().contains("\"kind\":\"save_failed\""),
            "{}",
            cap2.text()
        );
        // Saving an unknown model is typed, not a crash.
        let cap3 = Capture::default();
        handle_line(&shared, r#"{"op":"save","model":"ghost"}"#, &cap3.shared());
        assert!(
            cap3.text().contains("\"kind\":\"save_failed\""),
            "{}",
            cap3.text()
        );
    }

    // ---- TCP framing property tests (over SimStream) -------------------
    //
    // The transport frames exactly like the protocol layer's
    // `read_bounded_line`, but these drive the full `run_session` path
    // over a `SimStream` with adversarial read faults — the mirror of the
    // protocol proptests at the transport level.
    mod framing_props {
        use super::*;
        use mtperf_detsim::{Fault, SimStream};
        use proptest::prelude::*;

        /// Arbitrary line content: any byte value except newline (the
        /// frame delimiter); high bytes exercise lossy UTF-8 handling.
        fn line_strategy() -> impl Strategy<Value = Vec<u8>> {
            proptest::collection::vec(
                (0u32..256).prop_map(|b| if b as u8 == b'\n' { b' ' } else { b as u8 }),
                0..200,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Every non-empty line — however the reads are split or
            /// interrupted — produces exactly one response on the issuing
            /// connection, and the session survives to answer a final
            /// health probe.
            #[test]
            fn every_line_gets_exactly_one_response(
                lines in proptest::collection::vec(line_strategy(), 0..12),
                short_reads in proptest::collection::vec(1usize..16, 0..8),
                interrupts in 0usize..4,
            ) {
                let (shared, _, _) = test_shared("prop-framing", 64);
                let stream = SimStream::new();
                for chunk in &short_reads {
                    stream.script_read_fault(Fault::ShortRead(*chunk));
                }
                for _ in 0..interrupts {
                    stream.script_read_fault(Fault::InterruptRead);
                }
                let mut expected = 0usize;
                for line in &lines {
                    stream.push_input(line);
                    stream.push_input(b"\n");
                    if !String::from_utf8_lossy(line).trim().is_empty() {
                        expected += 1;
                    }
                }
                stream.push_input(b"{\"op\":\"health\",\"id\":\"fin\"}\n");
                stream.close_input();
                let (reader, writer_half) = stream.split();
                let writer: SharedWriter = Arc::new(Mutex::new(Box::new(writer_half)));
                run_session(&shared, std::io::BufReader::new(reader), writer);
                let out = String::from_utf8_lossy(&stream.output()).into_owned();
                prop_assert_eq!(out.lines().count(), expected + 1, "{}", out);
                prop_assert!(out.contains("\"id\":\"fin\""), "{}", out);
                // Random bytes must never kill the daemon or queue garbage.
                prop_assert_eq!(shared.queue.depth(), 0);
            }

            /// An over-limit line split across arbitrarily-sized reads is
            /// refused as one typed bad_request and the connection keeps
            /// serving.
            #[test]
            fn oversized_lines_fail_typed_with_connection_surviving(
                extra in 1usize..4096,
                chunk in 1usize..(1 << 20),
            ) {
                let (shared, _, _) = test_shared("prop-oversize", 64);
                let stream = SimStream::new();
                // Split the giant line into `chunk`-sized reads.
                let total = protocol::MAX_LINE_BYTES + extra;
                let mut remaining = total;
                while remaining > 0 {
                    stream.script_read_fault(Fault::ShortRead(chunk));
                    remaining = remaining.saturating_sub(chunk);
                }
                stream.push_input(&vec![b'x'; total]);
                stream.push_input(b"\n{\"op\":\"health\",\"id\":\"after\"}\n");
                stream.close_input();
                let (reader, writer_half) = stream.split();
                let writer: SharedWriter = Arc::new(Mutex::new(Box::new(writer_half)));
                run_session(&shared, std::io::BufReader::new(reader), writer);
                let out = String::from_utf8_lossy(&stream.output()).into_owned();
                prop_assert_eq!(
                    out.matches("\"kind\":\"bad_request\"").count(), 1, "{}", out
                );
                prop_assert!(
                    out.contains(&format!(
                        "request line exceeds {} bytes",
                        protocol::MAX_LINE_BYTES
                    )),
                    "{}", out
                );
                prop_assert!(out.contains("\"id\":\"after\""), "{}", out);
            }

            /// A request split byte-by-byte over the wire reassembles
            /// exactly: the predict answers with the same predictions as
            /// an unfragmented send.
            #[test]
            fn fragmented_requests_reassemble_exactly(
                a in -1e6f64..1e6, b in -1e6f64..1e6,
                chunk in 1usize..8,
            ) {
                let (shared, _, tree) = test_shared("prop-reassemble", 64);
                let line = format!(
                    "{{\"op\":\"predict\",\"id\":\"f\",\"rows\":[[{a},{b}]]}}\n"
                );
                let stream = SimStream::new();
                for _ in 0..(line.len() / chunk + 1) {
                    stream.script_read_fault(Fault::ShortRead(chunk));
                }
                stream.push_input(line.as_bytes());
                stream.close_input();
                let (reader, writer_half) = stream.split();
                let writer: SharedWriter = Arc::new(Mutex::new(Box::new(writer_half)));
                run_session(&shared, std::io::BufReader::new(reader), writer);
                while let Some(job) = shared.queue.try_pop() {
                    super::super::super::answer(&shared, job);
                }
                let out = String::from_utf8_lossy(&stream.output()).into_owned();
                prop_assert!(out.contains("\"ok\":true"), "{}", out);
                let want = format!("{}", tree.predict(&[a, b]));
                prop_assert!(out.contains(&want), "{} missing {}", out, want);
            }
        }
    }
}
