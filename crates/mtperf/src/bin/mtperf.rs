//! The `mtperf` command-line tool. See [`mtperf::cli::USAGE`].

use std::process::ExitCode;

use mtperf::cli::{dispatch, Args, USAGE};

/// Async-signal-safe SIGTERM handler: the only thing it does is store to a
/// static atomic, which `mtperf serve`'s main loop polls to drain and exit
/// cleanly. Installed for every subcommand (it is a no-op for the others,
/// whose default on SIGTERM remains process death once they never poll).
extern "C" fn on_sigterm(_signum: i32) {
    mtperf::serve::SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
}

#[cfg(unix)]
fn install_sigterm_handler() {
    // The libc `signal(2)` shim and the worker pool's type-erased task
    // handoff (`linalg::pool`) are the workspace's two unsafe cells; every
    // other library module is unsafe-free (`linalg` is `deny(unsafe_code)`
    // with one scoped allow, the rest still `forbid`). A typed
    // `extern "C" fn(i32)` keeps the registration cast-free.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

fn main() -> ExitCode {
    install_sigterm_handler();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            // Argument-syntax failures are usage errors: exit 2.
            return ExitCode::from(2);
        }
    };
    let mut stdout = std::io::stdout();
    match dispatch(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
