//! The `mtperf` command-line tool. See [`mtperf::cli::USAGE`].

use std::process::ExitCode;

use mtperf::cli::{dispatch, Args, USAGE};

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut stdout = std::io::stdout();
    match dispatch(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
