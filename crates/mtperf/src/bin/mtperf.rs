//! The `mtperf` command-line tool. See [`mtperf::cli::USAGE`].

use std::process::ExitCode;

use mtperf::cli::{dispatch, Args, USAGE};

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            // Argument-syntax failures are usage errors: exit 2.
            return ExitCode::from(2);
        }
    };
    let mut stdout = std::io::stdout();
    match dispatch(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
