//! Per-component analytical CPI estimators — the cheap, closed-form half
//! of Concorde-style compositional fusion.
//!
//! [`AnalyticModel`] prices the Table-I counter rates of a section in
//! cycles per instruction using only the [`MachineConfig`] parameters: a
//! queueing-flavored cache/TLB miss-penalty estimate, branch-resolution
//! latency shadowed by memory-boundedness, and front-end stall charges.
//! The estimates are the *expectation* form of the simulator's
//! cycle-accounting model (`crates/sim/src/cycle.rs`): where the simulator
//! prices each instruction's event outcomes with its instantaneous ILP and
//! memory-boundedness, the analytical model prices the section's mean
//! rates with fixed expectation factors. It is deliberately wrong in the
//! interaction-heavy regimes — that residual is exactly what the model
//! tree is asked to learn (see [`mtperf_mtree::ResidualLearner`]).
//!
//! The per-component estimates are appended to the learning problem as
//! derived columns ([`dataset_with_analytic`]) behind the CLI's
//! `--features analytic` flag; with the flag off the ingest path does not
//! touch this module, so baseline training stays bit-identical.
//!
//! The module also hosts the design-space half of the fusion:
//! [`scale_factors`]/[`transplant_rates`] move a measured counter row onto
//! a hypothetical machine via documented power laws, so `mtperf sweep` can
//! score thousands of configurations without re-simulating.

use mtperf_counters::{Event, N_EVENTS};
use mtperf_mtree::{Dataset, MtreeError};
use mtperf_sim::{CacheGeometry, MachineConfig, TlbGeometry};

/// Number of derived analytical columns appended by
/// [`dataset_with_analytic`].
pub const N_ANALYTIC: usize = 6;

/// Names of the derived columns, in append order: the per-component cycle
/// estimates and their sum `AnCpi` (the analytical CPI prediction, which is
/// also the residual baseline column).
pub const ANALYTIC_NAMES: [&str; N_ANALYTIC] =
    ["AnBase", "AnFront", "AnMem", "AnTlb", "AnBr", "AnCpi"];

/// Expected reciprocal dependency distance. The counters carry no ILP
/// measurement, so the per-instruction dependency-stall charge uses a fixed
/// expectation (the simulator's workload mixes average `E[1/dep] ≈ 0.35`).
const ILP_RECIP: f64 = 0.35;

/// Fraction of an L1-miss/L2-hit latency exposed after out-of-order
/// hiding (the cycle model hides `min(0.12·dep, 0.85)`; at `dep ≈ 5` about
/// 40 % of the latency reaches retirement).
const L1_EXPOSED: f64 = 0.4;

/// Fraction of a data-side page walk exposed outside the cache-miss shadow
/// (the cycle model overlaps the walk with the line fetch, exposing the
/// max plus a quarter of the min).
const WALK_EXPOSED: f64 = 0.75;

/// Fraction of an ITLB walk that stalls the front end (matches the cycle
/// model's `itlb_walk * 0.9` charge).
const ITLB_EXPOSED: f64 = 0.9;

/// Utilization cap for the memory-queueing estimate: beyond this the
/// closed-form M/D/1 wait diverges, which a finite machine never does.
const MAX_UTILIZATION: f64 = 0.9;

/// Per-component analytical cycle estimates for one section, in cycles per
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Components {
    /// Issue bandwidth plus expected dependency stalls.
    pub base: f64,
    /// Front-end stalls: instruction-cache misses, ITLB walks, LCP stalls.
    pub frontend: f64,
    /// Data-side memory stalls: cache misses under MLP/queueing, load
    /// blocks, split and misaligned accesses.
    pub memory: f64,
    /// Data-side TLB stalls: micro-TLB refills and exposed page walks.
    pub tlb: f64,
    /// Branch-resolution latency, shadowed by memory-boundedness.
    pub branch: f64,
}

impl Components {
    /// Total analytical CPI: the sum of the components.
    pub fn cpi(&self) -> f64 {
        self.base + self.frontend + self.memory + self.tlb + self.branch
    }
}

/// Closed-form CPI estimator for a machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticModel {
    cfg: MachineConfig,
}

impl AnalyticModel {
    /// Creates an estimator for `cfg`.
    pub fn new(cfg: MachineConfig) -> Self {
        AnalyticModel { cfg }
    }

    /// The machine the estimator prices for.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Prices a section's counter rates (`rates[Event::index()]`, at least
    /// [`N_EVENTS`] long; extra columns are ignored) into per-component
    /// cycle estimates. Negative rates (possible after aggressive repair
    /// policies) are clamped to zero.
    pub fn components(&self, rates: &[f64]) -> Components {
        let cfg = &self.cfg;
        let r = |e: Event| rates[e.index()].max(0.0);

        let base = 1.0 / cfg.issue_width + cfg.dep_stall_coeff * ILP_RECIP;

        // Data-side cache hierarchy. L2 misses overlap up to max_mlp deep
        // in the best case; the M/D/1-style wait term prices the queueing
        // that sets in when miss traffic saturates the overlap capacity.
        let l2m = r(Event::L2m);
        let l1_only = (r(Event::L1dm) - l2m).max(0.0);
        let service = cfg.lat_mem / cfg.max_mlp;
        let utilization = (l2m * service).min(MAX_UTILIZATION);
        let queue = 1.0 + utilization / (2.0 * (1.0 - utilization));
        let mut memory = l1_only * cfg.lat_l2 * L1_EXPOSED + l2m * service * queue;
        memory += cfg.ld_block_penalty
            * (r(Event::LdBlSta) + 0.8 * r(Event::LdBlStd) + 1.2 * r(Event::LdBlOvSt));
        memory += cfg.split_penalty * (r(Event::L1dSpLd) + r(Event::L1dSpSt));
        memory += cfg.misalign_penalty * r(Event::MisalRef);

        // Data-side TLB: micro-TLB refills that hit the big TLB, plus the
        // exposed fraction of full page walks.
        let l0_refills = (r(Event::DtlbL0LdM) - r(Event::DtlbLdM)).max(0.0);
        let tlb = l0_refills * cfg.dtlb0_penalty + r(Event::DtlbLdM) * cfg.page_walk * WALK_EXPOSED;

        // Front end: an instruction miss that also misses the L2 drains to
        // memory with nothing to overlap it. The counters do not split
        // instruction L2 misses out, so the data-side L2-miss ratio stands
        // in for the shared-L2 pressure.
        let l1dm = r(Event::L1dm);
        let i_to_mem = if l1dm > 0.0 {
            (l2m / l1dm).min(1.0)
        } else {
            0.0
        };
        let frontend = r(Event::L1im)
            * ((1.0 - i_to_mem) * 0.8 * cfg.lat_l2 + i_to_mem * cfg.lat_mem)
            + r(Event::ItlbM) * cfg.itlb_walk * ITLB_EXPOSED
            + r(Event::Lcp) * cfg.lcp_stall;

        // Branch flushes recover partly inside the memory-stall shadow;
        // the memory share of the pre-branch CPI proxies the cycle model's
        // memory-boundedness EWMA.
        let pre_branch = base + frontend + memory + tlb;
        let membound = if pre_branch > 0.0 {
            ((memory + tlb) / pre_branch).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let branch = r(Event::BrMisPr) * cfg.mispredict_penalty * (1.0 - 0.5 * membound);

        Components {
            base,
            frontend,
            memory,
            tlb,
            branch,
        }
    }

    /// Total analytical CPI for a section's counter rates.
    pub fn cpi(&self, rates: &[f64]) -> f64 {
        self.components(rates).cpi()
    }

    /// The derived feature values for one row, in [`ANALYTIC_NAMES`] order.
    pub fn features(&self, rates: &[f64]) -> [f64; N_ANALYTIC] {
        let c = self.components(rates);
        [c.base, c.frontend, c.memory, c.tlb, c.branch, c.cpi()]
    }
}

/// Builds the augmented learning problem: the 20 Table-I counter columns
/// plus the [`N_ANALYTIC`] derived analytical columns priced for `machine`.
///
/// This is a separate ingest path from [`crate::dataset_from_samples`]; the
/// baseline path never calls into this module, which is what keeps
/// `--features analytic` off bit-identical to previous releases.
///
/// # Errors
///
/// The constructor errors of [`Dataset::from_rows`]
/// ([`MtreeError::EmptyDataset`], [`MtreeError::NonFiniteValue`], …).
pub fn dataset_with_analytic(
    samples: &mtperf_counters::SampleSet,
    machine: &MachineConfig,
) -> Result<Dataset, MtreeError> {
    let (mut names, rows, targets) = samples.to_learning_parts();
    names.extend(ANALYTIC_NAMES.iter().map(|s| s.to_string()));
    let model = AnalyticModel::new(machine.clone());
    let augmented: Vec<Vec<f64>> = rows
        .iter()
        .map(|rates| {
            let mut row = rates.to_vec();
            row.extend_from_slice(&model.features(rates));
            row
        })
        .collect();
    Dataset::from_rows(names, &augmented, &targets)
}

/// Returns the index of the `AnCpi` column in `data`, or a typed error
/// explaining that the dataset was ingested without analytic features.
///
/// # Errors
///
/// [`MtreeError::BadParams`] when the column is absent.
pub fn ancpi_index(data: &Dataset) -> Result<usize, MtreeError> {
    data.attr_index("AnCpi").ok_or_else(|| {
        MtreeError::BadParams(
            "residual mode needs the AnCpi column; ingest with --features analytic".to_string(),
        )
    })
}

/// Conflict-miss factor of a set-associative structure: misses rise as
/// associativity drops. Shared by the cache and TLB power laws.
fn assoc_term(ways: u32) -> f64 {
    1.0 + 0.3 / f64::from(ways.max(1))
}

/// Miss-rate factor for moving a cache from geometry `base` to `variant`:
/// the √2 rule (miss rate ∝ capacity^−½) times the conflict term.
fn cache_factor(base: &CacheGeometry, variant: &CacheGeometry) -> f64 {
    let capacity = (base.size_bytes as f64 / variant.size_bytes as f64).sqrt();
    capacity * assoc_term(variant.ways) / assoc_term(base.ways)
}

/// Miss-rate factor for a TLB: reach scales linearly with entries but
/// locality flattens the tail (entries^−0.7), times the conflict term.
fn tlb_factor(base: &TlbGeometry, variant: &TlbGeometry) -> f64 {
    let reach = (f64::from(base.entries) / f64::from(variant.entries)).powf(0.7);
    reach * assoc_term(variant.ways) / assoc_term(base.ways)
}

/// Misprediction factor for a global-history predictor budget: each extra
/// history bit quarters-of-halves the mispredict rate (2^−0.25 per bit).
fn predictor_factor(base_bits: u32, variant_bits: u32) -> f64 {
    2.0_f64.powf(-0.25 * (f64::from(variant_bits) - f64::from(base_bits)))
}

/// Per-event multiplicative factors for transplanting counter rates
/// measured on `base` onto a hypothetical `variant` machine. Events not
/// governed by any swept structure keep factor 1.
pub fn scale_factors(base: &MachineConfig, variant: &MachineConfig) -> [f64; N_EVENTS] {
    let mut f = [1.0; N_EVENTS];
    f[Event::L1dm.index()] = cache_factor(&base.l1d, &variant.l1d);
    f[Event::L1im.index()] = cache_factor(&base.l1i, &variant.l1i);
    f[Event::L2m.index()] = cache_factor(&base.l2, &variant.l2);
    f[Event::DtlbL0LdM.index()] = tlb_factor(&base.dtlb0, &variant.dtlb0);
    let big = tlb_factor(&base.dtlb1, &variant.dtlb1);
    f[Event::DtlbLdM.index()] = big;
    f[Event::DtlbLdReM.index()] = big;
    f[Event::Dtlb.index()] = big;
    f[Event::ItlbM.index()] = tlb_factor(&base.itlb, &variant.itlb);
    f[Event::BrMisPr.index()] =
        predictor_factor(base.predictor.history_bits, variant.predictor.history_bits);
    f
}

/// Applies [`scale_factors`] to one measured counter row, conserving the
/// branch count: mispredicts converted away by a bigger predictor reappear
/// as correct predictions (and vice versa, floored at zero).
pub fn transplant_rates(rates: &[f64], factors: &[f64; N_EVENTS]) -> [f64; N_EVENTS] {
    let mut out = [0.0; N_EVENTS];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = rates[i].max(0.0) * factors[i];
    }
    let before = rates[Event::BrMisPr.index()].max(0.0);
    let after = out[Event::BrMisPr.index()];
    let pred = Event::BrPred.index();
    out[pred] = (out[pred] + before - after).max(0.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtperf_counters::SectionSample;

    fn core2() -> AnalyticModel {
        AnalyticModel::new(MachineConfig::core2_duo())
    }

    fn rates_with(pairs: &[(Event, f64)]) -> [f64; N_EVENTS] {
        let mut r = [0.0; N_EVENTS];
        for &(e, v) in pairs {
            r[e.index()] = v;
        }
        r
    }

    #[test]
    fn clean_section_costs_the_issue_floor() {
        let m = core2();
        let c = m.components(&[0.0; N_EVENTS]);
        assert!(c.base > 0.25 && c.base < 0.5, "{c:?}");
        assert_eq!(c.frontend, 0.0);
        assert_eq!(c.memory, 0.0);
        assert_eq!(c.tlb, 0.0);
        assert_eq!(c.branch, 0.0);
        assert_eq!(c.cpi(), c.base);
    }

    #[test]
    fn l2_misses_dominate_and_queue() {
        let m = core2();
        let light = m.cpi(&rates_with(&[(Event::L1dm, 0.011), (Event::L2m, 0.001)]));
        let heavy = m.cpi(&rates_with(&[(Event::L1dm, 0.04), (Event::L2m, 0.03)]));
        assert!(heavy > light + 0.5, "{heavy} vs {light}");
        // Queueing makes cost superlinear in the miss rate.
        let double = m.cpi(&rates_with(&[(Event::L1dm, 0.08), (Event::L2m, 0.06)]));
        assert!(
            double > 2.0 * heavy - m.cpi(&[0.0; N_EVENTS]),
            "{double} vs {heavy}"
        );
    }

    #[test]
    fn branch_cost_shrinkss_when_memory_bound() {
        let m = core2();
        let br = rates_with(&[(Event::BrMisPr, 0.01)]);
        let lone = m.components(&br).branch;
        let shadowed = m
            .components(&rates_with(&[(Event::BrMisPr, 0.01), (Event::L2m, 0.05)]))
            .branch;
        assert!(shadowed < lone, "{shadowed} vs {lone}");
        assert!(shadowed > 0.5 * lone - 1e-12);
    }

    #[test]
    fn machine_parameters_move_the_estimate() {
        let rates = rates_with(&[
            (Event::L1dm, 0.02),
            (Event::L2m, 0.01),
            (Event::BrMisPr, 0.008),
            (Event::L1im, 0.005),
        ]);
        let core2 = core2().cpi(&rates);
        let netburst = AnalyticModel::new(MachineConfig::netburst_like()).cpi(&rates);
        // Narrower issue and a costlier flush must price the same counters
        // higher.
        assert!(netburst > core2, "{netburst} vs {core2}");
    }

    #[test]
    fn features_are_components_plus_total() {
        let m = core2();
        let rates = rates_with(&[(Event::L2m, 0.01), (Event::Lcp, 0.02)]);
        let f = m.features(&rates);
        let c = m.components(&rates);
        assert_eq!(f[0], c.base);
        assert_eq!(f[1], c.frontend);
        assert_eq!(f[2], c.memory);
        assert_eq!(f[3], c.tlb);
        assert_eq!(f[4], c.branch);
        assert_eq!(f[5], c.cpi());
        assert_eq!(ANALYTIC_NAMES.len(), N_ANALYTIC);
    }

    #[test]
    fn augmented_dataset_extends_the_columns() {
        let mut set = mtperf_counters::SampleSet::new();
        let mut rates = [0.0; N_EVENTS];
        rates[Event::L2m.index()] = 0.01;
        set.push(SectionSample::new("w", 0, 1.5, rates));
        let machine = MachineConfig::core2_duo();
        let d = dataset_with_analytic(&set, &machine).unwrap();
        assert_eq!(d.n_attrs(), N_EVENTS + N_ANALYTIC);
        assert_eq!(d.attr_name(N_EVENTS), "AnBase");
        assert_eq!(ancpi_index(&d).unwrap(), N_EVENTS + N_ANALYTIC - 1);
        let expect = AnalyticModel::new(machine).cpi(&rates);
        assert_eq!(d.value(0, N_EVENTS + N_ANALYTIC - 1), expect);

        let plain = crate::dataset_from_samples(&set).unwrap();
        assert!(ancpi_index(&plain).is_err());
    }

    #[test]
    fn scale_factors_follow_the_power_laws() {
        let base = MachineConfig::core2_duo();
        let mut bigger = base.clone();
        bigger.l2.size_bytes *= 4;
        let f = scale_factors(&base, &bigger);
        // 4x the capacity halves the L2 miss rate (capacity^-1/2).
        assert!((f[Event::L2m.index()] - 0.5).abs() < 1e-12);
        // Untouched structures keep factor 1.
        assert_eq!(f[Event::L1dm.index()], 1.0);
        assert_eq!(f[Event::InstLd.index()], 1.0);

        let mut smaller_tlb = base.clone();
        smaller_tlb.dtlb1.entries /= 4;
        let f = scale_factors(&base, &smaller_tlb);
        assert!(f[Event::DtlbLdM.index()] > 1.0);
        assert_eq!(f[Event::DtlbLdM.index()], f[Event::Dtlb.index()],);

        let mut better_bp = base.clone();
        better_bp.predictor.history_bits += 4;
        let f = scale_factors(&base, &better_bp);
        assert!((f[Event::BrMisPr.index()] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transplant_conserves_branch_count() {
        let base = MachineConfig::core2_duo();
        let mut better_bp = base.clone();
        better_bp.predictor.history_bits += 4;
        let f = scale_factors(&base, &better_bp);
        let rates = rates_with(&[(Event::BrMisPr, 0.02), (Event::BrPred, 0.18)]);
        let out = transplant_rates(&rates, &f);
        let before = rates[Event::BrMisPr.index()] + rates[Event::BrPred.index()];
        let after = out[Event::BrMisPr.index()] + out[Event::BrPred.index()];
        assert!((before - after).abs() < 1e-12, "{before} vs {after}");
        assert!(out[Event::BrMisPr.index()] < rates[Event::BrMisPr.index()]);
    }

    #[test]
    fn identity_transplant_is_identity() {
        let base = MachineConfig::core2_duo();
        let f = scale_factors(&base, &base);
        assert!(f.iter().all(|&x| (x - 1.0).abs() < 1e-15));
        let rates = rates_with(&[(Event::L2m, 0.01), (Event::BrMisPr, 0.005)]);
        let out = transplant_rates(&rates, &f);
        for i in 0..N_EVENTS {
            assert!((out[i] - rates[i]).abs() < 1e-15);
        }
    }
}
