//! Structured CLI errors mapped to process exit codes.
//!
//! The `mtperf` binary distinguishes failure classes the way BSD
//! `sysexits(3)` does, so scripts wrapping the tool can react to *why* a run
//! failed, not just that it did:
//!
//! | class                      | exit code | `sysexits` name  |
//! |----------------------------|-----------|------------------|
//! | [`CliError::Usage`]        | 2         | (conventional)   |
//! | [`CliError::Data`]         | 65        | `EX_DATAERR`     |
//! | [`CliError::Unavailable`]  | 69        | `EX_UNAVAILABLE` |
//! | [`CliError::Io`]           | 74        | `EX_IOERR`       |
//! | [`CliError::Other`]        | 1         | (generic)        |
//!
//! Every library error reaching the CLI is converted into one of these
//! classes by the `From` impls below; the binary then maps
//! [`CliError::exit_code`] straight into [`std::process::ExitCode`].

use std::error::Error;
use std::fmt;
use std::io;

use mtperf_counters::CsvError;
use mtperf_linalg::LinalgError;
use mtperf_mtree::{MtreeError, PersistError};

/// A CLI failure, classified by the process exit code it should produce.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CliError {
    /// The command line itself was wrong: unknown command, missing or
    /// unparsable option. Exit code 2.
    Usage(String),
    /// Input data was malformed or failed validation: bad CSV schema,
    /// corrupt rows under `--policy strict`, a dataset the learner rejects.
    /// Exit code 65 (`EX_DATAERR`).
    Data(String),
    /// A service could not start or is not available: the serving daemon
    /// failed to load/validate its model or to bind its socket. Exit
    /// code 69 (`EX_UNAVAILABLE`) so supervisors can separate "retry
    /// later / fix the deployment" from usage and data errors.
    Unavailable(String),
    /// An operating-system I/O failure: missing file, permission denied,
    /// disk full. Exit code 74 (`EX_IOERR`).
    Io(String),
    /// Any other failure, including internal ones such as a panicking
    /// training worker. Exit code 1.
    Other(String),
}

impl CliError {
    /// The process exit code for this error class.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Data(_) => 65,
            CliError::Unavailable(_) => 69,
            CliError::Io(_) => 74,
            CliError::Other(_) => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Data(msg) => write!(f, "bad input data: {msg}"),
            CliError::Unavailable(msg) => write!(f, "service unavailable: {msg}"),
            CliError::Io(msg) => write!(f, "i/o error: {msg}"),
            CliError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for CliError {}

impl From<String> for CliError {
    /// Bare string errors in the CLI come from argument handling
    /// ([`crate::cli::Args::require`] and friends), so they classify as
    /// usage errors.
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

impl From<io::Error> for CliError {
    fn from(e: io::Error) -> Self {
        CliError::Io(e.to_string())
    }
}

impl From<CsvError> for CliError {
    fn from(e: CsvError) -> Self {
        match e {
            CsvError::Io(io) => CliError::Io(io.to_string()),
            other => CliError::Data(other.to_string()),
        }
    }
}

impl From<MtreeError> for CliError {
    fn from(e: MtreeError) -> Self {
        match e {
            MtreeError::BadParams(_) => CliError::Usage(e.to_string()),
            // A panicking worker is an internal fault, not a data problem.
            MtreeError::Linalg(LinalgError::WorkerPanic { .. }) => CliError::Other(e.to_string()),
            // Degenerate data (empty partitions, fully-quarantined folds,
            // unusable evaluation sets) is a property of the input: exit 65.
            MtreeError::DegenerateData(_) => CliError::Data(e.to_string()),
            other => CliError::Data(other.to_string()),
        }
    }
}

impl From<PersistError> for CliError {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::Io(io) => CliError::Io(io.to_string()),
            other => CliError::Data(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_sysexits() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Data("x".into()).exit_code(), 65);
        assert_eq!(CliError::Unavailable("x".into()).exit_code(), 69);
        assert_eq!(CliError::Io("x".into()).exit_code(), 74);
        assert_eq!(CliError::Other("x".into()).exit_code(), 1);
        let e = CliError::Unavailable("daemon cannot start".into());
        assert!(e.to_string().contains("unavailable"), "{e}");
    }

    #[test]
    fn string_errors_are_usage() {
        let e: CliError = "missing required option --data".to_string().into();
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn csv_errors_split_io_from_data() {
        let io: CliError = CsvError::Io(io::Error::new(io::ErrorKind::NotFound, "gone")).into();
        assert_eq!(io.exit_code(), 74);
        let data: CliError = CsvError::BadHeader {
            found: "nope".into(),
        }
        .into();
        assert_eq!(data.exit_code(), 65);
        assert!(data.to_string().contains("header"), "{data}");
    }

    #[test]
    fn mtree_errors_classify_by_variant() {
        let usage: CliError = MtreeError::BadParams("min_instances".into()).into();
        assert_eq!(usage.exit_code(), 2);
        let data: CliError = MtreeError::EmptyDataset.into();
        assert_eq!(data.exit_code(), 65);
        let degenerate: CliError =
            MtreeError::DegenerateData("all 10 folds were skipped".into()).into();
        assert_eq!(degenerate.exit_code(), 65);
        assert!(
            degenerate.to_string().contains("degenerate"),
            "{degenerate}"
        );
        let internal: CliError = MtreeError::Linalg(LinalgError::WorkerPanic {
            index: 3,
            message: "boom".into(),
        })
        .into();
        assert_eq!(internal.exit_code(), 1);
        assert!(internal.to_string().contains("panicked"), "{internal}");
    }

    #[test]
    fn persist_errors_split_io_from_format() {
        let io: CliError =
            PersistError::Io(io::Error::new(io::ErrorKind::PermissionDenied, "no")).into();
        assert_eq!(io.exit_code(), 74);
        let data: CliError = PersistError::Format("not a model".into()).into();
        assert_eq!(data.exit_code(), 65);
    }
}
